//! The request/response service engine.
//!
//! All of the paper's networked benchmarks — `ab` against NGINX, `wrk`
//! against NGINX/PHP, `memtier_benchmark` against memcached/Redis — are
//! closed-loop load generators: a fixed number of connections, each
//! issuing the next request as soon as the previous response returns.
//! This module prices one request on a platform ([`ServerModel`]) and
//! derives closed-loop throughput and latency percentiles from a
//! deterministic multi-worker queueing simulation on the `xc-sim` engine.

use xc_runtimes::platform::Platform;
use xc_sim::cost::CostModel;
use xc_sim::engine::{EventQueue, Simulation, World};
use xc_sim::rng::Rng;
use xc_sim::stats::Histogram;
use xc_sim::time::Nanos;

/// What one request costs the server, in kernel-visible operations.
#[derive(Debug, Clone, PartialEq)]
pub struct RequestProfile {
    /// Human-readable profile name.
    pub name: &'static str,
    /// Syscalls the server issues per request (accept/epoll share, reads,
    /// writes, timers…).
    pub syscalls: u64,
    /// Bytes received (request).
    pub recv_bytes: u64,
    /// Bytes sent (response).
    pub send_bytes: u64,
    /// User-space compute per request (parsing, hashing, templating) —
    /// unaffected by the platform.
    pub app_compute: Nanos,
    /// In-kernel work beyond the network path (e.g. file I/O for static
    /// pages), priced at the platform's kernel-work multiplier.
    pub kernel_work: Nanos,
    /// Process context switches forced per request (e.g. proxying to a
    /// backend process). Most single-process servers: 0.
    pub process_switches: u64,
    /// Multi-process coordination events per request (POSIX state shared
    /// between workers — where Graphene pays its IPC tax).
    pub coordination_events: u64,
}

impl RequestProfile {
    /// Service time of one request on `platform`: the CPU time the server
    /// burns before the response is on the wire.
    pub fn service_time(&self, platform: &Platform, costs: &CostModel) -> Nanos {
        let net = platform.net_stack(costs);
        let syscalls = platform.syscall_cost(costs) * self.syscalls;
        let rx = net
            .recv_cost(costs, self.recv_bytes)
            .scale(platform.net_work_multiplier());
        let tx = net
            .send_cost(costs, self.send_bytes)
            .scale(platform.net_work_multiplier());
        let kernel = self.kernel_work.scale(platform.kernel_ops_multiplier());
        let switches = platform.context_switch_cost(costs, 4) * self.process_switches;
        let coordination = platform.multiprocess_ipc_cost(costs) * self.coordination_events;
        platform.environment_adjust(
            syscalls + rx + tx + kernel + self.app_compute + switches + coordination,
        )
    }
}

/// A server deployment: a platform, a request profile, and worker
/// parallelism.
#[derive(Debug, Clone)]
pub struct ServerModel {
    /// The platform the server runs on.
    pub platform: Platform,
    /// Per-request costs.
    pub profile: RequestProfile,
    /// Worker processes/threads serving requests in parallel.
    pub workers: u32,
    /// CPU cores available to this server.
    pub cores: u32,
}

impl ServerModel {
    /// Effective parallelism: workers capped by cores, and by one when the
    /// platform cannot run processes concurrently (§2.3).
    pub fn parallelism(&self) -> u32 {
        let hw = self.workers.min(self.cores).max(1);
        if self.platform.supports_multicore() {
            hw
        } else {
            1
        }
    }

    /// Open-loop capacity ceiling in requests/second.
    pub fn capacity_rps(&self, costs: &CostModel) -> f64 {
        let st = self.profile.service_time(&self.platform, costs);
        f64::from(self.parallelism()) / st.as_secs_f64()
    }
}

/// Result of a closed-loop run.
#[derive(Debug, Clone)]
pub struct ClosedLoopResult {
    /// Completed requests per second.
    pub throughput_rps: f64,
    /// Per-request latency distribution (nanoseconds).
    pub latency: Histogram,
}

impl ClosedLoopResult {
    /// Mean latency in microseconds.
    pub fn mean_latency_us(&self) -> f64 {
        self.latency.mean() / 1_000.0
    }
}

/// Discrete-event closed-loop world: `connections` clients, each with one
/// outstanding request; `parallelism` servers drain a FIFO.
struct ClosedLoop {
    service: Nanos,
    jitter: f64,
    rtt: Nanos,
    busy: u32,
    parallelism: u32,
    queue_depth: u64,
    completed: u64,
    latency: Histogram,
    rng: Rng,
    /// Arrival timestamps for queued-but-unserved requests (FIFO).
    waiting: std::collections::VecDeque<Nanos>,
    /// Slab of pre-drawn uniforms ([`Rng::next_f64_batch`]): one draw
    /// per service start, refilled in bulk. The k-th slab value is
    /// exactly the k-th `next_f64()` of the un-batched stream, so the
    /// jitter sequence — and the histogram — is unchanged.
    uniforms: [f64; UNIFORM_SLAB],
    /// Next unconsumed slab index; `UNIFORM_SLAB` means refill.
    uniform_pos: usize,
}

/// Uniform draws fetched per RNG batch in the closed-loop hot path.
const UNIFORM_SLAB: usize = 64;

enum Ev {
    /// A request arrives at the server (issued_at records client send time).
    Arrive { issued_at: Nanos },
    /// A server worker finishes the request issued at `issued_at`.
    Finish { issued_at: Nanos },
}

impl ClosedLoop {
    #[inline]
    fn next_uniform(&mut self) -> f64 {
        if self.uniform_pos == UNIFORM_SLAB {
            self.rng.next_f64_batch(&mut self.uniforms);
            self.uniform_pos = 0;
        }
        let u = self.uniforms[self.uniform_pos];
        self.uniform_pos += 1;
        u
    }

    #[inline]
    fn sample_service(&mut self) -> Nanos {
        // ±jitter uniform service-time variation keeps the histogram
        // honest without changing the mean.
        let f = 1.0 + self.jitter * (self.next_uniform() * 2.0 - 1.0);
        self.service.scale(f)
    }
}

impl World for ClosedLoop {
    type Event = Ev;

    fn handle(&mut self, now: Nanos, event: Ev, queue: &mut EventQueue<Ev>) {
        match event {
            Ev::Arrive { issued_at } => {
                self.queue_depth += 1;
                if self.busy < self.parallelism {
                    self.busy += 1;
                    self.queue_depth -= 1;
                    let st = self.sample_service();
                    queue.schedule_in(st, Ev::Finish { issued_at });
                } else {
                    self.waiting.push_back(issued_at);
                }
            }
            Ev::Finish { issued_at } => {
                self.completed += 1;
                let latency = (now - issued_at) + self.rtt;
                self.latency.record_nanos(latency);
                // The client issues its next request after a wire RTT.
                queue.schedule_in(
                    self.rtt,
                    Ev::Arrive {
                        issued_at: now + self.rtt,
                    },
                );
                // Pull the next queued request, if any.
                if let Some(waiting_since) = self.waiting.pop_front() {
                    self.queue_depth -= 1;
                    let st = self.sample_service();
                    queue.schedule_in(
                        st,
                        Ev::Finish {
                            issued_at: waiting_since,
                        },
                    );
                } else {
                    self.busy -= 1;
                }
            }
        }
    }
}

/// Memoizes closed-loop results by the simulation's *true* inputs.
///
/// A closed-loop run is a pure function of the service time, the wire
/// RTT and the effective parallelism once the client side (connections,
/// duration, seed) is fixed — the platform only enters through those
/// derived parameters. Distinct platforms frequently collapse onto the
/// same key: an X-Container's guest kernel ignores the host patch
/// state, so its patched and unpatched variants price requests
/// identically and need only one simulation between them.
#[derive(Debug, Default)]
pub struct ClosedLoopCache {
    map: std::collections::HashMap<(u64, u64, u32, u32, u64, u64), ClosedLoopResult>,
    hits: u64,
    misses: u64,
}

impl ClosedLoopCache {
    /// Creates an empty cache.
    pub fn new() -> Self {
        Self::default()
    }

    /// Simulations answered from the cache.
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Simulations actually run.
    pub fn misses(&self) -> u64 {
        self.misses
    }
}

/// [`run_closed_loop`] behind a [`ClosedLoopCache`]: deployments whose
/// derived simulation parameters coincide share one run. Results are
/// identical to the uncached path — the cache key is exactly the input
/// of the (deterministic) simulation.
pub fn run_closed_loop_cached(
    server: &ServerModel,
    costs: &CostModel,
    connections: u32,
    duration: Nanos,
    seed: u64,
    cache: &mut ClosedLoopCache,
) -> ClosedLoopResult {
    let service = server.profile.service_time(&server.platform, costs);
    let rtt = server.platform.net_stack(costs).wire_latency(costs);
    let key = (
        service.as_nanos(),
        rtt.as_nanos(),
        server.parallelism(),
        connections,
        duration.as_nanos(),
        seed,
    );
    if let Some(hit) = cache.map.get(&key) {
        cache.hits += 1;
        return hit.clone();
    }
    cache.misses += 1;
    let result = run_closed_loop(server, costs, connections, duration, seed);
    cache.map.insert(key, result.clone());
    result
}

/// Runs a closed-loop benchmark: `connections` concurrent clients against
/// `server`, for `duration` of simulated time.
pub fn run_closed_loop(
    server: &ServerModel,
    costs: &CostModel,
    connections: u32,
    duration: Nanos,
    seed: u64,
) -> ClosedLoopResult {
    let service = server.profile.service_time(&server.platform, costs);
    let rtt = server.platform.net_stack(costs).wire_latency(costs);
    let world = ClosedLoop {
        service,
        jitter: 0.15,
        rtt,
        busy: 0,
        parallelism: server.parallelism(),
        queue_depth: 0,
        completed: 0,
        latency: Histogram::new(),
        rng: Rng::new(seed),
        waiting: std::collections::VecDeque::new(),
        uniforms: [0.0; UNIFORM_SLAB],
        uniform_pos: UNIFORM_SLAB, // first draw triggers a refill
    };
    // Steady state holds at most one pending event per connection (its
    // in-flight Arrive or Finish); pre-size the heap so it never grows
    // mid-run.
    let mut sim = Simulation::with_capacity(world, connections as usize + 1);
    for i in 0..connections {
        // Stagger initial arrivals across one RTT.
        let offset = rtt * u64::from(i) / u64::from(connections.max(1));
        sim.queue_mut()
            .schedule_at(offset, Ev::Arrive { issued_at: offset });
    }
    sim.run_until(duration);
    let world = sim.world();
    ClosedLoopResult {
        throughput_rps: world.completed as f64 / duration.as_secs_f64(),
        latency: world.latency.clone(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use xc_runtimes::cloud::CloudEnv;

    fn profile() -> RequestProfile {
        RequestProfile {
            name: "test",
            syscalls: 8,
            recv_bytes: 200,
            send_bytes: 1024,
            app_compute: Nanos::from_micros(3),
            kernel_work: Nanos::from_micros(1),
            process_switches: 0,
            coordination_events: 0,
        }
    }

    fn server(platform: Platform, workers: u32) -> ServerModel {
        ServerModel {
            platform,
            profile: profile(),
            workers,
            cores: 4,
        }
    }

    #[test]
    fn service_time_platform_ordering() {
        let costs = CostModel::skylake_cloud();
        let p = profile();
        let docker = p.service_time(&Platform::docker(CloudEnv::AmazonEc2, true), &costs);
        let xc = p.service_time(&Platform::x_container(CloudEnv::AmazonEc2, true), &costs);
        let gv = p.service_time(&Platform::gvisor(CloudEnv::AmazonEc2, true), &costs);
        assert!(
            xc < docker,
            "X-Container must serve faster than patched Docker"
        );
        assert!(gv > docker * 2, "gVisor interception dominates");
    }

    #[test]
    fn closed_loop_saturates_with_connections() {
        let costs = CostModel::skylake_cloud();
        let s = server(Platform::docker(CloudEnv::AmazonEc2, true), 1);
        let low = run_closed_loop(&s, &costs, 1, Nanos::from_millis(200), 1);
        let high = run_closed_loop(&s, &costs, 64, Nanos::from_millis(200), 1);
        assert!(high.throughput_rps > low.throughput_rps * 2.0);
        // At 64 connections a single worker is saturated: throughput near
        // the capacity ceiling.
        let cap = s.capacity_rps(&costs);
        assert!(high.throughput_rps <= cap * 1.01);
        assert!(high.throughput_rps > cap * 0.85, "high {high:?} cap {cap}");
    }

    #[test]
    fn latency_grows_with_saturation() {
        let costs = CostModel::skylake_cloud();
        let s = server(Platform::docker(CloudEnv::AmazonEc2, true), 1);
        let low = run_closed_loop(&s, &costs, 1, Nanos::from_millis(200), 1);
        let high = run_closed_loop(&s, &costs, 64, Nanos::from_millis(200), 1);
        assert!(high.mean_latency_us() > low.mean_latency_us() * 4.0);
    }

    #[test]
    fn workers_scale_until_cores() {
        let costs = CostModel::skylake_cloud();
        let one = server(Platform::docker(CloudEnv::AmazonEc2, true), 1);
        let four = server(Platform::docker(CloudEnv::AmazonEc2, true), 4);
        let eight = server(Platform::docker(CloudEnv::AmazonEc2, true), 8); // > cores
        assert!(four.capacity_rps(&costs) > one.capacity_rps(&costs) * 3.5);
        assert_eq!(eight.parallelism(), 4, "capped by cores");
    }

    #[test]
    fn gvisor_cannot_use_multicore() {
        let s = server(Platform::gvisor(CloudEnv::AmazonEc2, true), 4);
        assert_eq!(s.parallelism(), 1);
    }

    #[test]
    fn cache_returns_identical_results_and_counts() {
        let costs = CostModel::skylake_cloud();
        let s = server(Platform::docker(CloudEnv::AmazonEc2, true), 2);
        let mut cache = ClosedLoopCache::new();
        let uncached = run_closed_loop(&s, &costs, 16, Nanos::from_millis(100), 7);
        let a = run_closed_loop_cached(&s, &costs, 16, Nanos::from_millis(100), 7, &mut cache);
        let b = run_closed_loop_cached(&s, &costs, 16, Nanos::from_millis(100), 7, &mut cache);
        assert_eq!(a.throughput_rps, uncached.throughput_rps);
        assert_eq!(a.latency, uncached.latency);
        assert_eq!(b.throughput_rps, a.throughput_rps);
        assert_eq!(b.latency, a.latency);
        assert_eq!((cache.hits(), cache.misses()), (1, 1));
        // A different seed is a different simulation.
        let _ = run_closed_loop_cached(&s, &costs, 16, Nanos::from_millis(100), 8, &mut cache);
        assert_eq!((cache.hits(), cache.misses()), (1, 2));
    }

    #[test]
    fn cache_collapses_platforms_with_equal_parameters() {
        // An X-Container's guest kernel ignores the host patch state, so
        // the patched and unpatched deployments derive identical
        // simulation parameters and share one cache entry.
        let costs = CostModel::skylake_cloud();
        let patched = server(Platform::x_container(CloudEnv::AmazonEc2, true), 2);
        let unpatched = server(Platform::x_container(CloudEnv::AmazonEc2, false), 2);
        let mut cache = ClosedLoopCache::new();
        let a = run_closed_loop_cached(&patched, &costs, 8, Nanos::from_millis(50), 3, &mut cache);
        let b =
            run_closed_loop_cached(&unpatched, &costs, 8, Nanos::from_millis(50), 3, &mut cache);
        assert_eq!((cache.hits(), cache.misses()), (1, 1));
        assert_eq!(a.throughput_rps, b.throughput_rps);
    }

    #[test]
    fn deterministic_given_seed() {
        let costs = CostModel::skylake_cloud();
        let s = server(Platform::docker(CloudEnv::AmazonEc2, true), 2);
        let a = run_closed_loop(&s, &costs, 16, Nanos::from_millis(100), 7);
        let b = run_closed_loop(&s, &costs, 16, Nanos::from_millis(100), 7);
        assert_eq!(a.throughput_rps, b.throughput_rps);
        assert_eq!(a.latency.quantile(0.99), b.latency.quantile(0.99));
    }
}
