//! The request/response service engine.
//!
//! All of the paper's networked benchmarks — `ab` against NGINX, `wrk`
//! against NGINX/PHP, `memtier_benchmark` against memcached/Redis — are
//! closed-loop load generators: a fixed number of connections, each
//! issuing the next request as soon as the previous response returns.
//! This module prices one request on a platform ([`ServerModel`] →
//! [`PlatformCosts`]) and derives closed-loop throughput and latency
//! percentiles from a deterministic queueing simulation on the `xc-sim`
//! engine.
//!
//! # Per-worker decomposition
//!
//! The closed loop is modelled the way the real servers are deployed:
//! each worker process owns its accept queue (`SO_REUSEPORT`-style), so
//! worker `w` of `P` serves a fixed
//! [`shard_share`](xc_sim::stats::shard_share) of the connections with
//! its own RNG substream, independent of every other worker. That makes
//! the whole simulation embarrassingly parallel: the serial path runs
//! the worker worlds one after another and merges their histograms in
//! worker order; [`run_closed_loop_sharded`] runs contiguous worker
//! ranges on OS threads and merges in the same order, so its output is
//! byte-identical to the serial reference at any shard count.

use std::cell::RefCell;
use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

use xc_runtimes::platform::Platform;
use xc_sim::cost::CostModel;
use xc_sim::engine::{EventQueue, Simulation, World};
use xc_sim::rng::Rng;
use xc_sim::stats::{shard_share, Histogram};
use xc_sim::time::Nanos;

use crate::costs::PlatformCosts;

/// What one request costs the server, in kernel-visible operations.
#[derive(Debug, Clone, PartialEq)]
pub struct RequestProfile {
    /// Human-readable profile name.
    pub name: &'static str,
    /// Syscalls the server issues per request (accept/epoll share, reads,
    /// writes, timers…).
    pub syscalls: u64,
    /// Bytes received (request).
    pub recv_bytes: u64,
    /// Bytes sent (response).
    pub send_bytes: u64,
    /// User-space compute per request (parsing, hashing, templating) —
    /// unaffected by the platform.
    pub app_compute: Nanos,
    /// In-kernel work beyond the network path (e.g. file I/O for static
    /// pages), priced at the platform's kernel-work multiplier.
    pub kernel_work: Nanos,
    /// Process context switches forced per request (e.g. proxying to a
    /// backend process). Most single-process servers: 0.
    pub process_switches: u64,
    /// Multi-process coordination events per request (POSIX state shared
    /// between workers — where Graphene pays its IPC tax).
    pub coordination_events: u64,
}

impl RequestProfile {
    /// Service time of one request on `platform`: the CPU time the server
    /// burns before the response is on the wire.
    pub fn service_time(&self, platform: &Platform, costs: &CostModel) -> Nanos {
        let net = platform.net_stack(costs);
        let syscalls = platform.syscall_cost(costs) * self.syscalls;
        let rx = net
            .recv_cost(costs, self.recv_bytes)
            .scale(platform.net_work_multiplier());
        let tx = net
            .send_cost(costs, self.send_bytes)
            .scale(platform.net_work_multiplier());
        let kernel = self.kernel_work.scale(platform.kernel_ops_multiplier());
        let switches = platform.context_switch_cost(costs, 4) * self.process_switches;
        let coordination = platform.multiprocess_ipc_cost(costs) * self.coordination_events;
        platform.environment_adjust(
            syscalls + rx + tx + kernel + self.app_compute + switches + coordination,
        )
    }
}

/// A server deployment: a platform, a request profile, and worker
/// parallelism.
#[derive(Debug, Clone)]
pub struct ServerModel {
    /// The platform the server runs on.
    pub platform: Platform,
    /// Per-request costs.
    pub profile: RequestProfile,
    /// Worker processes/threads serving requests in parallel.
    pub workers: u32,
    /// CPU cores available to this server.
    pub cores: u32,
}

impl ServerModel {
    /// Effective parallelism: workers capped by cores, and by one when the
    /// platform cannot run processes concurrently (§2.3).
    pub fn parallelism(&self) -> u32 {
        let hw = self.workers.min(self.cores).max(1);
        if self.platform.supports_multicore() {
            hw
        } else {
            1
        }
    }

    /// Open-loop capacity ceiling in requests/second.
    pub fn capacity_rps(&self, costs: &CostModel) -> f64 {
        PlatformCosts::derive(self, costs).capacity_rps()
    }
}

/// Result of a closed-loop run.
#[derive(Debug, Clone)]
pub struct ClosedLoopResult {
    /// Completed requests per second.
    pub throughput_rps: f64,
    /// Per-request latency distribution (nanoseconds).
    pub latency: Histogram,
}

impl ClosedLoopResult {
    /// Mean latency in microseconds.
    pub fn mean_latency_us(&self) -> f64 {
        self.latency.mean() / 1_000.0
    }
}

/// One worker's closed-loop world: a fixed set of connections, each with
/// one outstanding request, against a single server draining a FIFO.
struct WorkerLoop {
    service: Nanos,
    jitter: f64,
    rtt: Nanos,
    busy: bool,
    completed: u64,
    latency: Histogram,
    rng: Rng,
    /// Arrival timestamps for queued-but-unserved requests (FIFO).
    waiting: VecDeque<Nanos>,
    /// Slab of pre-drawn uniforms ([`Rng::next_f64_batch`]): one draw
    /// per service start, refilled in bulk. The k-th slab value is
    /// exactly the k-th `next_f64()` of the un-batched stream, so the
    /// jitter sequence — and the histogram — is independent of batching.
    uniforms: [f64; UNIFORM_SLAB],
    /// Next unconsumed slab index; `UNIFORM_SLAB` means refill.
    uniform_pos: usize,
}

/// Uniform draws fetched per RNG batch in the closed-loop hot path.
const UNIFORM_SLAB: usize = 64;

enum Ev {
    /// A request arrives at the server (issued_at records client send time).
    Arrive { issued_at: Nanos },
    /// The server finishes the request issued at `issued_at`.
    Finish { issued_at: Nanos },
}

impl WorkerLoop {
    #[inline]
    fn next_uniform(&mut self) -> f64 {
        if self.uniform_pos == UNIFORM_SLAB {
            self.rng.next_f64_batch(&mut self.uniforms);
            self.uniform_pos = 0;
        }
        let u = self.uniforms[self.uniform_pos];
        self.uniform_pos += 1;
        u
    }

    #[inline]
    fn sample_service(&mut self) -> Nanos {
        // ±jitter uniform service-time variation keeps the histogram
        // honest without changing the mean.
        let f = 1.0 + self.jitter * (self.next_uniform() * 2.0 - 1.0);
        self.service.scale(f)
    }
}

impl World for WorkerLoop {
    type Event = Ev;

    fn handle(&mut self, now: Nanos, event: Ev, queue: &mut EventQueue<Ev>) {
        match event {
            Ev::Arrive { issued_at } => {
                if self.busy {
                    self.waiting.push_back(issued_at);
                } else {
                    self.busy = true;
                    let st = self.sample_service();
                    queue.schedule_in(st, Ev::Finish { issued_at });
                }
            }
            Ev::Finish { issued_at } => {
                self.completed += 1;
                let latency = (now - issued_at) + self.rtt;
                self.latency.record_nanos(latency);
                // The client issues its next request after a wire RTT.
                queue.schedule_in(
                    self.rtt,
                    Ev::Arrive {
                        issued_at: now + self.rtt,
                    },
                );
                // Pull the next queued request, if any.
                if let Some(waiting_since) = self.waiting.pop_front() {
                    let st = self.sample_service();
                    queue.schedule_in(
                        st,
                        Ev::Finish {
                            issued_at: waiting_since,
                        },
                    );
                } else {
                    self.busy = false;
                }
            }
        }
    }
}

/// Worker worlds assembled from freshly allocated (or grown) storage.
static ARENA_ALLOCS: AtomicU64 = AtomicU64::new(0);
/// Worker worlds assembled entirely from recycled arena storage.
static ARENA_REUSES: AtomicU64 = AtomicU64::new(0);

/// Cumulative `(allocated, reused)` closed-loop world-construction
/// counters across every thread's arena, for the bench ledger: a figure
/// grid should report almost all reuses — one allocation per worker
/// thread, not one per simulated worker world.
pub fn arena_counters() -> (u64, u64) {
    (
        ARENA_ALLOCS.load(Ordering::Relaxed),
        ARENA_REUSES.load(Ordering::Relaxed),
    )
}

/// Reusable backing storage for closed-loop worker worlds: the waiting
/// FIFO and the calendar-queue wheel. [`EventQueue::reset`] restores
/// the exact logical state of a fresh queue, so arena-backed worker
/// runs are byte-identical to freshly-allocated ones — a feature-gated
/// proptest pins that equivalence.
#[derive(Default)]
pub struct LoopArena {
    waiting: VecDeque<Nanos>,
    queue: Option<EventQueue<Ev>>,
}

impl LoopArena {
    /// Creates an empty arena; storage is allocated on first use.
    pub fn new() -> Self {
        Self::default()
    }

    /// Resets the pooled storage and bumps the global alloc/reuse
    /// counters; returns the recycled (or fresh) event queue.
    fn prepare(&mut self, queue_capacity: usize) -> EventQueue<Ev> {
        if self.queue.is_some() {
            ARENA_REUSES.fetch_add(1, Ordering::Relaxed);
        } else {
            ARENA_ALLOCS.fetch_add(1, Ordering::Relaxed);
        }
        self.waiting.clear();
        match self.queue.take() {
            Some(mut q) => {
                q.reset();
                q
            }
            None => EventQueue::with_capacity(queue_capacity),
        }
    }
}

thread_local! {
    /// One arena per thread: serial figure grids recycle one set of
    /// worker-world storage across every cell, and each shard thread of
    /// [`run_closed_loop_sharded`] recycles across its worker range.
    static ARENA: RefCell<LoopArena> = RefCell::new(LoopArena::new());
}

/// Runs one worker's world: the contiguous global-connection range
/// `[first, first + count)` of `total` connections, seeded from worker
/// `index`'s RNG substream, drawing storage from `arena`. Pure function
/// of its non-arena arguments — the unit both the serial and the
/// sharded drivers compose from.
#[allow(clippy::too_many_arguments)]
fn run_worker_in(
    arena: &mut LoopArena,
    table: &PlatformCosts,
    index: u32,
    first: u64,
    count: u64,
    total: u64,
    duration: Nanos,
    seed: u64,
) -> (u64, Histogram) {
    // Steady state holds at most one pending event per connection (its
    // in-flight Arrive or Finish); pre-size the queue so it never grows
    // mid-run.
    let queue = arena.prepare(count as usize + 1);
    let world = WorkerLoop {
        service: table.service,
        jitter: 0.15,
        rtt: table.rtt,
        busy: false,
        completed: 0,
        latency: Histogram::new(),
        rng: Rng::substream(seed, u64::from(index)),
        waiting: std::mem::take(&mut arena.waiting),
        uniforms: [0.0; UNIFORM_SLAB],
        uniform_pos: UNIFORM_SLAB, // first draw triggers a refill
    };
    let mut sim = Simulation::from_parts(world, queue);
    for g in first..first + count {
        // Stagger initial arrivals across one RTT by *global* connection
        // index, matching the single-world schedule shape.
        let offset = table.rtt * g / total.max(1);
        sim.queue_mut()
            .schedule_at(offset, Ev::Arrive { issued_at: offset });
    }
    sim.run_until(duration);
    let (world, queue) = sim.into_parts();
    arena.waiting = world.waiting;
    arena.queue = Some(queue);
    (world.completed, world.latency)
}

/// [`run_worker_in`] on the calling thread's recycled arena.
fn run_worker(
    table: &PlatformCosts,
    index: u32,
    first: u64,
    count: u64,
    total: u64,
    duration: Nanos,
    seed: u64,
) -> (u64, Histogram) {
    ARENA.with(|arena| {
        run_worker_in(
            &mut arena.borrow_mut(),
            table,
            index,
            first,
            count,
            total,
            duration,
            seed,
        )
    })
}

/// [`run_closed_loop_from`] drawing every worker world's storage from
/// `arena` — the seam the recycled-vs-fresh equivalence proptest
/// drives. Byte-identical to a run over a fresh arena.
pub fn run_closed_loop_from_in(
    arena: &mut LoopArena,
    table: &PlatformCosts,
    connections: u32,
    duration: Nanos,
    seed: u64,
) -> ClosedLoopResult {
    let workers = table.parallelism.max(1);
    let total = u64::from(connections);
    let mut completed = 0u64;
    let mut latency = Histogram::new();
    let mut first = 0u64;
    for w in 0..workers {
        let count = shard_share(total, u64::from(workers), u64::from(w));
        let (done, hist) = run_worker_in(arena, table, w, first, count, total, duration, seed);
        completed += done;
        latency.merge(&hist);
        first += count;
    }
    ClosedLoopResult {
        throughput_rps: completed as f64 / duration.as_secs_f64(),
        latency,
    }
}

/// Runs a closed-loop benchmark from a precomputed [`PlatformCosts`]
/// table: `connections` concurrent clients, for `duration` of simulated
/// time. This is the serial golden reference — worker worlds run one
/// after another on the calling thread's recycled arena, results merged
/// in worker-index order.
pub fn run_closed_loop_from(
    table: &PlatformCosts,
    connections: u32,
    duration: Nanos,
    seed: u64,
) -> ClosedLoopResult {
    ARENA.with(|arena| {
        run_closed_loop_from_in(&mut arena.borrow_mut(), table, connections, duration, seed)
    })
}

/// Runs a closed-loop benchmark: `connections` concurrent clients against
/// `server`, for `duration` of simulated time.
pub fn run_closed_loop(
    server: &ServerModel,
    costs: &CostModel,
    connections: u32,
    duration: Nanos,
    seed: u64,
) -> ClosedLoopResult {
    let table = PlatformCosts::derive(server, costs);
    run_closed_loop_from(&table, connections, duration, seed)
}

/// [`run_closed_loop_from`] with worker worlds distributed over `shards`
/// OS threads. Workers are split into contiguous index ranges (the same
/// [`shard_share`] partition the runner uses for cells) and each
/// thread's partial results are merged back in worker-index order, so
/// the output is **byte-identical** to the serial reference at any
/// shard count — `shards` only changes wall-clock time.
pub fn run_closed_loop_sharded(
    table: &PlatformCosts,
    connections: u32,
    duration: Nanos,
    seed: u64,
    shards: u32,
) -> ClosedLoopResult {
    let workers = table.parallelism.max(1);
    let shards = shards.clamp(1, workers);
    if shards == 1 {
        return run_closed_loop_from(table, connections, duration, seed);
    }
    let total = u64::from(connections);
    // Per-worker world descriptors in worker order: (index, first, count).
    let mut plan = Vec::with_capacity(workers as usize);
    let mut first = 0u64;
    for w in 0..workers {
        let count = shard_share(total, u64::from(workers), u64::from(w));
        plan.push((w, first, count));
        first += count;
    }
    let mut partials: Vec<Vec<(u64, Histogram)>> = Vec::new();
    std::thread::scope(|scope| {
        let mut handles = Vec::with_capacity(shards as usize);
        let mut start = 0usize;
        for s in 0..shards {
            let len = shard_share(u64::from(workers), u64::from(shards), u64::from(s)) as usize;
            let slice = &plan[start..start + len];
            start += len;
            handles.push(scope.spawn(move || {
                slice
                    .iter()
                    .map(|&(w, first, count)| {
                        run_worker(table, w, first, count, total, duration, seed)
                    })
                    .collect::<Vec<_>>()
            }));
        }
        partials = handles.into_iter().map(|h| h.join().unwrap()).collect();
    });
    let mut completed = 0u64;
    let mut latency = Histogram::new();
    for (done, hist) in partials.iter().flatten() {
        completed += done;
        latency.merge(hist);
    }
    ClosedLoopResult {
        throughput_rps: completed as f64 / duration.as_secs_f64(),
        latency,
    }
}

/// Memoizes closed-loop results by the simulation's *true* inputs.
///
/// A closed-loop run is a pure function of the derived
/// [`PlatformCosts`] table once the client side (connections, duration,
/// seed) is fixed — the platform only enters through those derived
/// parameters. Distinct platforms frequently collapse onto the same
/// table: an X-Container's guest kernel ignores the host patch state,
/// so its patched and unpatched variants price requests identically and
/// need only one simulation between them.
///
/// Interior-mutable and thread-safe, so one cache can be shared across
/// a whole figure grid even when the runner executes cells on worker
/// threads. Concurrent misses on the same key may each run the
/// simulation, but the runs are deterministic and identical, so the
/// race only costs time, never changes a result.
#[derive(Debug, Default)]
pub struct ClosedLoopCache {
    #[allow(clippy::type_complexity)]
    map: Mutex<std::collections::HashMap<(PlatformCosts, u32, u64, u64), ClosedLoopResult>>,
    hits: AtomicU64,
    misses: AtomicU64,
}

impl ClosedLoopCache {
    /// Creates an empty cache.
    pub fn new() -> Self {
        Self::default()
    }

    /// Simulations answered from the cache.
    pub fn hits(&self) -> u64 {
        self.hits.load(Ordering::Relaxed)
    }

    /// Simulations actually run.
    pub fn misses(&self) -> u64 {
        self.misses.load(Ordering::Relaxed)
    }

    /// Looks up (or runs and memoizes) the closed loop for one derived
    /// table. The key is the full table plus the client-side knobs —
    /// exactly the inputs of the deterministic simulation, so cached
    /// and uncached paths are observationally identical.
    pub fn get_or_run(
        &self,
        table: &PlatformCosts,
        connections: u32,
        duration: Nanos,
        seed: u64,
    ) -> ClosedLoopResult {
        let key = (*table, connections, duration.as_nanos(), seed);
        if let Some(hit) = self.map.lock().unwrap().get(&key) {
            self.hits.fetch_add(1, Ordering::Relaxed);
            return hit.clone();
        }
        self.misses.fetch_add(1, Ordering::Relaxed);
        // Simulate outside the lock: a long run must not serialize the
        // runner's other cells behind the mutex.
        let result = run_closed_loop_from(table, connections, duration, seed);
        self.map
            .lock()
            .unwrap()
            .entry(key)
            .or_insert_with(|| result.clone());
        result
    }
}

/// [`run_closed_loop`] behind a [`ClosedLoopCache`]: deployments whose
/// derived [`PlatformCosts`] tables coincide share one run. Results are
/// identical to the uncached path — the cache key is exactly the input
/// of the (deterministic) simulation.
pub fn run_closed_loop_cached(
    server: &ServerModel,
    costs: &CostModel,
    connections: u32,
    duration: Nanos,
    seed: u64,
    cache: &ClosedLoopCache,
) -> ClosedLoopResult {
    let table = PlatformCosts::derive(server, costs);
    cache.get_or_run(&table, connections, duration, seed)
}

#[cfg(test)]
mod tests {
    use super::*;
    use xc_runtimes::cloud::CloudEnv;

    fn profile() -> RequestProfile {
        RequestProfile {
            name: "test",
            syscalls: 8,
            recv_bytes: 200,
            send_bytes: 1024,
            app_compute: Nanos::from_micros(3),
            kernel_work: Nanos::from_micros(1),
            process_switches: 0,
            coordination_events: 0,
        }
    }

    fn server(platform: Platform, workers: u32) -> ServerModel {
        ServerModel {
            platform,
            profile: profile(),
            workers,
            cores: 4,
        }
    }

    #[test]
    fn service_time_platform_ordering() {
        let costs = CostModel::skylake_cloud();
        let p = profile();
        let docker = p.service_time(&Platform::docker(CloudEnv::AmazonEc2, true), &costs);
        let xc = p.service_time(&Platform::x_container(CloudEnv::AmazonEc2, true), &costs);
        let gv = p.service_time(&Platform::gvisor(CloudEnv::AmazonEc2, true), &costs);
        assert!(
            xc < docker,
            "X-Container must serve faster than patched Docker"
        );
        assert!(gv > docker * 2, "gVisor interception dominates");
    }

    #[test]
    fn closed_loop_saturates_with_connections() {
        let costs = CostModel::skylake_cloud();
        let s = server(Platform::docker(CloudEnv::AmazonEc2, true), 1);
        let low = run_closed_loop(&s, &costs, 1, Nanos::from_millis(200), 1);
        let high = run_closed_loop(&s, &costs, 64, Nanos::from_millis(200), 1);
        assert!(high.throughput_rps > low.throughput_rps * 2.0);
        // At 64 connections a single worker is saturated: throughput near
        // the capacity ceiling.
        let cap = s.capacity_rps(&costs);
        assert!(high.throughput_rps <= cap * 1.01);
        assert!(high.throughput_rps > cap * 0.85, "high {high:?} cap {cap}");
    }

    #[test]
    fn latency_grows_with_saturation() {
        let costs = CostModel::skylake_cloud();
        let s = server(Platform::docker(CloudEnv::AmazonEc2, true), 1);
        let low = run_closed_loop(&s, &costs, 1, Nanos::from_millis(200), 1);
        let high = run_closed_loop(&s, &costs, 64, Nanos::from_millis(200), 1);
        assert!(high.mean_latency_us() > low.mean_latency_us() * 4.0);
    }

    #[test]
    fn workers_scale_until_cores() {
        let costs = CostModel::skylake_cloud();
        let one = server(Platform::docker(CloudEnv::AmazonEc2, true), 1);
        let four = server(Platform::docker(CloudEnv::AmazonEc2, true), 4);
        let eight = server(Platform::docker(CloudEnv::AmazonEc2, true), 8); // > cores
        assert!(four.capacity_rps(&costs) > one.capacity_rps(&costs) * 3.5);
        assert_eq!(eight.parallelism(), 4, "capped by cores");
    }

    #[test]
    fn multiworker_throughput_scales_in_simulation() {
        // Not just the capacity formula: the per-worker decomposition
        // must actually serve ~4x with 4 workers under saturation.
        let costs = CostModel::skylake_cloud();
        let one = server(Platform::docker(CloudEnv::AmazonEc2, true), 1);
        let four = server(Platform::docker(CloudEnv::AmazonEc2, true), 4);
        let r1 = run_closed_loop(&one, &costs, 64, Nanos::from_millis(200), 1);
        let r4 = run_closed_loop(&four, &costs, 64, Nanos::from_millis(200), 1);
        assert!(
            r4.throughput_rps > r1.throughput_rps * 3.5,
            "one {} four {}",
            r1.throughput_rps,
            r4.throughput_rps
        );
    }

    #[test]
    fn gvisor_cannot_use_multicore() {
        let s = server(Platform::gvisor(CloudEnv::AmazonEc2, true), 4);
        assert_eq!(s.parallelism(), 1);
    }

    #[test]
    fn sharded_matches_serial_reference_exactly() {
        let costs = CostModel::skylake_cloud();
        let s = server(Platform::docker(CloudEnv::AmazonEc2, true), 4);
        let table = PlatformCosts::derive(&s, &costs);
        let serial = run_closed_loop_from(&table, 50, Nanos::from_millis(100), 7);
        for shards in [1, 2, 3, 4, 9] {
            let sharded = run_closed_loop_sharded(&table, 50, Nanos::from_millis(100), 7, shards);
            assert_eq!(
                serial.throughput_rps.to_bits(),
                sharded.throughput_rps.to_bits(),
                "{shards} shards"
            );
            assert_eq!(serial.latency, sharded.latency, "{shards} shards");
        }
    }

    #[test]
    fn cache_returns_identical_results_and_counts() {
        let costs = CostModel::skylake_cloud();
        let s = server(Platform::docker(CloudEnv::AmazonEc2, true), 2);
        let cache = ClosedLoopCache::new();
        let uncached = run_closed_loop(&s, &costs, 16, Nanos::from_millis(100), 7);
        let a = run_closed_loop_cached(&s, &costs, 16, Nanos::from_millis(100), 7, &cache);
        let b = run_closed_loop_cached(&s, &costs, 16, Nanos::from_millis(100), 7, &cache);
        assert_eq!(a.throughput_rps, uncached.throughput_rps);
        assert_eq!(a.latency, uncached.latency);
        assert_eq!(b.throughput_rps, a.throughput_rps);
        assert_eq!(b.latency, a.latency);
        assert_eq!((cache.hits(), cache.misses()), (1, 1));
        // A different seed is a different simulation.
        let _ = run_closed_loop_cached(&s, &costs, 16, Nanos::from_millis(100), 8, &cache);
        assert_eq!((cache.hits(), cache.misses()), (1, 2));
    }

    #[test]
    fn cache_collapses_platforms_with_equal_parameters() {
        // An X-Container's guest kernel ignores the host patch state, so
        // the patched and unpatched deployments derive identical
        // PlatformCosts tables and share one cache entry.
        let costs = CostModel::skylake_cloud();
        let patched = server(Platform::x_container(CloudEnv::AmazonEc2, true), 2);
        let unpatched = server(Platform::x_container(CloudEnv::AmazonEc2, false), 2);
        let cache = ClosedLoopCache::new();
        let a = run_closed_loop_cached(&patched, &costs, 8, Nanos::from_millis(50), 3, &cache);
        let b = run_closed_loop_cached(&unpatched, &costs, 8, Nanos::from_millis(50), 3, &cache);
        assert_eq!((cache.hits(), cache.misses()), (1, 1));
        assert_eq!(a.throughput_rps, b.throughput_rps);
    }

    #[test]
    fn deterministic_given_seed() {
        let costs = CostModel::skylake_cloud();
        let s = server(Platform::docker(CloudEnv::AmazonEc2, true), 2);
        let a = run_closed_loop(&s, &costs, 16, Nanos::from_millis(100), 7);
        let b = run_closed_loop(&s, &costs, 16, Nanos::from_millis(100), 7);
        assert_eq!(a.throughput_rps, b.throughput_rps);
        assert_eq!(a.latency.quantile(0.99), b.latency.quantile(0.99));
    }
}
