//! Per-application request profiles.
//!
//! Each profile documents the kernel-visible footprint of one request for
//! the applications the paper benchmarks, taken from strace-style
//! profiles of the same versions (`nginx:1.13`, `memcached:1.5.7`,
//! `redis:3.2.11`, PHP's built-in server, MySQL): syscalls per request,
//! bytes moved, user-space compute, and extra in-kernel work. The
//! platform-dependent *cost* of that footprint is what
//! [`RequestProfile::service_time`] computes.

use xc_runtimes::platform::Platform;
use xc_sim::cost::CostModel;
use xc_sim::time::Nanos;

use crate::http::RequestProfile;

/// NGINX serving the default static page to `ab`/`wrk` (Figures 3 and 6).
///
/// Per keep-alive request an NGINX worker issues ~8 syscalls
/// (`epoll_wait` share, `recvfrom`, `stat`, `open`+`fstat` amortized by
/// the open-file cache, `writev`/`sendfile`, `setsockopt`) and ships the
/// 612-byte page plus headers.
pub fn nginx_static() -> RequestProfile {
    RequestProfile {
        name: "nginx-static",
        syscalls: 8,
        recv_bytes: 120,
        send_bytes: 850,
        app_compute: Nanos::from_micros(2),
        kernel_work: Nanos::from_nanos(300), // open-file-cache stat + sendfile setup
        process_switches: 0,
        coordination_events: 0,
    }
}

/// NGINX when several worker processes share the listening socket and
/// POSIX state — on Graphene this shared state is where the IPC tax lands
/// (Figure 6b).
pub fn nginx_static_multiworker() -> RequestProfile {
    RequestProfile {
        coordination_events: 1,
        ..nginx_static()
    }
}

/// memcached under `memtier_benchmark`, 1:10 SET:GET (Figure 3).
///
/// An almost pure syscall/packet workload: tiny keys, ~1 µs of hashing
/// and LRU bookkeeping per op, ~8 syscalls (`epoll_wait` share, `read`,
/// `write`, `sendmsg`, timer/stats amortization).
pub fn memcached() -> RequestProfile {
    RequestProfile {
        name: "memcached",
        syscalls: 8,
        recv_bytes: 70,
        send_bytes: 160,
        app_compute: Nanos::from_micros(1),
        kernel_work: Nanos::ZERO,
        process_switches: 0,
        coordination_events: 0,
    }
}

/// Redis under `memtier_benchmark`, 1:10 SET:GET (Figure 3).
///
/// Same packet shape as memcached but substantially more user-space work
/// per op (RESP parsing, object encoding, dict rehashing, expiry checks)
/// — which is why the paper sees X-Containers only *match* Docker on
/// Redis while beating it on memcached: the syscall share of an op is
/// smaller.
pub fn redis() -> RequestProfile {
    RequestProfile {
        name: "redis",
        syscalls: 5,
        recv_bytes: 70,
        send_bytes: 160,
        app_compute: Nanos::from_micros(11),
        kernel_work: Nanos::ZERO,
        process_switches: 0,
        coordination_events: 0,
    }
}

/// One PHP page view that issues a MySQL query (Figure 6c).
///
/// The PHP built-in webserver parses and executes the script (~55 µs),
/// then performs one read-or-write query round trip to MySQL. The query
/// itself is priced by [`mysql_query`]; `process_switches` covers the
/// PHP↔MySQL handoff when they share a host.
pub fn php_page() -> RequestProfile {
    RequestProfile {
        name: "php-page",
        syscalls: 22,
        recv_bytes: 150,
        send_bytes: 900,
        app_compute: Nanos::from_micros(25),
        kernel_work: Nanos::from_micros(1),
        process_switches: 2,
        coordination_events: 0,
    }
}

/// One MySQL query (50/50 read/write mix, §5.5).
pub fn mysql_query() -> RequestProfile {
    RequestProfile {
        name: "mysql-query",
        syscalls: 18,
        recv_bytes: 200,
        send_bytes: 300,
        app_compute: Nanos::from_micros(15),
        kernel_work: Nanos::from_micros(15), // buffer pool + redo log + fsync path
        process_switches: 0,
        coordination_events: 0,
    }
}

/// NGINX + PHP-FPM page for the Figure 8 scalability study
/// (`webdevops/php-nginx`, one worker each): NGINX proxies to PHP-FPM
/// over FastCGI, forcing two extra process switches per request.
pub fn nginx_php_fpm() -> RequestProfile {
    RequestProfile {
        name: "nginx-php-fpm",
        syscalls: 26,
        recv_bytes: 150,
        send_bytes: 1100,
        app_compute: Nanos::from_micros(40),
        kernel_work: Nanos::from_micros(1),
        process_switches: 2,
        coordination_events: 0,
    }
}

/// HAProxy forwarding one request+response pair in user space
/// (Figure 9): four socket hops (client→LB, LB→backend, backend→LB,
/// LB→client) at ~2 syscalls each plus event-loop bookkeeping.
pub fn haproxy_forward() -> RequestProfile {
    RequestProfile {
        name: "haproxy-forward",
        syscalls: 10,
        recv_bytes: 120 + 850, // request in + response back from backend
        send_bytes: 120 + 850, // request out + response to client
        app_compute: Nanos::from_micros(4),
        kernel_work: Nanos::ZERO,
        process_switches: 0,
        coordination_events: 0,
    }
}

/// One cloud-native microservice request for the cluster study: a JSON
/// API endpoint doing real application work (deserialize, business
/// logic, serialize ~8 KB) over a chatty runtime — the
/// service-mesh-era container the van Rijn/Rellermeyer survey and the
/// Quark motivation describe. Deliberately heavyweight (~1 ms on
/// patched Docker) so host-level density, not per-request syscall
/// shaving, dominates the cluster comparison — while the 120-syscall
/// footprint still separates platforms that intercept syscalls.
pub fn microservice() -> RequestProfile {
    RequestProfile {
        name: "microservice",
        syscalls: 120,
        recv_bytes: 2_048,
        send_bytes: 8_192,
        app_compute: Nanos::from_micros(620),
        kernel_work: Nanos::from_micros(60),
        process_switches: 1,
        coordination_events: 0,
    }
}

/// All macro-benchmark profiles of Figure 3, in figure order.
pub fn figure3_profiles() -> Vec<RequestProfile> {
    vec![nginx_static(), memcached(), redis()]
}

/// Convenience: service time of a profile on a platform.
pub fn service_time(profile: &RequestProfile, platform: &Platform, costs: &CostModel) -> Nanos {
    profile.service_time(platform, costs)
}

#[cfg(test)]
mod tests {
    use super::*;
    use xc_runtimes::cloud::CloudEnv;
    use xc_runtimes::platform::Platform;

    fn ratio(profile: &RequestProfile, cloud: CloudEnv) -> f64 {
        let costs = CostModel::skylake_cloud();
        let docker = profile
            .service_time(&Platform::docker(cloud, true), &costs)
            .as_nanos() as f64;
        let xc = profile
            .service_time(&Platform::x_container(cloud, true), &costs)
            .as_nanos() as f64;
        docker / xc
    }

    #[test]
    fn memcached_gains_most_redis_least() {
        // Figure 3's shape: memcached throughput gain > NGINX gain >
        // Redis gain ≈ 1.
        for cloud in [CloudEnv::AmazonEc2, CloudEnv::GoogleGce] {
            let m = ratio(&memcached(), cloud);
            let n = ratio(&nginx_static(), cloud);
            let r = ratio(&redis(), cloud);
            assert!(m > n, "memcached {m} vs nginx {n}");
            assert!(n > r, "nginx {n} vs redis {r}");
            assert!((1.2..2.6).contains(&m), "memcached ratio {m}");
            assert!((0.9..1.8).contains(&n), "nginx ratio {n}");
            assert!((0.8..1.4).contains(&r), "redis ratio {r}");
        }
    }

    #[test]
    fn gvisor_suffers_everywhere() {
        let costs = CostModel::skylake_cloud();
        for profile in figure3_profiles() {
            let docker = profile
                .service_time(&Platform::docker(CloudEnv::GoogleGce, true), &costs)
                .as_nanos() as f64;
            let gv = profile
                .service_time(&Platform::gvisor(CloudEnv::GoogleGce, true), &costs)
                .as_nanos() as f64;
            assert!(
                gv / docker > 2.0,
                "{}: gVisor only {}x",
                profile.name,
                gv / docker
            );
        }
    }

    #[test]
    fn clear_container_trails_docker_on_macro() {
        // Nested-virtualization I/O tax (Figure 3's Clear bars < 1).
        let costs = CostModel::skylake_cloud();
        for profile in figure3_profiles() {
            let docker = profile
                .service_time(&Platform::docker(CloudEnv::GoogleGce, true), &costs)
                .as_nanos() as f64;
            let cc = profile
                .service_time(
                    &Platform::clear_container(CloudEnv::GoogleGce, true).unwrap(),
                    &costs,
                )
                .as_nanos() as f64;
            assert!(cc > docker, "{}: Clear must trail Docker", profile.name);
        }
    }

    #[test]
    fn profiles_have_distinct_footprints() {
        let p = figure3_profiles();
        assert_eq!(p.len(), 3);
        assert!(redis().app_compute > memcached().app_compute);
        assert!(nginx_php_fpm().process_switches > 0);
        assert_eq!(nginx_static_multiworker().coordination_events, 1);
    }
}
