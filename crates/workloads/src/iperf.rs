//! `iperf` TCP stream throughput (Figure 5).
//!
//! A sender pushes large buffers through a TCP stream as fast as the
//! kernel path allows. Throughput is CPU-bound on the per-byte and
//! per-segment kernel costs (all platforms share the same physical NIC),
//! so the figure normalizes CPU cost per byte.

use xc_runtimes::platform::Platform;
use xc_sim::cost::CostModel;

/// Application write size per send call (iperf default 128 KiB).
pub const SEND_SIZE: u64 = 128 * 1024;

/// Physical NIC line rate in bits per second (10 GbE in the local
/// cluster; cloud instances were also 10 Gb-class).
pub const LINE_RATE_BPS: f64 = 10e9;

/// The iperf benchmark.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct IperfBench;

impl IperfBench {
    /// Achievable throughput in bits per second: the CPU-bound rate
    /// capped at line rate.
    pub fn throughput_bps(platform: &Platform, costs: &CostModel) -> f64 {
        let net = platform.net_stack(costs);
        let per_send = platform.syscall_cost(costs)
            + net
                .send_cost(costs, SEND_SIZE)
                .scale(platform.net_work_multiplier());
        let per_send = platform.environment_adjust(per_send);
        let cpu_bound = SEND_SIZE as f64 * 8.0 / per_send.as_secs_f64();
        cpu_bound.min(LINE_RATE_BPS)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use xc_runtimes::cloud::CloudEnv;

    #[test]
    fn iperf_is_roughly_flat_across_real_contenders() {
        // Figure 5: iperf shows all platforms near Docker except gVisor.
        let costs = CostModel::skylake_cloud();
        let cloud = CloudEnv::AmazonEc2;
        let docker = IperfBench::throughput_bps(&Platform::docker(cloud, true), &costs);
        let xc = IperfBench::throughput_bps(&Platform::x_container(cloud, true), &costs);
        let xen = IperfBench::throughput_bps(&Platform::xen_container(cloud, true), &costs);
        let rel_x = xc / docker;
        let rel_xen = xen / docker;
        assert!((0.7..1.4).contains(&rel_x), "x rel {rel_x}");
        assert!((0.5..1.2).contains(&rel_xen), "xen rel {rel_xen}");
    }

    #[test]
    fn gvisor_network_collapses() {
        let costs = CostModel::skylake_cloud();
        let cloud = CloudEnv::AmazonEc2;
        let docker = IperfBench::throughput_bps(&Platform::docker(cloud, true), &costs);
        let gv = IperfBench::throughput_bps(&Platform::gvisor(cloud, true), &costs);
        assert!(gv < docker * 0.75, "gVisor {gv} vs docker {docker}");
    }

    #[test]
    fn line_rate_cap_applies() {
        let costs = CostModel::skylake_cloud();
        for p in Platform::cloud_configurations(CloudEnv::GoogleGce) {
            assert!(IperfBench::throughput_bps(&p, &costs) <= LINE_RATE_BPS);
        }
    }
}
