//! Figure 9 — kernel-level load balancing (§5.7).
//!
//! Topology: three single-worker NGINX backends plus one load balancer on
//! the same physical machine, driven by `wrk`. Four configurations:
//!
//! * **Docker + HAProxy** — user-space proxying on the shared host kernel,
//! * **X-Container + HAProxy** — the same proxy, but its syscall storm is
//!   ABOM-optimized (the paper's 2× gain),
//! * **X-Container + IPVS NAT** — kernel-level forwarding; responses
//!   return through the balancer, which stays the bottleneck (+12%),
//! * **X-Container + IPVS direct routing** — responses bypass the
//!   balancer entirely; the bottleneck shifts to the NGINX backends
//!   (another ~2.5×).
//!
//! IPVS requires inserting kernel modules and rewriting iptables/ARP
//! rules — possible in an X-Container because the kernel is *yours*, and
//! not possible in Docker without host root (§5.7's point).

use xc_libos::config::KernelModule;
use xc_runtimes::cloud::CloudEnv;
use xc_runtimes::platform::Platform;
use xc_sim::cost::CostModel;
use xc_sim::time::Nanos;

use crate::apps::{haproxy_forward, nginx_static};

/// Request and response sizes on the wire (static NGINX page).
const REQ_BYTES: u64 = 120;
const RESP_BYTES: u64 = 850;

/// Per-packet connection-tracking work IPVS/netfilter performs.
const CONNTRACK_PER_PACKET: Nanos = Nanos::from_nanos(550);

/// Number of backend NGINX servers.
pub const BACKENDS: u32 = 3;

/// The four Figure 9 configurations.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum LbMode {
    /// HAProxy in a Docker container.
    HaproxyDocker,
    /// HAProxy in an X-Container.
    HaproxyXContainer,
    /// IPVS masquerading (NAT) in an X-Container kernel.
    IpvsNat,
    /// IPVS direct routing in X-Container kernels (balancer + backends).
    IpvsDirectRouting,
}

impl LbMode {
    /// All modes in figure order.
    pub const ALL: [LbMode; 4] = [
        LbMode::HaproxyDocker,
        LbMode::HaproxyXContainer,
        LbMode::IpvsNat,
        LbMode::IpvsDirectRouting,
    ];

    /// Figure label.
    pub fn label(self) -> &'static str {
        match self {
            LbMode::HaproxyDocker => "Docker (haproxy)",
            LbMode::HaproxyXContainer => "X-Container (haproxy)",
            LbMode::IpvsNat => "X-Container (ipvs NAT)",
            LbMode::IpvsDirectRouting => "X-Container (ipvs Route)",
        }
    }

    /// Whether this mode needs a kernel module the platform must permit.
    pub fn needs_ipvs(self) -> bool {
        matches!(self, LbMode::IpvsNat | LbMode::IpvsDirectRouting)
    }

    fn backend_platform(self) -> Platform {
        match self {
            LbMode::HaproxyDocker => Platform::docker(CloudEnv::LocalCluster, true),
            // Direct routing additionally rewires the backends' kernels
            // (ARP rules + the IPVS module) — free on X-Containers, whose
            // kernels are their own; see `requires_backend_module`.
            _ => Platform::x_container(CloudEnv::LocalCluster, true),
        }
    }

    /// Whether the backends themselves need the IPVS module and ARP
    /// rewiring (direct routing's extra requirement, §5.7).
    pub fn requires_backend_module(self) -> Option<KernelModule> {
        matches!(self, LbMode::IpvsDirectRouting).then_some(KernelModule::Ipvs)
    }

    fn balancer_platform(self) -> Platform {
        match self {
            LbMode::HaproxyDocker => Platform::docker(CloudEnv::LocalCluster, true),
            _ => Platform::x_container(CloudEnv::LocalCluster, true),
        }
    }
}

/// CPU cost for the balancer to shepherd one request+response pair.
pub fn balancer_cost(mode: LbMode, costs: &CostModel) -> Nanos {
    let platform = mode.balancer_platform();
    match mode {
        LbMode::HaproxyDocker | LbMode::HaproxyXContainer => {
            // User-space proxy: terminate, re-originate, relay back.
            haproxy_forward().service_time(&platform, costs)
        }
        LbMode::IpvsNat => {
            // Kernel forward of the request and the (NAT-rewritten)
            // response; packets still traverse the split driver twice per
            // hop because the balancer kernel sits in its own container.
            let net = platform.net_stack(costs);
            let fwd = net.forward_cost(costs, REQ_BYTES)
                + net.forward_cost(costs, RESP_BYTES)
                + net.recv_cost(costs, REQ_BYTES).scale(0.5)
                + net.send_cost(costs, RESP_BYTES).scale(0.5)
                + CONNTRACK_PER_PACKET * 4;
            platform.environment_adjust(fwd)
        }
        LbMode::IpvsDirectRouting => {
            // Only the inbound request passes through; the response goes
            // straight from the backend to the client.
            let net = platform.net_stack(costs);
            let fwd = net.forward_cost(costs, REQ_BYTES) + CONNTRACK_PER_PACKET;
            platform.environment_adjust(fwd)
        }
    }
}

/// CPU cost for one backend to serve one request.
pub fn backend_cost(mode: LbMode, costs: &CostModel) -> Nanos {
    nginx_static().service_time(&mode.backend_platform(), costs)
}

/// Aggregate throughput: the slower of the balancer and the backend pool
/// (every component is single-worker / single-vCPU, §5.7).
pub fn throughput(mode: LbMode, costs: &CostModel) -> f64 {
    let lb = 1.0 / balancer_cost(mode, costs).as_secs_f64();
    let pool = f64::from(BACKENDS) / backend_cost(mode, costs).as_secs_f64();
    lb.min(pool)
}

/// Which component saturates first.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Bottleneck {
    /// The load balancer is the limit.
    Balancer,
    /// The NGINX backends are the limit.
    Backends,
}

/// Reports the saturating component for a mode.
pub fn bottleneck(mode: LbMode, costs: &CostModel) -> Bottleneck {
    let lb = 1.0 / balancer_cost(mode, costs).as_secs_f64();
    let pool = f64::from(BACKENDS) / backend_cost(mode, costs).as_secs_f64();
    if lb <= pool {
        Bottleneck::Balancer
    } else {
        Bottleneck::Backends
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn c() -> CostModel {
        CostModel::skylake_cloud()
    }

    #[test]
    fn x_haproxy_roughly_doubles_docker_haproxy() {
        // "X-Containers with HAProxy achieved twice the throughput of
        // Docker containers" (§5.7).
        let costs = c();
        let docker = throughput(LbMode::HaproxyDocker, &costs);
        let x = throughput(LbMode::HaproxyXContainer, &costs);
        let ratio = x / docker;
        assert!((1.5..2.8).contains(&ratio), "haproxy ratio {ratio:.2}");
    }

    #[test]
    fn ipvs_nat_improves_moderately_and_stays_lb_bound() {
        // "+12%. In this case the load balancer was the bottleneck."
        let costs = c();
        let hx = throughput(LbMode::HaproxyXContainer, &costs);
        let nat = throughput(LbMode::IpvsNat, &costs);
        let gain = nat / hx;
        assert!((1.02..1.6).contains(&gain), "NAT gain {gain:.2}");
        assert_eq!(bottleneck(LbMode::IpvsNat, &costs), Bottleneck::Balancer);
    }

    #[test]
    fn direct_routing_shifts_bottleneck_and_multiplies() {
        // "With direct routing mode, the bottleneck shifted to the NGINX
        // servers, and total throughput improved by another factor of 2.5."
        let costs = c();
        let nat = throughput(LbMode::IpvsNat, &costs);
        let dr = throughput(LbMode::IpvsDirectRouting, &costs);
        let gain = dr / nat;
        assert!((1.7..3.5).contains(&gain), "DR gain {gain:.2}");
        assert_eq!(
            bottleneck(LbMode::IpvsDirectRouting, &costs),
            Bottleneck::Backends
        );
    }

    #[test]
    fn figure_ordering_monotone() {
        let costs = c();
        let values: Vec<f64> = LbMode::ALL.iter().map(|m| throughput(*m, &costs)).collect();
        for pair in values.windows(2) {
            assert!(pair[1] > pair[0], "figure bars must increase: {values:?}");
        }
    }

    #[test]
    fn ipvs_flag() {
        assert!(LbMode::IpvsNat.needs_ipvs());
        assert!(!LbMode::HaproxyDocker.needs_ipvs());
        assert!(LbMode::IpvsDirectRouting.label().contains("Route"));
        assert_eq!(
            LbMode::IpvsDirectRouting.requires_backend_module(),
            Some(KernelModule::Ipvs)
        );
        assert_eq!(LbMode::IpvsNat.requires_backend_module(), None);
    }
}
