//! Property-based tests for the sharded closed loop and the derived
//! cost table (enable with `--features proptest`).
//!
//! The always-on unit suites pin these properties at fixed points; the
//! properties here quantify over the interesting inputs: *any* shard
//! count must reproduce the serial reference bit-for-bit, and *any*
//! deployment in the evaluation matrix must derive the same costs
//! through [`PlatformCosts`] as through the per-event path.

use proptest::prelude::*;
use xc_runtimes::cloud::CloudEnv;
use xc_runtimes::platform::Platform;
use xc_sim::cost::CostModel;
use xc_sim::time::Nanos;
use xc_workloads::apps;
use xc_workloads::cluster::{run_cluster_range_in, ClusterParams, WorldArena};
use xc_workloads::costs::PlatformCosts;
use xc_workloads::http::{
    run_closed_loop_from, run_closed_loop_from_in, run_closed_loop_sharded, LoopArena, ServerModel,
};

fn arb_cloud() -> impl Strategy<Value = CloudEnv> {
    prop_oneof![
        Just(CloudEnv::AmazonEc2),
        Just(CloudEnv::GoogleGce),
        Just(CloudEnv::LocalCluster),
    ]
}

fn arb_platform() -> impl Strategy<Value = Platform> {
    (arb_cloud(), any::<bool>(), 0u8..4).prop_map(|(cloud, patched, kind)| match kind {
        0 => Platform::docker(cloud, patched),
        1 => Platform::xen_container(cloud, patched),
        2 => Platform::x_container(cloud, patched),
        _ => Platform::gvisor(cloud, patched),
    })
}

fn arb_profile() -> impl Strategy<Value = xc_workloads::http::RequestProfile> {
    prop_oneof![
        Just(apps::nginx_static()),
        Just(apps::memcached()),
        Just(apps::redis()),
        Just(apps::php_page()),
        Just(apps::microservice()),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Sharding is pure plumbing: any shard count (including counts
    /// above the worker count, which clamp) reproduces the serial
    /// worker-index-order merge bit-for-bit — throughput to the last
    /// mantissa bit, latency histogram bucket-for-bucket.
    #[test]
    fn sharded_closed_loop_matches_serial(
        platform in arb_platform(),
        profile in arb_profile(),
        connections in 1u32..48,
        workers in 1u32..5,
        duration_ms in 5u64..40,
        seed in any::<u64>(),
        shards in 1u32..13,
    ) {
        let costs = CostModel::skylake_cloud();
        let server = ServerModel { platform, profile, workers, cores: 4 };
        let table = PlatformCosts::derive(&server, &costs);
        let duration = Nanos::from_millis(duration_ms);
        let serial = run_closed_loop_from(&table, connections, duration, seed);
        let sharded = run_closed_loop_sharded(&table, connections, duration, seed, shards);
        prop_assert_eq!(
            serial.throughput_rps.to_bits(),
            sharded.throughput_rps.to_bits(),
            "throughput diverged at {} shards", shards
        );
        prop_assert_eq!(serial.latency, sharded.latency, "histogram diverged at {} shards", shards);
    }

    /// The precomputed table is exactly the per-event derivation for
    /// every deployment: same service time, same wire RTT, same
    /// parallelism — so replacing per-event derivation with the table
    /// can never change a simulation result.
    #[test]
    fn platform_costs_match_per_event_derivation(
        platform in arb_platform(),
        profile in arb_profile(),
        workers in 1u32..9,
        cores in 1u32..9,
    ) {
        let costs = CostModel::skylake_cloud();
        let server = ServerModel { platform, profile, workers, cores };
        let table = PlatformCosts::derive(&server, &costs);
        prop_assert_eq!(
            table.service,
            server.profile.service_time(&server.platform, &costs)
        );
        prop_assert_eq!(
            table.rtt,
            server.platform.net_stack(&costs).wire_latency(&costs)
        );
        prop_assert_eq!(table.parallelism, server.parallelism());
        // And the capacity ceiling follows from those fields alone.
        let expect = f64::from(server.parallelism()) / table.service.as_secs_f64();
        prop_assert_eq!(table.capacity_rps().to_bits(), expect.to_bits());
    }

    /// Closed-loop arena recycling is observationally invisible: a
    /// [`LoopArena`] reused across a random sequence of closed-loop
    /// runs reproduces each run's throughput to the last mantissa bit
    /// and its latency histogram bucket-for-bucket, exactly as a fresh
    /// arena per run would — the contract behind the thread-local
    /// arenas inside `run_closed_loop_from` and the sharded workers.
    #[test]
    fn loop_arena_reuse_matches_fresh_worlds(
        runs in proptest::collection::vec(
            (arb_platform(), arb_profile(), 1u32..40, 2u64..25, any::<u64>()),
            1..5,
        ),
    ) {
        let costs = CostModel::skylake_cloud();
        let mut recycled = LoopArena::new();
        for (platform, profile, connections, duration_ms, seed) in runs {
            let server = ServerModel { platform, profile, workers: 2, cores: 4 };
            let table = PlatformCosts::derive(&server, &costs);
            let duration = Nanos::from_millis(duration_ms);
            let reused =
                run_closed_loop_from_in(&mut recycled, &table, connections, duration, seed);
            let fresh =
                run_closed_loop_from_in(&mut LoopArena::new(), &table, connections, duration, seed);
            prop_assert_eq!(reused.throughput_rps.to_bits(), fresh.throughput_rps.to_bits());
            prop_assert_eq!(reused.latency, fresh.latency);
        }
    }

    /// Arena reuse is observationally invisible: running a host range
    /// through one continuously-recycled [`WorldArena`] produces the
    /// same [`ClusterResult`] — every counter and every histogram
    /// bucket — as giving each host a factory-fresh arena, for any
    /// platform, grid shape, and seed. This is the property that makes
    /// the cluster study's thread-local arena safe under work stealing:
    /// whichever worker's arena a cell lands on, the bytes match.
    #[test]
    fn world_arena_reuse_matches_fresh_worlds(
        platform in arb_platform(),
        hosts in 1u32..5,
        domains_per_host in 1u32..5,
        clients in 0u64..2_000,
        duration_ms in 1u64..10,
        queue_cap in 1usize..32,
        seed in any::<u64>(),
    ) {
        let costs = CostModel::skylake_cloud();
        let server = ServerModel {
            platform,
            profile: apps::microservice(),
            workers: 1,
            cores: 1,
        };
        let table = PlatformCosts::derive(&server, &costs);
        let params = ClusterParams {
            hosts,
            domains_per_host,
            clients,
            think_time: Nanos::from_millis(50),
            duration: Nanos::from_millis(duration_ms),
            queue_cap,
            zipf_theta: 0.2,
            host_cores: 4,
            seed,
        };

        // One arena recycled across the whole range…
        let mut reused = WorldArena::new();
        let whole = run_cluster_range_in(&mut reused, &table, &params, 0, hosts);

        // …versus a brand-new arena per host, merged in host order.
        let mut fresh = xc_workloads::cluster::ClusterResult::default();
        for host in 0..hosts {
            let mut arena = WorldArena::new();
            let one = run_cluster_range_in(&mut arena, &table, &params, host, 1);
            fresh.merge(&one);
        }

        prop_assert_eq!(whole, fresh);
    }
}
