//! Property-based tests for the hypervisor substrate: scheduler
//! fairness, memory accounting, tmem conservation, and migration
//! algebra.

use proptest::prelude::*;
use xc_sim::cost::CostModel;
use xc_sim::time::Nanos;
use xc_xen::domain::{DomainId, DomainKind, Machine};
use xc_xen::migrate::{plan_precopy, MigrationParams};
use xc_xen::sched::CreditScheduler;
use xc_xen::tmem::{PoolKind, Tmem};

proptest! {
    /// The credit scheduler distributes time proportionally to weight
    /// for any runnable population.
    #[test]
    fn credit_weighted_fairness(weights in proptest::collection::vec(1u32..8, 2..6)) {
        let mut s = CreditScheduler::new(1);
        let vcpus: Vec<_> = weights.iter().map(|w| s.add_vcpu(w * 256)).collect();
        for &v in &vcpus {
            s.set_runnable(v, true).unwrap();
        }
        for _ in 0..4000 {
            s.tick();
        }
        let total_weight: f64 = weights.iter().map(|&w| f64::from(w)).sum();
        let total_time: f64 = vcpus
            .iter()
            .map(|&v| s.run_time(v).unwrap().as_secs_f64())
            .sum();
        for (&v, &w) in vcpus.iter().zip(&weights) {
            let share = s.run_time(v).unwrap().as_secs_f64() / total_time;
            let expect = f64::from(w) / total_weight;
            prop_assert!(
                (share - expect).abs() < 0.05,
                "weight {w}: share {share:.3} expect {expect:.3}"
            );
        }
    }

    /// Machine memory accounting conserves: free + sum(reserved) = total,
    /// under any create/destroy interleaving.
    #[test]
    fn machine_memory_conserved(ops in proptest::collection::vec((0u64..512, any::<bool>()), 1..60)) {
        let mut m = Machine::new(8_192);
        let mut live: Vec<xc_xen::DomainId> = Vec::new();
        for (mem, destroy) in ops {
            if destroy && !live.is_empty() {
                let id = live.remove(0);
                m.destroy_domain(id).unwrap();
            } else if let Ok(id) = m.create_domain("d", DomainKind::XContainer, mem, 1) {
                live.push(id);
            }
            let reserved: u64 = m.domains().map(|d| d.memory_mb()).sum();
            prop_assert_eq!(m.free_memory_mb() + reserved, 8_192);
        }
    }

    /// tmem never stores more pages than its capacity, and persistent
    /// puts that report success are always retrievable (until consumed).
    #[test]
    fn tmem_capacity_and_persistence(
        capacity in 1u64..32,
        keys in proptest::collection::vec((0u64..16, 0u32..4, any::<bool>()), 1..64),
    ) {
        let mut t = Tmem::new(capacity);
        let dom = DomainId(1);
        let eph = t.new_pool(dom, PoolKind::Ephemeral);
        let pers = t.new_pool(dom, PoolKind::Persistent);
        let mut guaranteed = Vec::new();
        for (obj, idx, persistent) in keys {
            let key = (obj, idx);
            if persistent {
                if t.put(dom, pers, key, obj).unwrap() {
                    guaranteed.retain(|(k, _)| *k != key);
                    guaranteed.push((key, obj));
                }
            } else {
                let _ = t.put(dom, eph, key, obj).unwrap();
            }
            prop_assert!(t.used_pages() <= capacity, "capacity respected");
        }
        for (key, value) in guaranteed {
            prop_assert_eq!(t.get(dom, pers, key).unwrap(), Some(value), "guarantee broken");
        }
    }

    /// Migration algebra: total data sent ≥ memory footprint; converged
    /// plans respect the downtime bound; rounds strictly shrink.
    #[test]
    fn migration_invariants(
        memory in 32.0f64..2048.0,
        dirty in 0.0f64..2000.0,
        link in 100.0f64..4000.0,
    ) {
        let p = MigrationParams {
            memory_mb: memory,
            dirty_rate_mb_s: dirty,
            link_mb_s: link,
            downtime_threshold_mb: 4.0,
            max_rounds: 30,
        };
        let plan = plan_precopy(p);
        prop_assert!(plan.total_sent_mb() >= memory - 1e-6);
        prop_assert!(!plan.rounds.is_empty());
        for pair in plan.rounds.windows(2) {
            prop_assert!(pair[1].sent_mb <= pair[0].sent_mb + 1e-9, "rounds must not grow");
        }
        if plan.converged {
            let bound = Nanos::from_secs_f64(p.downtime_threshold_mb / link)
                + Nanos::from_millis(3);
            prop_assert!(plan.downtime <= bound + Nanos::from_nanos(1));
        }
        if dirty < link * 0.5 {
            prop_assert!(plan.converged, "slow dirtier must converge");
        }
    }

    /// Hypercall batch costs are subadditive: one batch of n is never
    /// more expensive than n batches of 1.
    #[test]
    fn mmu_batching_subadditive(entries in 1u64..4096) {
        let costs = CostModel::skylake_cloud();
        let batched = costs.mmu_update_batch(entries);
        let unbatched = costs.mmu_update_batch(1) * entries;
        prop_assert!(batched <= unbatched);
    }
}
