//! `XenError` rejection paths under sustained abuse.
//!
//! The module tests cover one rejection each; these integration tests
//! exercise the paths the fault-injection layer (`xc-faults`) leans on:
//! exhaustion is stable and per-domain, revoked grant references stay
//! dead through slot reuse, and control-plane operations from an
//! unprivileged DomU are refused without perturbing state.

use xc_xen::domain::DomainId;
use xc_xen::events::{EventChannels, MAX_PORTS};
use xc_xen::grant::{GrantAccess, GrantTable, MAX_GRANTS};
use xc_xen::xenstore::XenStore;
use xc_xen::XenError;

#[test]
fn port_exhaustion_is_stable_and_per_domain() {
    let mut ev = EventChannels::new();
    let full = DomainId(1);
    for _ in 0..MAX_PORTS {
        ev.alloc_unbound(full).expect("below the port limit");
    }
    // Exhaustion is not transient: every further allocation fails the
    // same way, it does not corrupt the table.
    for _ in 0..3 {
        assert_eq!(ev.alloc_unbound(full), Err(XenError::NoFreePorts));
    }
    // The limit is per-domain; a neighbor still allocates and binds
    // against the full domain's existing ports.
    let neighbor = DomainId(2);
    let np = ev.alloc_unbound(neighbor).expect("fresh domain has ports");
    ev.bind(full, 0, neighbor, np)
        .expect("bind survives exhaustion");
    ev.send(neighbor, np).expect("send survives exhaustion");
    assert_eq!(ev.take_pending(full), vec![0]);
}

#[test]
fn revoked_grant_ref_is_dead_in_every_operation() {
    let mut gt = GrantTable::new();
    let (front, back) = (DomainId(1), DomainId(2));
    let gref = gt
        .grant(front, back, 0x7000, GrantAccess::ReadWrite)
        .expect("grant");
    gt.map(back, gref).expect("map");
    gt.unmap(back, gref).expect("unmap");
    gt.revoke(front, gref).expect("revoke");

    // A revocation mid-transfer leaves the grantee holding a stale ref:
    // every grant operation on it must fail with BadGrantRef, including
    // after the slot is reused by a new grant.
    assert_eq!(gt.map(back, gref), Err(XenError::BadGrantRef(gref)));
    assert_eq!(gt.copy(back, gref, 4096), Err(XenError::BadGrantRef(gref)));
    assert_eq!(gt.unmap(back, gref), Err(XenError::BadGrantRef(gref)));
    assert_eq!(gt.revoke(front, gref), Err(XenError::BadGrantRef(gref)));

    let fresh = gt
        .grant(front, back, 0x8000, GrantAccess::ReadOnly)
        .expect("slot reuse");
    assert_ne!(fresh, gref, "generation bump changes the reference");
    assert_eq!(gt.map(back, gref), Err(XenError::BadGrantRef(gref)));
    assert_eq!(gt.map(back, fresh), Ok(0x8000));
    assert_eq!(gt.bytes_copied(), 0, "failed copies move no bytes");
}

#[test]
fn grant_table_exhaustion_reports_full() {
    let mut gt = GrantTable::new();
    let (front, back) = (DomainId(1), DomainId(2));
    let mut last = 0;
    for frame in 0..u64::from(MAX_GRANTS) {
        last = gt
            .grant(front, back, frame, GrantAccess::ReadOnly)
            .expect("below the grant limit");
    }
    assert_eq!(
        gt.grant(front, back, 0xdead, GrantAccess::ReadOnly),
        Err(XenError::GrantTableFull)
    );
    // Revoking one entry frees exactly one slot.
    gt.revoke(front, last).expect("revoke");
    gt.grant(front, back, 0xbeef, GrantAccess::ReadOnly)
        .expect("freed slot is reusable");
}

#[test]
fn domu_control_ops_are_permission_denied() {
    let mut store = XenStore::new();
    let dom0 = DomainId(0);
    let guest = DomainId(5);
    let intruder = DomainId(6);

    // Dom0 provisions the guest's control nodes.
    store
        .write(dom0, "/local/domain/5/console", "hvc0")
        .expect("dom0 writes anywhere");

    // A DomU may not write outside its own subtree — the classic
    // control-plane escape attempt.
    let denied = store.write(intruder, "/local/domain/5/console", "pwned");
    assert!(matches!(
        denied,
        Err(XenError::PermissionDenied { caller, op })
            if caller == intruder && op == "xenstore write"
    ));
    // Nor may it read another guest's nodes or re-grant permissions.
    assert!(matches!(
        store.read(intruder, "/local/domain/5/console"),
        Err(XenError::PermissionDenied { .. })
    ));
    assert!(matches!(
        store.set_perm(intruder, "/local/domain/5/console", intruder),
        Err(XenError::PermissionDenied { .. })
    ));
    // The denied operations left the node untouched and readable by its
    // rightful owners.
    assert_eq!(
        store.read(dom0, "/local/domain/5/console"),
        Ok(Some("hvc0"))
    );
    store
        .write(guest, "/local/domain/5/state", "running")
        .expect("a guest writes under its own subtree");
}
