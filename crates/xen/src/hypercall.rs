//! The hypercall interface.
//!
//! §3.4: "X-Containers rely on a small X-Kernel … with a small number of
//! hypervisor calls that lead to a smaller number of vulnerabilities in
//! practice." This module enumerates the hypercalls the model uses, maps
//! each to its primitive cost, and keeps per-call accounting so harnesses
//! can report *how many privileged crossings* each architecture performed
//! — the quantity the paper's performance arguments reduce to.

use std::collections::BTreeMap;
use std::fmt;

use xc_sim::cost::CostModel;
use xc_sim::time::Nanos;

/// The modelled hypercall set (names follow Xen's).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Hypercall {
    /// Batched page-table updates; carries the number of entries.
    MmuUpdate {
        /// PTE updates in the batch.
        entries: u64,
    },
    /// Atomic return-from-interrupt with privilege switch (PV guests
    /// only; X-LibOS replaces it with a user-mode `ret`, §4.2).
    Iret,
    /// Event-channel operation (bind/send/unmask).
    EventChannelOp,
    /// Grant-table operation (map/unmap/copy).
    GrantTableOp {
        /// KiB moved for copy operations (0 for map/unmap).
        copy_kb: u64,
    },
    /// Scheduler operation (yield/block).
    SchedOp,
    /// Install a new page-table base (context switch).
    NewBaseptr,
    /// Update a single VA mapping.
    UpdateVaMapping,
    /// Set the guest's trap/exception table.
    SetTrapTable,
    /// Set per-vCPU timer.
    SetTimerOp,
}

impl Hypercall {
    /// A stable name for accounting keys.
    pub fn name(&self) -> &'static str {
        match self {
            Hypercall::MmuUpdate { .. } => "mmu_update",
            Hypercall::Iret => "iret",
            Hypercall::EventChannelOp => "event_channel_op",
            Hypercall::GrantTableOp { .. } => "grant_table_op",
            Hypercall::SchedOp => "sched_op",
            Hypercall::NewBaseptr => "new_baseptr",
            Hypercall::UpdateVaMapping => "update_va_mapping",
            Hypercall::SetTrapTable => "set_trap_table",
            Hypercall::SetTimerOp => "set_timer_op",
        }
    }

    /// Cost of this hypercall under the given model: the base trap plus
    /// per-operation work.
    pub fn cost(&self, costs: &CostModel) -> Nanos {
        match *self {
            Hypercall::MmuUpdate { entries } => costs.mmu_update_batch(entries),
            Hypercall::Iret => costs.iret_hypercall,
            Hypercall::EventChannelOp => costs.event_channel_send,
            Hypercall::GrantTableOp { copy_kb } => {
                costs.hypercall + costs.grant_copy_per_kb * copy_kb
            }
            Hypercall::SchedOp
            | Hypercall::NewBaseptr
            | Hypercall::UpdateVaMapping
            | Hypercall::SetTrapTable
            | Hypercall::SetTimerOp => costs.hypercall,
        }
    }
}

impl fmt::Display for Hypercall {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// Running totals of hypervisor crossings and their time.
///
/// # Example
///
/// ```
/// use xc_sim::cost::CostModel;
/// use xc_xen::hypercall::{Hypercall, HypervisorAccounting};
///
/// let costs = CostModel::skylake_cloud();
/// let mut acct = HypervisorAccounting::new();
/// acct.charge(Hypercall::Iret, &costs);
/// acct.charge(Hypercall::MmuUpdate { entries: 32 }, &costs);
/// assert_eq!(acct.total_calls(), 2);
/// assert!(acct.total_time() > costs.iret_hypercall);
/// ```
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct HypervisorAccounting {
    calls: BTreeMap<&'static str, u64>,
    time: BTreeMap<&'static str, Nanos>,
    total_time: Nanos,
}

impl HypervisorAccounting {
    /// Fresh zeroed accounting.
    pub fn new() -> Self {
        HypervisorAccounting::default()
    }

    /// Records one hypercall and returns its cost.
    pub fn charge(&mut self, call: Hypercall, costs: &CostModel) -> Nanos {
        let cost = call.cost(costs);
        *self.calls.entry(call.name()).or_insert(0) += 1;
        *self.time.entry(call.name()).or_insert(Nanos::ZERO) += cost;
        self.total_time += cost;
        cost
    }

    /// Number of invocations of a particular hypercall.
    pub fn calls_of(&self, name: &str) -> u64 {
        self.calls.get(name).copied().unwrap_or(0)
    }

    /// Total hypercalls issued.
    pub fn total_calls(&self) -> u64 {
        self.calls.values().sum()
    }

    /// Total simulated time spent in the hypervisor.
    pub fn total_time(&self) -> Nanos {
        self.total_time
    }

    /// Iterates `(name, count, time)` in name order.
    pub fn entries(&self) -> impl Iterator<Item = (&'static str, u64, Nanos)> + '_ {
        self.calls
            .iter()
            .map(|(name, count)| (*name, *count, self.time[name]))
    }

    /// Merges another accounting into this one.
    pub fn merge(&mut self, other: &HypervisorAccounting) {
        for (name, count) in &other.calls {
            *self.calls.entry(name).or_insert(0) += count;
        }
        for (name, time) in &other.time {
            *self.time.entry(name).or_insert(Nanos::ZERO) += *time;
        }
        self.total_time += other.total_time;
    }
}

impl fmt::Display for HypervisorAccounting {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "hypervisor crossings ({} total, {}):",
            self.total_calls(),
            self.total_time
        )?;
        for (name, count, time) in self.entries() {
            writeln!(f, "  {name:<20} {count:>10}  {time}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn costs_scale_with_batch_size() {
        let costs = CostModel::skylake_cloud();
        let small = Hypercall::MmuUpdate { entries: 1 }.cost(&costs);
        let large = Hypercall::MmuUpdate { entries: 100 }.cost(&costs);
        assert!(large > small);
        // Batching amortizes the trap: 100 entries cost less than 100
        // single-entry calls.
        assert!(large < small * 100);
    }

    #[test]
    fn grant_copy_charges_per_kb() {
        let costs = CostModel::skylake_cloud();
        let map = Hypercall::GrantTableOp { copy_kb: 0 }.cost(&costs);
        let copy = Hypercall::GrantTableOp { copy_kb: 4 }.cost(&costs);
        assert_eq!(copy - map, costs.grant_copy_per_kb * 4);
    }

    #[test]
    fn accounting_totals() {
        let costs = CostModel::skylake_cloud();
        let mut acct = HypervisorAccounting::new();
        for _ in 0..3 {
            acct.charge(Hypercall::Iret, &costs);
        }
        acct.charge(Hypercall::SchedOp, &costs);
        assert_eq!(acct.calls_of("iret"), 3);
        assert_eq!(acct.calls_of("sched_op"), 1);
        assert_eq!(acct.calls_of("mmu_update"), 0);
        assert_eq!(acct.total_calls(), 4);
        assert_eq!(
            acct.total_time(),
            costs.iret_hypercall * 3 + costs.hypercall
        );
    }

    #[test]
    fn merge_combines() {
        let costs = CostModel::skylake_cloud();
        let mut a = HypervisorAccounting::new();
        a.charge(Hypercall::Iret, &costs);
        let mut b = HypervisorAccounting::new();
        b.charge(Hypercall::Iret, &costs);
        b.charge(Hypercall::SetTimerOp, &costs);
        a.merge(&b);
        assert_eq!(a.calls_of("iret"), 2);
        assert_eq!(a.total_calls(), 3);
    }

    #[test]
    fn display_lists_calls() {
        let costs = CostModel::skylake_cloud();
        let mut acct = HypervisorAccounting::new();
        acct.charge(Hypercall::EventChannelOp, &costs);
        assert!(acct.to_string().contains("event_channel_op"));
    }
}
