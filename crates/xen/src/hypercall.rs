//! The hypercall interface.
//!
//! §3.4: "X-Containers rely on a small X-Kernel … with a small number of
//! hypervisor calls that lead to a smaller number of vulnerabilities in
//! practice." This module enumerates the hypercalls the model uses, maps
//! each to its primitive cost, and keeps per-call accounting so harnesses
//! can report *how many privileged crossings* each architecture performed
//! — the quantity the paper's performance arguments reduce to.

use std::fmt;

use xc_sim::cost::CostModel;
use xc_sim::time::Nanos;

/// Dense hypercall number: one variant per [`Hypercall`] kind, used to
/// index the accounting arrays. The engine charges a hypercall on every
/// privileged crossing, so the accounting path must be a pair of array
/// stores, not tree lookups.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
#[repr(usize)]
pub enum HypercallNr {
    /// `mmu_update`
    MmuUpdate = 0,
    /// `iret`
    Iret = 1,
    /// `event_channel_op`
    EventChannelOp = 2,
    /// `grant_table_op`
    GrantTableOp = 3,
    /// `sched_op`
    SchedOp = 4,
    /// `new_baseptr`
    NewBaseptr = 5,
    /// `update_va_mapping`
    UpdateVaMapping = 6,
    /// `set_trap_table`
    SetTrapTable = 7,
    /// `set_timer_op`
    SetTimerOp = 8,
}

/// Number of distinct hypercall kinds (the accounting array length).
pub const NUM_HYPERCALLS: usize = 9;

/// Hypercall names indexed by [`HypercallNr`].
const NAMES: [&str; NUM_HYPERCALLS] = [
    "mmu_update",
    "iret",
    "event_channel_op",
    "grant_table_op",
    "sched_op",
    "new_baseptr",
    "update_va_mapping",
    "set_trap_table",
    "set_timer_op",
];

/// [`HypercallNr`]s in lexicographic name order, so reports iterate the
/// dense arrays in exactly the order the former `BTreeMap<&str, _>` did.
const NAME_ORDER: [HypercallNr; NUM_HYPERCALLS] = [
    HypercallNr::EventChannelOp,
    HypercallNr::GrantTableOp,
    HypercallNr::Iret,
    HypercallNr::MmuUpdate,
    HypercallNr::NewBaseptr,
    HypercallNr::SchedOp,
    HypercallNr::SetTimerOp,
    HypercallNr::SetTrapTable,
    HypercallNr::UpdateVaMapping,
];

impl HypercallNr {
    /// A stable name for accounting keys.
    pub fn name(self) -> &'static str {
        NAMES[self as usize]
    }

    /// Resolves an accounting-key name back to its number.
    pub fn from_name(name: &str) -> Option<HypercallNr> {
        NAME_ORDER.into_iter().find(|nr| nr.name() == name)
    }
}

/// The modelled hypercall set (names follow Xen's).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Hypercall {
    /// Batched page-table updates; carries the number of entries.
    MmuUpdate {
        /// PTE updates in the batch.
        entries: u64,
    },
    /// Atomic return-from-interrupt with privilege switch (PV guests
    /// only; X-LibOS replaces it with a user-mode `ret`, §4.2).
    Iret,
    /// Event-channel operation (bind/send/unmask).
    EventChannelOp,
    /// Grant-table operation (map/unmap/copy).
    GrantTableOp {
        /// KiB moved for copy operations (0 for map/unmap).
        copy_kb: u64,
    },
    /// Scheduler operation (yield/block).
    SchedOp,
    /// Install a new page-table base (context switch).
    NewBaseptr,
    /// Update a single VA mapping.
    UpdateVaMapping,
    /// Set the guest's trap/exception table.
    SetTrapTable,
    /// Set per-vCPU timer.
    SetTimerOp,
}

impl Hypercall {
    /// The dense number of this hypercall (its accounting index).
    pub fn nr(&self) -> HypercallNr {
        match self {
            Hypercall::MmuUpdate { .. } => HypercallNr::MmuUpdate,
            Hypercall::Iret => HypercallNr::Iret,
            Hypercall::EventChannelOp => HypercallNr::EventChannelOp,
            Hypercall::GrantTableOp { .. } => HypercallNr::GrantTableOp,
            Hypercall::SchedOp => HypercallNr::SchedOp,
            Hypercall::NewBaseptr => HypercallNr::NewBaseptr,
            Hypercall::UpdateVaMapping => HypercallNr::UpdateVaMapping,
            Hypercall::SetTrapTable => HypercallNr::SetTrapTable,
            Hypercall::SetTimerOp => HypercallNr::SetTimerOp,
        }
    }

    /// A stable name for accounting keys.
    pub fn name(&self) -> &'static str {
        self.nr().name()
    }

    /// Cost of this hypercall under the given model: the base trap plus
    /// per-operation work.
    pub fn cost(&self, costs: &CostModel) -> Nanos {
        match *self {
            Hypercall::MmuUpdate { entries } => costs.mmu_update_batch(entries),
            Hypercall::Iret => costs.iret_hypercall,
            Hypercall::EventChannelOp => costs.event_channel_send,
            Hypercall::GrantTableOp { copy_kb } => {
                costs.hypercall + costs.grant_copy_per_kb * copy_kb
            }
            Hypercall::SchedOp
            | Hypercall::NewBaseptr
            | Hypercall::UpdateVaMapping
            | Hypercall::SetTrapTable
            | Hypercall::SetTimerOp => costs.hypercall,
        }
    }
}

impl fmt::Display for Hypercall {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// Running totals of hypervisor crossings and their time.
///
/// # Example
///
/// ```
/// use xc_sim::cost::CostModel;
/// use xc_xen::hypercall::{Hypercall, HypervisorAccounting};
///
/// let costs = CostModel::skylake_cloud();
/// let mut acct = HypervisorAccounting::new();
/// acct.charge(Hypercall::Iret, &costs);
/// acct.charge(Hypercall::MmuUpdate { entries: 32 }, &costs);
/// assert_eq!(acct.total_calls(), 2);
/// assert!(acct.total_time() > costs.iret_hypercall);
/// ```
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct HypervisorAccounting {
    calls: [u64; NUM_HYPERCALLS],
    time: [Nanos; NUM_HYPERCALLS],
    total_time: Nanos,
}

impl HypervisorAccounting {
    /// Fresh zeroed accounting.
    pub fn new() -> Self {
        HypervisorAccounting::default()
    }

    /// Records one hypercall and returns its cost.
    pub fn charge(&mut self, call: Hypercall, costs: &CostModel) -> Nanos {
        let cost = call.cost(costs);
        let i = call.nr() as usize;
        self.calls[i] += 1;
        self.time[i] += cost;
        self.total_time += cost;
        cost
    }

    /// Number of invocations of a particular hypercall.
    pub fn calls_of(&self, name: &str) -> u64 {
        HypercallNr::from_name(name).map_or(0, |nr| self.calls[nr as usize])
    }

    /// Total hypercalls issued.
    pub fn total_calls(&self) -> u64 {
        self.calls.iter().sum()
    }

    /// Total simulated time spent in the hypervisor.
    pub fn total_time(&self) -> Nanos {
        self.total_time
    }

    /// Iterates `(name, count, time)` over charged hypercalls in name
    /// order (zero-count entries are skipped, matching the sparse map
    /// this used to be).
    pub fn entries(&self) -> impl Iterator<Item = (&'static str, u64, Nanos)> + '_ {
        NAME_ORDER
            .into_iter()
            .filter(|&nr| self.calls[nr as usize] > 0)
            .map(|nr| (nr.name(), self.calls[nr as usize], self.time[nr as usize]))
    }

    /// Merges another accounting into this one.
    pub fn merge(&mut self, other: &HypervisorAccounting) {
        for i in 0..NUM_HYPERCALLS {
            self.calls[i] += other.calls[i];
            self.time[i] += other.time[i];
        }
        self.total_time += other.total_time;
    }
}

impl fmt::Display for HypervisorAccounting {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "hypervisor crossings ({} total, {}):",
            self.total_calls(),
            self.total_time
        )?;
        for (name, count, time) in self.entries() {
            writeln!(f, "  {name:<20} {count:>10}  {time}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn costs_scale_with_batch_size() {
        let costs = CostModel::skylake_cloud();
        let small = Hypercall::MmuUpdate { entries: 1 }.cost(&costs);
        let large = Hypercall::MmuUpdate { entries: 100 }.cost(&costs);
        assert!(large > small);
        // Batching amortizes the trap: 100 entries cost less than 100
        // single-entry calls.
        assert!(large < small * 100);
    }

    #[test]
    fn grant_copy_charges_per_kb() {
        let costs = CostModel::skylake_cloud();
        let map = Hypercall::GrantTableOp { copy_kb: 0 }.cost(&costs);
        let copy = Hypercall::GrantTableOp { copy_kb: 4 }.cost(&costs);
        assert_eq!(copy - map, costs.grant_copy_per_kb * 4);
    }

    #[test]
    fn accounting_totals() {
        let costs = CostModel::skylake_cloud();
        let mut acct = HypervisorAccounting::new();
        for _ in 0..3 {
            acct.charge(Hypercall::Iret, &costs);
        }
        acct.charge(Hypercall::SchedOp, &costs);
        assert_eq!(acct.calls_of("iret"), 3);
        assert_eq!(acct.calls_of("sched_op"), 1);
        assert_eq!(acct.calls_of("mmu_update"), 0);
        assert_eq!(acct.total_calls(), 4);
        assert_eq!(
            acct.total_time(),
            costs.iret_hypercall * 3 + costs.hypercall
        );
    }

    #[test]
    fn merge_combines() {
        let costs = CostModel::skylake_cloud();
        let mut a = HypervisorAccounting::new();
        a.charge(Hypercall::Iret, &costs);
        let mut b = HypervisorAccounting::new();
        b.charge(Hypercall::Iret, &costs);
        b.charge(Hypercall::SetTimerOp, &costs);
        a.merge(&b);
        assert_eq!(a.calls_of("iret"), 2);
        assert_eq!(a.total_calls(), 3);
    }

    #[test]
    fn name_order_is_sorted_and_covers_every_nr() {
        let names: Vec<&str> = NAME_ORDER.iter().map(|nr| nr.name()).collect();
        let mut sorted = names.clone();
        sorted.sort_unstable();
        assert_eq!(names, sorted, "entries() must iterate in name order");
        let mut indices: Vec<usize> = NAME_ORDER.iter().map(|&nr| nr as usize).collect();
        indices.sort_unstable();
        assert_eq!(indices, (0..NUM_HYPERCALLS).collect::<Vec<_>>());
        for &nr in &NAME_ORDER {
            assert_eq!(HypercallNr::from_name(nr.name()), Some(nr));
        }
        assert_eq!(HypercallNr::from_name("no_such_call"), None);
    }

    #[test]
    fn display_lists_calls() {
        let costs = CostModel::skylake_cloud();
        let mut acct = HypervisorAccounting::new();
        acct.charge(Hypercall::EventChannelOp, &costs);
        assert!(acct.to_string().contains("event_channel_op"));
    }
}
