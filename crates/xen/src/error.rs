//! Hypervisor error types.

use std::error::Error;
use std::fmt;

use crate::domain::DomainId;

/// Errors returned by hypervisor operations.
///
/// Hypercall argument validation is part of the paper's security story
/// (§4.1: hypercalls "are validated by Xen before being served"), so the
/// model validates too, and rejections are typed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum XenError {
    /// Reference to a domain that does not exist (or was destroyed).
    NoSuchDomain(DomainId),
    /// The calling domain lacks the privilege for this operation (e.g. a
    /// DomU invoking a Dom0-only control operation).
    PermissionDenied {
        /// The calling domain.
        caller: DomainId,
        /// Short description of the denied operation.
        op: &'static str,
    },
    /// Event-channel port is invalid or not bound.
    BadEventPort(u32),
    /// All event-channel ports are in use.
    NoFreePorts,
    /// Grant reference is invalid, revoked, or of the wrong domain.
    BadGrantRef(u32),
    /// The grant table is full.
    GrantTableFull,
    /// Page-table update failed validation.
    BadPageTableUpdate {
        /// Reason the hypervisor refused the update.
        reason: &'static str,
    },
    /// Physical memory is exhausted (Figure 8's VM-density limit).
    OutOfMemory {
        /// MiB requested.
        requested_mb: u64,
        /// MiB available.
        available_mb: u64,
    },
    /// A vCPU identifier is unknown to the scheduler.
    NoSuchVcpu(u32),
}

impl fmt::Display for XenError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            XenError::NoSuchDomain(id) => write!(f, "no such domain {id}"),
            XenError::PermissionDenied { caller, op } => {
                write!(f, "domain {caller} denied operation `{op}`")
            }
            XenError::BadEventPort(p) => write!(f, "bad event channel port {p}"),
            XenError::NoFreePorts => write!(f, "no free event channel ports"),
            XenError::BadGrantRef(r) => write!(f, "bad grant reference {r}"),
            XenError::GrantTableFull => write!(f, "grant table full"),
            XenError::BadPageTableUpdate { reason } => {
                write!(f, "page table update rejected: {reason}")
            }
            XenError::OutOfMemory {
                requested_mb,
                available_mb,
            } => write!(
                f,
                "out of memory: requested {requested_mb} MiB, {available_mb} MiB available"
            ),
            XenError::NoSuchVcpu(v) => write!(f, "no such vcpu {v}"),
        }
    }
}

impl Error for XenError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_forms() {
        assert!(XenError::NoSuchDomain(DomainId(3))
            .to_string()
            .contains('3'));
        assert!(XenError::NoFreePorts.to_string().contains("ports"));
        assert!(XenError::OutOfMemory {
            requested_mb: 512,
            available_mb: 100
        }
        .to_string()
        .contains("512"));
    }
}
