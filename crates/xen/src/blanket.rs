//! Xen-Blanket — running the whole stack nested inside a cloud VM.
//!
//! The prototype "leveraged Xen-Blanket drivers to run the platform
//! efficiently in public clouds" (§4): the X-Kernel runs as an HVM guest
//! of the cloud's hypervisor, and Blanket drivers connect the inner split
//! drivers to the outer cloud's paravirtual devices. Functionally
//! transparent; its cost is an extra driver hop on every I/O batch, which
//! is part of why Xen-Containers/X-Containers don't beat native Docker on
//! pure packet pushing (Figure 5's iperf panel).

use xc_sim::cost::CostModel;
use xc_sim::time::Nanos;

/// The Blanket layer configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct XenBlanket {
    /// Whether the stack runs nested in a cloud VM (true on EC2/GCE,
    /// false on the paper's bare-metal local cluster).
    pub nested: bool,
}

impl XenBlanket {
    /// Blanket deployment for a public-cloud host.
    pub fn cloud() -> Self {
        XenBlanket { nested: true }
    }

    /// Bare-metal deployment (the paper's local PowerEdge cluster).
    pub fn bare_metal() -> Self {
        XenBlanket { nested: false }
    }

    /// Extra cost per I/O batch crossing the Blanket: one more
    /// shared-ring notification plus a grant copy of the batch payload.
    pub fn io_batch_overhead(&self, costs: &CostModel, batch_kb: u64) -> Nanos {
        if self.nested {
            costs.ring_notify + costs.grant_copy_per_kb * batch_kb
        } else {
            Nanos::ZERO
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bare_metal_is_free() {
        let costs = CostModel::skylake_cloud();
        assert_eq!(
            XenBlanket::bare_metal().io_batch_overhead(&costs, 64),
            Nanos::ZERO
        );
    }

    #[test]
    fn cloud_charges_per_batch() {
        let costs = CostModel::skylake_cloud();
        let small = XenBlanket::cloud().io_batch_overhead(&costs, 4);
        let large = XenBlanket::cloud().io_batch_overhead(&costs, 64);
        assert!(small > Nanos::ZERO);
        assert!(large > small);
        assert_eq!(large - small, costs.grant_copy_per_kb * 60);
    }
}
