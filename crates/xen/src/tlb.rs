//! A working TLB model — the mechanism behind the §4.3 numbers.
//!
//! The cost model charges a context switch for "refilling the hot working
//! set" after a flush, with the kernel's share skipped when its mappings
//! carry the global bit. This module implements the TLB itself — tagged
//! entries, global-bit semantics, non-global flushes — so tests can
//! *measure* the miss counts those charges assume instead of trusting
//! them.

use std::collections::BTreeMap;

/// One translation entry.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct TlbEntry {
    /// Address-space tag (ignored for global entries).
    asid: u64,
    global: bool,
}

/// Outcome of a lookup.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Lookup {
    /// Translation present.
    Hit,
    /// Page walk required; the entry was filled.
    Miss,
}

/// A software model of a tagged TLB with global-bit support.
///
/// Capacity is unbounded (modern L2 STLBs hold the working sets in
/// question); what matters for the §4.3 story is which entries *survive
/// a flush*, not eviction pressure.
///
/// # Example
///
/// ```
/// use xc_xen::tlb::{Lookup, Tlb};
///
/// let mut tlb = Tlb::new();
/// tlb.fill(1, 0x1000, true);  // kernel page, global
/// tlb.fill(1, 0x2000, false); // user page
/// tlb.flush_non_global();
/// assert_eq!(tlb.lookup(1, 0x1000), Lookup::Hit);  // survived
/// assert_eq!(tlb.lookup(1, 0x2000), Lookup::Miss); // refilled by walk
/// ```
#[derive(Debug, Clone, Default)]
pub struct Tlb {
    entries: BTreeMap<u64, TlbEntry>,
    hits: u64,
    misses: u64,
}

impl Tlb {
    /// Creates an empty TLB.
    pub fn new() -> Self {
        Tlb::default()
    }

    /// Installs a translation (as a page walk would).
    pub fn fill(&mut self, asid: u64, page: u64, global: bool) {
        self.entries.insert(page, TlbEntry { asid, global });
    }

    /// Looks up `page` for address space `asid`, filling on miss.
    pub fn lookup(&mut self, asid: u64, page: u64) -> Lookup {
        match self.entries.get(&page) {
            Some(e) if e.global || e.asid == asid => {
                self.hits += 1;
                Lookup::Hit
            }
            _ => {
                self.misses += 1;
                self.fill(asid, page, false);
                Lookup::Miss
            }
        }
    }

    /// Non-global flush: what a CR3 write does when the global bit is in
    /// use (the X-LibOS case, §4.3).
    pub fn flush_non_global(&mut self) {
        self.entries.retain(|_, e| e.global);
    }

    /// Full flush, global pages included: a cross-container switch, or
    /// any switch when the global bit is disabled (plain PV).
    pub fn flush_all(&mut self) {
        self.entries.clear();
    }

    /// Hits so far.
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Misses (page walks) so far.
    pub fn misses(&self) -> u64 {
        self.misses
    }

    /// Live entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the TLB holds no entries.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::abi::{KERNEL_HOT_PAGES, USER_HOT_PAGES};

    /// Touches a process's working set: kernel pages (global under the
    /// X-Kernel ABI) + user pages. Returns misses incurred.
    fn touch_working_set(tlb: &mut Tlb, asid: u64, kernel_global: bool) -> u64 {
        let before = tlb.misses();
        for i in 0..KERNEL_HOT_PAGES {
            if tlb.lookup(asid, 0xffff_0000 + i) == Lookup::Miss && kernel_global {
                // Kernel fills carry the global bit.
                tlb.fill(asid, 0xffff_0000 + i, true);
            }
        }
        for i in 0..USER_HOT_PAGES {
            tlb.lookup(asid, 0x1000_0000 * asid + i);
        }
        tlb.misses() - before
    }

    #[test]
    fn global_bit_saves_exactly_the_kernel_share() {
        // The cost model charges USER_HOT_PAGES refills for an X-LibOS
        // process switch and KERNEL+USER for a PV switch. Measure both.
        let mut xk = Tlb::new();
        touch_working_set(&mut xk, 1, true); // warm process 1
        xk.flush_non_global(); // intra-container switch under X-Kernel
        let xk_refill = touch_working_set(&mut xk, 2, true);

        let mut pv = Tlb::new();
        touch_working_set(&mut pv, 1, false);
        pv.flush_all(); // PV disables the global bit: every switch flushes all
        let pv_refill = touch_working_set(&mut pv, 2, false);

        assert_eq!(xk_refill, USER_HOT_PAGES, "X-LibOS: user share only");
        assert_eq!(
            pv_refill,
            KERNEL_HOT_PAGES + USER_HOT_PAGES,
            "PV: whole working set"
        );
        assert_eq!(pv_refill - xk_refill, KERNEL_HOT_PAGES);
    }

    #[test]
    fn cross_container_switch_loses_global_entries() {
        let mut tlb = Tlb::new();
        touch_working_set(&mut tlb, 1, true);
        tlb.flush_all(); // "context switches between different
                         // X-Containers do trigger a full TLB flush"
        let refill = touch_working_set(&mut tlb, 2, true);
        assert_eq!(refill, KERNEL_HOT_PAGES + USER_HOT_PAGES);
    }

    #[test]
    fn asid_mismatch_is_a_miss() {
        let mut tlb = Tlb::new();
        tlb.fill(1, 0x42, false);
        assert_eq!(tlb.lookup(2, 0x42), Lookup::Miss, "other space's entry");
        assert_eq!(tlb.lookup(2, 0x42), Lookup::Hit, "filled for us now");
    }

    #[test]
    fn global_entries_hit_across_asids() {
        let mut tlb = Tlb::new();
        tlb.fill(1, 0x42, true);
        assert_eq!(tlb.lookup(7, 0x42), Lookup::Hit);
        assert_eq!(tlb.hits(), 1);
        assert!(!tlb.is_empty());
        assert_eq!(tlb.len(), 1);
    }

    #[test]
    fn repeated_switches_amortize_nothing_under_pv() {
        // PV pays the full refill on *every* switch; X-LibOS only pays
        // the user share — integrated over a ping-pong of two processes.
        let mut pv_misses = 0;
        let mut xk_misses = 0;
        let mut pv = Tlb::new();
        let mut xk = Tlb::new();
        touch_working_set(&mut pv, 1, false);
        touch_working_set(&mut xk, 1, true);
        for round in 0..10 {
            let asid = (round % 2) + 1;
            pv.flush_all();
            pv_misses += touch_working_set(&mut pv, asid, false);
            xk.flush_non_global();
            xk_misses += touch_working_set(&mut xk, asid, true);
        }
        assert_eq!(pv_misses, 10 * (KERNEL_HOT_PAGES + USER_HOT_PAGES));
        assert_eq!(xk_misses, 10 * USER_HOT_PAGES);
    }
}
