//! XenStore — the toolstack's hierarchical configuration database.
//!
//! Everything in a Xen system rendezvouses through XenStore: the
//! toolstack writes a domain's configuration under `/local/domain/<id>`,
//! front-end and back-end drivers negotiate ring references and event
//! channel ports through watched keys, and the §4.5 Docker Wrapper uses
//! the same channel to pass the container entry point to the bootloader.
//!
//! The model implements the real semantics that matter to those flows:
//! a path→value tree, per-domain ownership with read/write permission
//! checks, and **watches** that fire on writes at or below a prefix.

use std::collections::BTreeMap;

use crate::domain::DomainId;
use crate::error::XenError;

/// A registered watch.
#[derive(Debug, Clone, PartialEq, Eq)]
struct Watch {
    owner: DomainId,
    prefix: String,
    token: String,
}

/// A fired watch event: `(token, path)` as in the real protocol.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WatchEvent {
    /// The token the watcher registered.
    pub token: String,
    /// The path that changed.
    pub path: String,
}

#[derive(Debug, Clone)]
struct Node {
    value: String,
    owner: DomainId,
    /// Domains (other than the owner and Dom0) allowed to read.
    readers: Vec<DomainId>,
}

/// The store.
///
/// # Example
///
/// ```
/// use xc_xen::domain::DomainId;
/// use xc_xen::xenstore::XenStore;
///
/// let mut xs = XenStore::new();
/// let dom0 = DomainId(0);
/// let guest = DomainId(3);
///
/// // Toolstack publishes the vif backend path; the guest watches it.
/// xs.watch(guest, "/local/domain/3/device", "vif-token")?;
/// xs.write(dom0, "/local/domain/3/device/vif/0/backend-id", "2")?;
/// let events = xs.take_events(guest);
/// assert_eq!(events[0].token, "vif-token");
/// # Ok::<(), xc_xen::XenError>(())
/// ```
#[derive(Debug, Clone, Default)]
pub struct XenStore {
    nodes: BTreeMap<String, Node>,
    watches: Vec<Watch>,
    pending: BTreeMap<DomainId, Vec<WatchEvent>>,
}

impl XenStore {
    /// Creates an empty store.
    pub fn new() -> Self {
        XenStore::default()
    }

    fn may_write(&self, caller: DomainId, path: &str) -> bool {
        // Dom0 (the toolstack) writes anywhere; a guest only under its
        // own /local/domain/<id> subtree.
        caller == DomainId(0) || path.starts_with(&format!("/local/domain/{}/", caller.0))
    }

    fn may_read(&self, caller: DomainId, node: &Node) -> bool {
        caller == DomainId(0) || caller == node.owner || node.readers.contains(&caller)
    }

    /// Writes `value` at `path`, firing matching watches.
    ///
    /// # Errors
    ///
    /// [`XenError::PermissionDenied`] outside the caller's subtree.
    pub fn write(&mut self, caller: DomainId, path: &str, value: &str) -> Result<(), XenError> {
        if !self.may_write(caller, path) {
            return Err(XenError::PermissionDenied {
                caller,
                op: "xenstore write",
            });
        }
        match self.nodes.get_mut(path) {
            Some(node) => node.value = value.to_owned(),
            None => {
                self.nodes.insert(
                    path.to_owned(),
                    Node {
                        value: value.to_owned(),
                        owner: caller,
                        readers: Vec::new(),
                    },
                );
            }
        }
        // Fire watches on the path or any ancestor prefix.
        let fired: Vec<(DomainId, WatchEvent)> = self
            .watches
            .iter()
            .filter(|w| path.starts_with(&w.prefix))
            .map(|w| {
                (
                    w.owner,
                    WatchEvent {
                        token: w.token.clone(),
                        path: path.to_owned(),
                    },
                )
            })
            .collect();
        for (owner, event) in fired {
            self.pending.entry(owner).or_default().push(event);
        }
        Ok(())
    }

    /// Grants `reader` read access to `path`.
    ///
    /// # Errors
    ///
    /// [`XenError::PermissionDenied`] unless the caller owns the node (or
    /// is Dom0); [`XenError::BadPageTableUpdate`] for missing nodes.
    pub fn set_perm(
        &mut self,
        caller: DomainId,
        path: &str,
        reader: DomainId,
    ) -> Result<(), XenError> {
        let node = self
            .nodes
            .get_mut(path)
            .ok_or(XenError::BadPageTableUpdate {
                reason: "no such xenstore node",
            })?;
        if caller != DomainId(0) && caller != node.owner {
            return Err(XenError::PermissionDenied {
                caller,
                op: "xenstore set_perm",
            });
        }
        if !node.readers.contains(&reader) {
            node.readers.push(reader);
        }
        Ok(())
    }

    /// Reads the value at `path`.
    ///
    /// # Errors
    ///
    /// [`XenError::PermissionDenied`] without read access; missing nodes
    /// read as `None`.
    pub fn read(&self, caller: DomainId, path: &str) -> Result<Option<&str>, XenError> {
        match self.nodes.get(path) {
            None => Ok(None),
            Some(node) => {
                if self.may_read(caller, node) {
                    Ok(Some(&node.value))
                } else {
                    Err(XenError::PermissionDenied {
                        caller,
                        op: "xenstore read",
                    })
                }
            }
        }
    }

    /// Registers a watch on `prefix` with a caller-chosen `token`.
    ///
    /// # Errors
    ///
    /// Infallible today; `Result` mirrors the real API.
    pub fn watch(&mut self, caller: DomainId, prefix: &str, token: &str) -> Result<(), XenError> {
        self.watches.push(Watch {
            owner: caller,
            prefix: prefix.to_owned(),
            token: token.to_owned(),
        });
        Ok(())
    }

    /// Removes a watch by token.
    pub fn unwatch(&mut self, caller: DomainId, token: &str) {
        self.watches
            .retain(|w| !(w.owner == caller && w.token == token));
    }

    /// Drains pending watch events for a domain, in firing order.
    pub fn take_events(&mut self, caller: DomainId) -> Vec<WatchEvent> {
        self.pending.remove(&caller).unwrap_or_default()
    }

    /// Lists direct children of `path` (for `xenstore-ls`-style walks).
    pub fn children(&self, path: &str) -> Vec<String> {
        let prefix = if path.ends_with('/') {
            path.to_owned()
        } else {
            format!("{path}/")
        };
        let mut out: Vec<String> = self
            .nodes
            .keys()
            .filter(|k| k.starts_with(&prefix))
            .filter_map(|k| k[prefix.len()..].split('/').next())
            .map(str::to_owned)
            .collect();
        out.dedup();
        out
    }

    /// Number of nodes in the store.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// Whether the store is empty.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const DOM0: DomainId = DomainId(0);
    const FRONT: DomainId = DomainId(3);
    const BACK: DomainId = DomainId(2);

    #[test]
    fn write_read_roundtrip() {
        let mut xs = XenStore::new();
        xs.write(DOM0, "/local/domain/3/name", "nginx-1").unwrap();
        assert_eq!(
            xs.read(DOM0, "/local/domain/3/name").unwrap(),
            Some("nginx-1")
        );
        assert_eq!(xs.read(DOM0, "/missing").unwrap(), None);
    }

    #[test]
    fn guest_confined_to_own_subtree() {
        let mut xs = XenStore::new();
        xs.write(FRONT, "/local/domain/3/data/x", "1").unwrap();
        assert!(matches!(
            xs.write(FRONT, "/local/domain/2/data/x", "1"),
            Err(XenError::PermissionDenied { .. })
        ));
        assert!(matches!(
            xs.write(FRONT, "/tool/stack", "1"),
            Err(XenError::PermissionDenied { .. })
        ));
    }

    #[test]
    fn read_permissions() {
        let mut xs = XenStore::new();
        xs.write(FRONT, "/local/domain/3/device/vif/ring-ref", "17")
            .unwrap();
        // The backend cannot read until granted.
        assert!(matches!(
            xs.read(BACK, "/local/domain/3/device/vif/ring-ref"),
            Err(XenError::PermissionDenied { .. })
        ));
        xs.set_perm(FRONT, "/local/domain/3/device/vif/ring-ref", BACK)
            .unwrap();
        assert_eq!(
            xs.read(BACK, "/local/domain/3/device/vif/ring-ref")
                .unwrap(),
            Some("17")
        );
    }

    #[test]
    fn watches_fire_on_prefix() {
        let mut xs = XenStore::new();
        xs.watch(FRONT, "/local/domain/3/device", "dev").unwrap();
        xs.write(DOM0, "/local/domain/3/device/vif/0/state", "4")
            .unwrap();
        xs.write(DOM0, "/local/domain/3/name", "nginx").unwrap(); // no match
        let events = xs.take_events(FRONT);
        assert_eq!(events.len(), 1);
        assert_eq!(events[0].token, "dev");
        assert_eq!(events[0].path, "/local/domain/3/device/vif/0/state");
        assert!(xs.take_events(FRONT).is_empty(), "drained");
    }

    #[test]
    fn unwatch_stops_events() {
        let mut xs = XenStore::new();
        xs.watch(FRONT, "/local/domain/3", "t").unwrap();
        xs.unwatch(FRONT, "t");
        xs.write(DOM0, "/local/domain/3/x", "1").unwrap();
        assert!(xs.take_events(FRONT).is_empty());
    }

    #[test]
    fn split_driver_negotiation_flow() {
        // The classic frontend/backend handshake, end to end.
        let mut xs = XenStore::new();
        // Toolstack seeds both ends.
        xs.write(
            DOM0,
            "/local/domain/3/device/vif/0/backend",
            "/local/domain/2/backend/vif/3/0",
        )
        .unwrap();
        xs.write(
            DOM0,
            "/local/domain/2/backend/vif/3/0/frontend",
            "/local/domain/3/device/vif/0",
        )
        .unwrap();
        // Backend watches for the frontend's ring grant.
        xs.watch(BACK, "/local/domain/3/device/vif/0", "fe")
            .unwrap();
        // Frontend publishes ring-ref + event channel, grants read.
        xs.write(FRONT, "/local/domain/3/device/vif/0/ring-ref", "8")
            .unwrap();
        xs.set_perm(FRONT, "/local/domain/3/device/vif/0/ring-ref", BACK)
            .unwrap();
        xs.write(FRONT, "/local/domain/3/device/vif/0/event-channel", "5")
            .unwrap();
        xs.set_perm(FRONT, "/local/domain/3/device/vif/0/event-channel", BACK)
            .unwrap();
        // Backend sees both writes and reads the values.
        let events = xs.take_events(BACK);
        assert_eq!(events.len(), 2);
        assert_eq!(
            xs.read(BACK, "/local/domain/3/device/vif/0/ring-ref")
                .unwrap(),
            Some("8")
        );
    }

    #[test]
    fn children_listing() {
        let mut xs = XenStore::new();
        xs.write(DOM0, "/local/domain/3/device/vif/0/state", "1")
            .unwrap();
        xs.write(DOM0, "/local/domain/3/device/vbd/0/state", "1")
            .unwrap();
        let kids = xs.children("/local/domain/3/device");
        assert_eq!(kids, vec!["vbd".to_owned(), "vif".to_owned()]);
        assert_eq!(xs.len(), 2);
        assert!(!xs.is_empty());
    }
}
