//! # xc-xen — the hypervisor substrate (Xen PV and the X-Kernel)
//!
//! The X-Containers paper modifies the Xen paravirtualization architecture
//! into an exokernel ("X-Kernel") whose only job is inter-container
//! isolation. This crate models the hypervisor layer both architectures
//! share and the exact points where they diverge:
//!
//! * [`domain`] — domains (Dom0, driver domains, guests) and their vCPUs,
//! * [`hypercall`] — the hypercall interface with validation and cost
//!   accounting (the "small number of well-documented system calls" that
//!   §3 credits for the small attack surface),
//! * [`events`] — event channels (Xen's virtualized interrupts),
//! * [`grant`] — grant tables used by split drivers for shared-memory I/O,
//! * [`pgtable`] — hypervisor-validated page-table management, including
//!   the global-bit policy that distinguishes X-Containers from plain PV
//!   (§4.3),
//! * [`abi`] — the [`XenAbi`] enum capturing the Xen-PV vs
//!   X-Kernel differences in syscall forwarding, `iret`, interrupt
//!   delivery and context switching (§4.1–4.3),
//! * [`sched`] — the credit scheduler mapping vCPUs to physical CPUs
//!   (the outer level of Figure 8's hierarchical scheduling),
//! * [`blanket`] — the Xen-Blanket shim that lets the whole stack run
//!   nested inside cloud VMs,
//! * [`tmem`] — transcendent memory for sharing page cache across
//!   statically-sized domains (§4.5),
//! * [`migrate`] — pre-copy live migration and checkpoint/restore, the
//!   Xen-ecosystem features §3.3 credits.
//!
//! # Example
//!
//! ```
//! use xc_sim::cost::CostModel;
//! use xc_xen::abi::XenAbi;
//!
//! let costs = CostModel::skylake_cloud();
//! // A forwarded PV syscall is dramatically more expensive than the
//! // X-Kernel bounce (which itself loses to an ABOM function call):
//! let pv = XenAbi::XenPv.forwarded_syscall_cost(&costs);
//! let xk = XenAbi::XKernel.forwarded_syscall_cost(&costs);
//! assert!(pv > xk);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod abi;
pub mod blanket;
pub mod domain;
pub mod error;
pub mod events;
pub mod grant;
pub mod hypercall;
pub mod migrate;
pub mod pgtable;
pub mod ring;
pub mod sched;
pub mod tlb;
pub mod tmem;
pub mod xenstore;

pub use abi::XenAbi;
pub use domain::{Domain, DomainId, DomainKind};
pub use error::XenError;
pub use hypercall::{Hypercall, HypercallNr, HypervisorAccounting};
pub use sched::CreditScheduler;
