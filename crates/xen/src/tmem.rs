//! Transcendent memory (tmem) — §4.5's answer to static memory sizing.
//!
//! "Xen provides native Transcendent Memory (tmem) support, which can be
//! leveraged by Linux kernels in different VMs for efficiently sharing
//! the page cache and RAM-based swap space." The model implements the
//! real tmem semantics:
//!
//! * **Ephemeral pools** (clean page-cache pages): `put` may be dropped
//!   at any time; `get` is *flaky* by contract — a miss is normal and the
//!   guest re-reads from disk. Eviction is LRU across all ephemeral
//!   pools (the shared "utility" memory of the host).
//! * **Persistent pools** (RAM-based swap): `put` either succeeds and
//!   **guarantees** a later `get`, or fails upfront when the host has no
//!   spare memory. Persistent pages count against the host reservation.
//!
//! This is what lets 400 X-Containers with static 128 MiB reservations
//! share the host's page cache without ballooning.

use std::collections::{BTreeMap, VecDeque};

use crate::domain::DomainId;
use crate::error::XenError;

/// Pool lifetime class.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PoolKind {
    /// Clean page cache: droppable, `get` may miss.
    Ephemeral,
    /// RAM swap: guaranteed until `flush`/`get`.
    Persistent,
}

/// Identifier of a tmem pool.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct PoolId(pub u32);

/// Key of an object within a pool (object id + page index, as in the
/// real ABI).
pub type TmemKey = (u64, u32);

#[derive(Debug, Clone)]
struct Pool {
    owner: DomainId,
    kind: PoolKind,
    pages: BTreeMap<TmemKey, u64>, // key → page "contents" token
}

/// Host-wide tmem statistics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TmemStats {
    /// Successful ephemeral `get`s.
    pub eph_hits: u64,
    /// Missed ephemeral `get`s (dropped or never present).
    pub eph_misses: u64,
    /// Ephemeral pages evicted under pressure.
    pub evictions: u64,
    /// Persistent puts refused for lack of memory.
    pub persistent_refusals: u64,
}

/// The hypervisor's transcendent-memory subsystem.
///
/// # Example
///
/// ```
/// use xc_xen::domain::DomainId;
/// use xc_xen::tmem::{PoolKind, Tmem};
///
/// let mut tmem = Tmem::new(2); // two spare host pages
/// let dom = DomainId(5);
/// let pool = tmem.new_pool(dom, PoolKind::Ephemeral);
///
/// tmem.put(dom, pool, (1, 0), 0xAA)?;
/// assert_eq!(tmem.get(dom, pool, (1, 0))?, Some(0xAA)); // hit (and consumed)
/// assert_eq!(tmem.get(dom, pool, (1, 0))?, None);       // exclusive get
/// # Ok::<(), xc_xen::XenError>(())
/// ```
#[derive(Debug, Clone)]
pub struct Tmem {
    capacity_pages: u64,
    used_pages: u64,
    next_pool: u32,
    pools: BTreeMap<PoolId, Pool>,
    /// LRU of live ephemeral pages for eviction.
    eph_lru: VecDeque<(PoolId, TmemKey)>,
    stats: TmemStats,
}

impl Tmem {
    /// Creates the subsystem with `capacity_pages` of spare host memory.
    pub fn new(capacity_pages: u64) -> Self {
        Tmem {
            capacity_pages,
            used_pages: 0,
            next_pool: 0,
            pools: BTreeMap::new(),
            eph_lru: VecDeque::new(),
            stats: TmemStats::default(),
        }
    }

    /// Creates a pool for `owner`.
    pub fn new_pool(&mut self, owner: DomainId, kind: PoolKind) -> PoolId {
        let id = PoolId(self.next_pool);
        self.next_pool += 1;
        self.pools.insert(
            id,
            Pool {
                owner,
                kind,
                pages: BTreeMap::new(),
            },
        );
        id
    }

    fn pool_checked(&mut self, caller: DomainId, pool: PoolId) -> Result<&mut Pool, XenError> {
        let p = self
            .pools
            .get_mut(&pool)
            .ok_or(XenError::BadPageTableUpdate {
                reason: "unknown tmem pool",
            })?;
        if p.owner != caller {
            return Err(XenError::PermissionDenied {
                caller,
                op: "tmem pool access",
            });
        }
        Ok(p)
    }

    fn evict_one_ephemeral(&mut self) -> bool {
        while let Some((pool_id, key)) = self.eph_lru.pop_front() {
            if let Some(pool) = self.pools.get_mut(&pool_id) {
                if pool.pages.remove(&key).is_some() {
                    self.used_pages -= 1;
                    self.stats.evictions += 1;
                    return true;
                }
            }
        }
        false
    }

    /// Stores a page. Ephemeral puts evict older ephemeral pages under
    /// pressure; persistent puts fail when no memory can be found.
    ///
    /// # Errors
    ///
    /// Pool-ownership violations; persistent-pool exhaustion is reported
    /// as `Ok(false)` (the guest falls back to real swap), matching the
    /// ABI's non-fatal failure.
    pub fn put(
        &mut self,
        caller: DomainId,
        pool: PoolId,
        key: TmemKey,
        contents: u64,
    ) -> Result<bool, XenError> {
        let kind = self.pool_checked(caller, pool)?.kind;
        // Replacing an existing key reuses its page.
        let replacing = self
            .pools
            .get(&pool)
            .is_some_and(|p| p.pages.contains_key(&key));
        if !replacing && self.used_pages >= self.capacity_pages {
            match kind {
                PoolKind::Ephemeral => {
                    if !self.evict_one_ephemeral() {
                        // Nothing evictable: drop the put silently (legal
                        // for ephemeral pools).
                        return Ok(false);
                    }
                }
                PoolKind::Persistent => {
                    if !self.evict_one_ephemeral() {
                        self.stats.persistent_refusals += 1;
                        return Ok(false);
                    }
                }
            }
        }
        let p = self.pools.get_mut(&pool).expect("checked above");
        if p.pages.insert(key, contents).is_none() {
            self.used_pages += 1;
        }
        if kind == PoolKind::Ephemeral {
            self.eph_lru.push_back((pool, key));
        }
        Ok(true)
    }

    /// Retrieves (and removes — gets are exclusive, as in the real ABI)
    /// a page. Ephemeral misses are normal; persistent gets always hit if
    /// the put succeeded and no flush intervened.
    ///
    /// # Errors
    ///
    /// Pool-ownership violations.
    pub fn get(
        &mut self,
        caller: DomainId,
        pool: PoolId,
        key: TmemKey,
    ) -> Result<Option<u64>, XenError> {
        let kind = self.pool_checked(caller, pool)?.kind;
        let p = self.pools.get_mut(&pool).expect("checked above");
        let hit = p.pages.remove(&key);
        if hit.is_some() {
            self.used_pages -= 1;
        }
        if kind == PoolKind::Ephemeral {
            if hit.is_some() {
                self.stats.eph_hits += 1;
            } else {
                self.stats.eph_misses += 1;
            }
        }
        Ok(hit)
    }

    /// Flushes one page (guest dropped/overwrote its disk copy).
    ///
    /// # Errors
    ///
    /// Pool-ownership violations.
    pub fn flush_page(
        &mut self,
        caller: DomainId,
        pool: PoolId,
        key: TmemKey,
    ) -> Result<(), XenError> {
        let p = self.pool_checked(caller, pool)?;
        if p.pages.remove(&key).is_some() {
            self.used_pages -= 1;
        }
        Ok(())
    }

    /// Destroys a whole pool (domain shutdown), releasing its pages.
    ///
    /// # Errors
    ///
    /// Pool-ownership violations.
    pub fn destroy_pool(&mut self, caller: DomainId, pool: PoolId) -> Result<(), XenError> {
        self.pool_checked(caller, pool)?;
        let p = self.pools.remove(&pool).expect("checked above");
        self.used_pages -= p.pages.len() as u64;
        Ok(())
    }

    /// Pages currently stored.
    pub fn used_pages(&self) -> u64 {
        self.used_pages
    }

    /// Total spare-page capacity.
    pub fn capacity_pages(&self) -> u64 {
        self.capacity_pages
    }

    /// Accumulated statistics.
    pub fn stats(&self) -> TmemStats {
        self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const A: DomainId = DomainId(1);
    const B: DomainId = DomainId(2);

    #[test]
    fn exclusive_get_semantics() {
        let mut t = Tmem::new(8);
        let pool = t.new_pool(A, PoolKind::Persistent);
        assert!(t.put(A, pool, (7, 0), 42).unwrap());
        assert_eq!(t.get(A, pool, (7, 0)).unwrap(), Some(42));
        assert_eq!(t.get(A, pool, (7, 0)).unwrap(), None);
        assert_eq!(t.used_pages(), 0);
    }

    #[test]
    fn ephemeral_eviction_under_pressure() {
        let mut t = Tmem::new(2);
        let pool = t.new_pool(A, PoolKind::Ephemeral);
        assert!(t.put(A, pool, (1, 0), 10).unwrap());
        assert!(t.put(A, pool, (2, 0), 20).unwrap());
        // Third put evicts the LRU (1,0).
        assert!(t.put(A, pool, (3, 0), 30).unwrap());
        assert_eq!(t.get(A, pool, (1, 0)).unwrap(), None, "evicted");
        assert_eq!(t.get(A, pool, (3, 0)).unwrap(), Some(30));
        assert_eq!(t.stats().evictions, 1);
        assert_eq!(t.stats().eph_misses, 1);
        assert_eq!(t.stats().eph_hits, 1);
    }

    #[test]
    fn persistent_puts_guaranteed_or_refused() {
        let mut t = Tmem::new(1);
        let pers = t.new_pool(A, PoolKind::Persistent);
        assert!(t.put(A, pers, (1, 0), 1).unwrap());
        // No ephemeral pages to evict: refuse, do not drop silently.
        assert!(!t.put(A, pers, (2, 0), 2).unwrap());
        assert_eq!(t.stats().persistent_refusals, 1);
        // The guaranteed page is still there.
        assert_eq!(t.get(A, pers, (1, 0)).unwrap(), Some(1));
    }

    #[test]
    fn persistent_put_evicts_ephemeral_first() {
        let mut t = Tmem::new(1);
        let eph = t.new_pool(A, PoolKind::Ephemeral);
        let pers = t.new_pool(A, PoolKind::Persistent);
        assert!(t.put(A, eph, (1, 0), 1).unwrap());
        // Persistent demand steals the ephemeral page.
        assert!(t.put(A, pers, (9, 0), 9).unwrap());
        assert_eq!(t.stats().evictions, 1);
        assert_eq!(t.get(A, pers, (9, 0)).unwrap(), Some(9));
    }

    #[test]
    fn cross_domain_isolation() {
        let mut t = Tmem::new(4);
        let pool_a = t.new_pool(A, PoolKind::Persistent);
        t.put(A, pool_a, (1, 0), 11).unwrap();
        assert!(matches!(
            t.get(B, pool_a, (1, 0)),
            Err(XenError::PermissionDenied { .. })
        ));
        assert!(matches!(
            t.put(B, pool_a, (1, 1), 1),
            Err(XenError::PermissionDenied { .. })
        ));
    }

    #[test]
    fn flush_and_destroy_release_memory() {
        let mut t = Tmem::new(4);
        let pool = t.new_pool(A, PoolKind::Persistent);
        t.put(A, pool, (1, 0), 1).unwrap();
        t.put(A, pool, (1, 1), 2).unwrap();
        t.flush_page(A, pool, (1, 0)).unwrap();
        assert_eq!(t.used_pages(), 1);
        t.destroy_pool(A, pool).unwrap();
        assert_eq!(t.used_pages(), 0);
        assert!(t.get(A, pool, (1, 1)).is_err(), "pool gone");
    }

    #[test]
    fn replacing_a_key_does_not_leak() {
        let mut t = Tmem::new(1);
        let pool = t.new_pool(A, PoolKind::Persistent);
        assert!(t.put(A, pool, (1, 0), 1).unwrap());
        assert!(t.put(A, pool, (1, 0), 2).unwrap(), "replace in place");
        assert_eq!(t.used_pages(), 1);
        assert_eq!(t.get(A, pool, (1, 0)).unwrap(), Some(2));
    }

    #[test]
    fn page_cache_sharing_scenario() {
        // Two guests share the host's spare memory for page cache: one
        // fills, the other benefits after the first releases.
        let mut t = Tmem::new(100);
        let a_pool = t.new_pool(A, PoolKind::Ephemeral);
        let b_pool = t.new_pool(B, PoolKind::Ephemeral);
        for i in 0..100 {
            assert!(t.put(A, a_pool, (0, i), u64::from(i)).unwrap());
        }
        assert_eq!(t.used_pages(), 100);
        // B's puts now evict A's LRU pages — the shared-cache behaviour.
        for i in 0..50 {
            assert!(t.put(B, b_pool, (0, i), 1000 + u64::from(i)).unwrap());
        }
        assert_eq!(t.used_pages(), 100);
        assert_eq!(t.stats().evictions, 50);
        assert_eq!(t.get(B, b_pool, (0, 0)).unwrap(), Some(1000));
    }
}
