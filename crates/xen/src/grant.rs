//! Grant tables — shared-memory permissions for split drivers.
//!
//! "Data is transferred using shared memory (asynchronous buffer
//! descriptor rings)" (§4.1). A front-end driver grants the back-end
//! access to specific frames; the back-end maps them or asks the
//! hypervisor to copy. The model tracks grant lifecycle (grant → map →
//! unmap → revoke) with the validation real Xen performs, and counts
//! copied bytes for the I/O cost paths.

use crate::domain::DomainId;
use crate::error::XenError;

/// Maximum grant entries per domain (matches Xen's default of 32 frames
/// of v1 entries).
pub const MAX_GRANTS: u32 = 16_384;

/// Bits of a grant reference holding the slab slot index
/// (`MAX_GRANTS == 1 << GREF_INDEX_BITS`); the remaining high bits hold
/// the slot's generation counter.
const GREF_INDEX_BITS: u32 = 14;
const GREF_INDEX_MASK: u32 = MAX_GRANTS - 1;
/// Generation counters wrap within the bits left above the index.
const GEN_MASK: u32 = (1 << (32 - GREF_INDEX_BITS)) - 1;

/// Access mode of a grant.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum GrantAccess {
    /// Peer may only read the frame.
    ReadOnly,
    /// Peer may read and write.
    ReadWrite,
}

#[derive(Debug, Clone)]
struct Grant {
    granter: DomainId,
    grantee: DomainId,
    frame: u64,
    access: GrantAccess,
    mapped: bool,
}

/// One slab slot: a generation counter plus the live grant, if any.
/// Revoking bumps the generation, so stale references to a reused slot
/// fail validation instead of aliasing the new occupant.
#[derive(Debug, Clone, Default)]
struct Slot {
    gen: u32,
    grant: Option<Grant>,
}

/// The hypervisor grant-table subsystem.
///
/// # Example
///
/// ```
/// use xc_xen::domain::DomainId;
/// use xc_xen::grant::{GrantAccess, GrantTable};
///
/// let mut gt = GrantTable::new();
/// let (front, back) = (DomainId(1), DomainId(2));
/// let gref = gt.grant(front, back, 0x1234, GrantAccess::ReadOnly)?;
/// gt.map(back, gref)?;
/// let copied = gt.copy(back, gref, 4096)?;   // back-end pulls the frame
/// assert_eq!(copied, 4096);
/// gt.unmap(back, gref)?;
/// gt.revoke(front, gref)?;
/// # Ok::<(), xc_xen::XenError>(())
/// ```
#[derive(Debug, Clone, Default)]
pub struct GrantTable {
    /// Slab of grant slots; a grant reference encodes
    /// `(generation << GREF_INDEX_BITS) | slot index`, so every lookup
    /// is one array access plus a generation compare.
    slots: Vec<Slot>,
    /// Indices of vacated slots, reused LIFO.
    free: Vec<u32>,
    live: usize,
    bytes_copied: u64,
    maps: u64,
}

impl GrantTable {
    /// Creates an empty grant table.
    pub fn new() -> Self {
        GrantTable::default()
    }

    /// Rewinds the table to its freshly-constructed state — slab
    /// emptied, generations back to zero, counters cleared — while
    /// keeping the slab and free-list allocations. Grant references
    /// handed out by a recycled table are therefore bit-identical to a
    /// fresh one's (same slot indices *and* generations), which the
    /// world-arena recycling in `xc-faults` depends on.
    pub fn reset(&mut self) {
        self.slots.clear();
        self.free.clear();
        self.live = 0;
        self.bytes_copied = 0;
        self.maps = 0;
    }

    /// Grants `grantee` access to `granter`'s `frame`.
    ///
    /// # Errors
    ///
    /// Returns [`XenError::GrantTableFull`] past [`MAX_GRANTS`].
    pub fn grant(
        &mut self,
        granter: DomainId,
        grantee: DomainId,
        frame: u64,
        access: GrantAccess,
    ) -> Result<u32, XenError> {
        if self.live as u32 >= MAX_GRANTS {
            return Err(XenError::GrantTableFull);
        }
        let idx = match self.free.pop() {
            Some(idx) => idx,
            None => {
                self.slots.push(Slot::default());
                (self.slots.len() - 1) as u32
            }
        };
        let slot = &mut self.slots[idx as usize];
        slot.grant = Some(Grant {
            granter,
            grantee,
            frame,
            access,
            mapped: false,
        });
        self.live += 1;
        Ok((slot.gen << GREF_INDEX_BITS) | idx)
    }

    /// Resolves a reference to its live grant, checking the generation.
    fn slot(&self, gref: u32) -> Option<&Grant> {
        let slot = self.slots.get((gref & GREF_INDEX_MASK) as usize)?;
        if slot.gen != (gref >> GREF_INDEX_BITS) & GEN_MASK {
            return None;
        }
        slot.grant.as_ref()
    }

    fn slot_mut(&mut self, gref: u32) -> Option<&mut Grant> {
        let slot = self.slots.get_mut((gref & GREF_INDEX_MASK) as usize)?;
        if slot.gen != (gref >> GREF_INDEX_BITS) & GEN_MASK {
            return None;
        }
        slot.grant.as_mut()
    }

    fn get_for(&mut self, caller: DomainId, gref: u32) -> Result<&mut Grant, XenError> {
        let grant = self.slot_mut(gref).ok_or(XenError::BadGrantRef(gref))?;
        if grant.grantee != caller {
            return Err(XenError::PermissionDenied {
                caller,
                op: "grant access",
            });
        }
        Ok(grant)
    }

    /// Maps a granted frame into the grantee.
    ///
    /// # Errors
    ///
    /// [`XenError::BadGrantRef`] for unknown refs,
    /// [`XenError::PermissionDenied`] if `caller` is not the grantee.
    pub fn map(&mut self, caller: DomainId, gref: u32) -> Result<u64, XenError> {
        let grant = self.get_for(caller, gref)?;
        grant.mapped = true;
        let frame = grant.frame;
        self.maps += 1;
        Ok(frame)
    }

    /// Unmaps a previously mapped frame.
    ///
    /// # Errors
    ///
    /// Same as [`GrantTable::map`], plus [`XenError::BadGrantRef`] if the
    /// frame was not mapped.
    pub fn unmap(&mut self, caller: DomainId, gref: u32) -> Result<(), XenError> {
        let grant = self.get_for(caller, gref)?;
        if !grant.mapped {
            return Err(XenError::BadGrantRef(gref));
        }
        grant.mapped = false;
        Ok(())
    }

    /// Hypervisor-mediated copy of `bytes` from/to the granted frame
    /// (the `GNTTABOP_copy` path the netback/netfront drivers use).
    ///
    /// # Errors
    ///
    /// Same validation as [`GrantTable::map`].
    pub fn copy(&mut self, caller: DomainId, gref: u32, bytes: u64) -> Result<u64, XenError> {
        self.get_for(caller, gref)?;
        self.bytes_copied += bytes;
        Ok(bytes)
    }

    /// Revokes a grant. Only the granter may revoke, and only while the
    /// frame is unmapped (matching Xen's "still in use" check).
    ///
    /// # Errors
    ///
    /// [`XenError::BadGrantRef`] if unknown or still mapped;
    /// [`XenError::PermissionDenied`] if `caller` is not the granter.
    pub fn revoke(&mut self, caller: DomainId, gref: u32) -> Result<(), XenError> {
        let grant = self.slot(gref).ok_or(XenError::BadGrantRef(gref))?;
        if grant.granter != caller {
            return Err(XenError::PermissionDenied {
                caller,
                op: "grant revoke",
            });
        }
        if grant.mapped {
            return Err(XenError::BadGrantRef(gref));
        }
        let idx = gref & GREF_INDEX_MASK;
        let slot = &mut self.slots[idx as usize];
        slot.grant = None;
        slot.gen = (slot.gen + 1) & GEN_MASK;
        self.free.push(idx);
        self.live -= 1;
        Ok(())
    }

    /// Access mode of a live grant.
    pub fn access(&self, gref: u32) -> Option<GrantAccess> {
        self.slot(gref).map(|g| g.access)
    }

    /// Number of live grants.
    pub fn live_grants(&self) -> usize {
        self.live
    }

    /// Total bytes moved through hypervisor copies.
    pub fn bytes_copied(&self) -> u64 {
        self.bytes_copied
    }

    /// Total map operations performed.
    pub fn maps(&self) -> u64 {
        self.maps
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const FRONT: DomainId = DomainId(1);
    const BACK: DomainId = DomainId(2);
    const OTHER: DomainId = DomainId(3);

    #[test]
    fn lifecycle_grant_map_unmap_revoke() {
        let mut gt = GrantTable::new();
        let gref = gt.grant(FRONT, BACK, 7, GrantAccess::ReadWrite).unwrap();
        assert_eq!(gt.map(BACK, gref).unwrap(), 7);
        gt.unmap(BACK, gref).unwrap();
        gt.revoke(FRONT, gref).unwrap();
        assert_eq!(gt.live_grants(), 0);
    }

    #[test]
    fn only_grantee_may_map() {
        let mut gt = GrantTable::new();
        let gref = gt.grant(FRONT, BACK, 7, GrantAccess::ReadOnly).unwrap();
        assert!(matches!(
            gt.map(OTHER, gref),
            Err(XenError::PermissionDenied { .. })
        ));
    }

    #[test]
    fn only_granter_may_revoke() {
        let mut gt = GrantTable::new();
        let gref = gt.grant(FRONT, BACK, 7, GrantAccess::ReadOnly).unwrap();
        assert!(matches!(
            gt.revoke(BACK, gref),
            Err(XenError::PermissionDenied { .. })
        ));
    }

    #[test]
    fn revoke_while_mapped_rejected() {
        let mut gt = GrantTable::new();
        let gref = gt.grant(FRONT, BACK, 7, GrantAccess::ReadOnly).unwrap();
        gt.map(BACK, gref).unwrap();
        assert_eq!(gt.revoke(FRONT, gref), Err(XenError::BadGrantRef(gref)));
        gt.unmap(BACK, gref).unwrap();
        gt.revoke(FRONT, gref).unwrap();
    }

    #[test]
    fn copy_accumulates_bytes() {
        let mut gt = GrantTable::new();
        let gref = gt.grant(FRONT, BACK, 7, GrantAccess::ReadWrite).unwrap();
        gt.copy(BACK, gref, 4096).unwrap();
        gt.copy(BACK, gref, 1500).unwrap();
        assert_eq!(gt.bytes_copied(), 5596);
    }

    #[test]
    fn unmap_unmapped_rejected() {
        let mut gt = GrantTable::new();
        let gref = gt.grant(FRONT, BACK, 7, GrantAccess::ReadOnly).unwrap();
        assert_eq!(gt.unmap(BACK, gref), Err(XenError::BadGrantRef(gref)));
    }

    #[test]
    fn revoked_slot_is_reused_with_fresh_generation() {
        let mut gt = GrantTable::new();
        let old = gt.grant(FRONT, BACK, 7, GrantAccess::ReadOnly).unwrap();
        gt.revoke(FRONT, old).unwrap();
        let new = gt.grant(FRONT, BACK, 8, GrantAccess::ReadWrite).unwrap();
        // Same slot, different generation: the stale ref must not alias.
        assert_eq!(old & GREF_INDEX_MASK, new & GREF_INDEX_MASK);
        assert_ne!(old, new);
        assert_eq!(gt.map(BACK, old), Err(XenError::BadGrantRef(old)));
        assert_eq!(gt.access(old), None);
        assert_eq!(gt.map(BACK, new).unwrap(), 8);
        assert_eq!(gt.live_grants(), 1);
    }

    #[test]
    fn unknown_ref_rejected() {
        let mut gt = GrantTable::new();
        assert_eq!(gt.map(BACK, 99), Err(XenError::BadGrantRef(99)));
        assert_eq!(gt.access(99), None);
    }
}
