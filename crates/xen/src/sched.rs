//! The credit scheduler — Xen's proportional-share vCPU scheduler.
//!
//! "The Linux kernel has full control over how processes are scheduled
//! with virtual CPUs, and Xen determines how virtual CPUs are mapped to
//! physical CPUs" (§4.3). This is the *outer* level of the hierarchical
//! scheduling that wins Figure 8 at high density: with N containers the
//! X-Kernel schedules N vCPUs while a flat Linux host schedules 4N
//! processes.
//!
//! The model implements Xen's credit algorithm in its essential form:
//! each vCPU accrues credits proportional to its weight, the scheduler
//! picks the runnable vCPU with the most credits per physical CPU, and
//! running vCPUs are debited. Work-conserving behaviour, weighted
//! fairness and switch counting are unit-tested; the Figure 8 harness
//! additionally uses [`CreditScheduler::steady_state`] for closed-form
//! overhead accounting at scales where event-driven simulation of 400
//! containers would dominate runtime.

use xc_sim::cost::CostModel;
use xc_sim::time::Nanos;

use crate::error::XenError;

/// Identifier of a virtual CPU known to the scheduler.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct VcpuId(pub u32);

/// Default scheduling quantum (Xen's credit scheduler uses 30 ms).
pub const DEFAULT_SLICE: Nanos = Nanos::from_millis(30);

#[derive(Debug, Clone)]
struct Vcpu {
    weight: u32,
    runnable: bool,
    credits: i64,
    run_time: Nanos,
}

/// Closed-form steady-state figures for a symmetric runnable population.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SteadyState {
    /// CPU share each runnable vCPU receives (0–1].
    pub share_per_vcpu: f64,
    /// vCPU context switches per second across the machine.
    pub switches_per_sec: f64,
    /// Fraction of CPU time lost to switch overhead (0–1).
    pub overhead_fraction: f64,
}

/// The credit scheduler.
///
/// # Example
///
/// ```
/// use xc_xen::sched::CreditScheduler;
///
/// let mut sched = CreditScheduler::new(2);
/// let a = sched.add_vcpu(256);
/// let b = sched.add_vcpu(256);
/// let c = sched.add_vcpu(256);
/// sched.set_runnable(a, true)?;
/// sched.set_runnable(b, true)?;
/// sched.set_runnable(c, true)?;
/// for _ in 0..300 { sched.tick(); }
/// // Three equal vCPUs on two cores: each gets ~2/3 of a core.
/// let times: Vec<f64> = [a, b, c].iter()
///     .map(|&v| sched.run_time(v).unwrap().as_secs_f64())
///     .collect();
/// let spread = times.iter().cloned().fold(f64::MIN, f64::max)
///     - times.iter().cloned().fold(f64::MAX, f64::min);
/// assert!(spread < 0.2 * times[0]);
/// # Ok::<(), xc_xen::XenError>(())
/// ```
#[derive(Debug, Clone)]
pub struct CreditScheduler {
    pcpus: u32,
    slice: Nanos,
    /// Indexed by `VcpuId.0` — ids are sequential and never reused, so
    /// every per-tick lookup is one array access. Removed vCPUs leave a
    /// `None` hole.
    vcpus: Vec<Option<Vcpu>>,
    /// vCPU installed on each physical CPU (indexed by pcpu).
    running: Vec<Option<VcpuId>>,
    switches: u64,
    ticks: u64,
}

impl CreditScheduler {
    /// Creates a scheduler managing `pcpus` physical CPUs with the default
    /// 30 ms slice.
    ///
    /// # Panics
    ///
    /// Panics if `pcpus == 0`.
    pub fn new(pcpus: u32) -> Self {
        assert!(pcpus > 0, "need at least one physical CPU");
        CreditScheduler {
            pcpus,
            slice: DEFAULT_SLICE,
            vcpus: Vec::new(),
            running: vec![None; pcpus as usize],
            switches: 0,
            ticks: 0,
        }
    }

    /// Registers a vCPU with a proportional weight (Xen default: 256).
    pub fn add_vcpu(&mut self, weight: u32) -> VcpuId {
        let id = VcpuId(self.vcpus.len() as u32);
        self.vcpus.push(Some(Vcpu {
            weight: weight.max(1),
            runnable: false,
            credits: 0,
            run_time: Nanos::ZERO,
        }));
        id
    }

    /// Removes a vCPU.
    ///
    /// # Errors
    ///
    /// Returns [`XenError::NoSuchVcpu`] for unknown ids.
    pub fn remove_vcpu(&mut self, id: VcpuId) -> Result<(), XenError> {
        match self.vcpus.get_mut(id.0 as usize) {
            Some(slot @ Some(_)) => {
                *slot = None;
                for r in &mut self.running {
                    if *r == Some(id) {
                        *r = None;
                    }
                }
                Ok(())
            }
            _ => Err(XenError::NoSuchVcpu(id.0)),
        }
    }

    /// Marks a vCPU runnable or blocked.
    ///
    /// # Errors
    ///
    /// Returns [`XenError::NoSuchVcpu`] for unknown ids.
    pub fn set_runnable(&mut self, id: VcpuId, runnable: bool) -> Result<(), XenError> {
        let v = self
            .vcpus
            .get_mut(id.0 as usize)
            .and_then(Option::as_mut)
            .ok_or(XenError::NoSuchVcpu(id.0))?;
        v.runnable = runnable;
        if !runnable {
            for r in &mut self.running {
                if *r == Some(id) {
                    *r = None;
                }
            }
        }
        Ok(())
    }

    /// Total time a vCPU has been scheduled.
    ///
    /// # Errors
    ///
    /// Returns [`XenError::NoSuchVcpu`] for unknown ids.
    pub fn run_time(&self, id: VcpuId) -> Result<Nanos, XenError> {
        self.vcpus
            .get(id.0 as usize)
            .and_then(Option::as_ref)
            .map(|v| v.run_time)
            .ok_or(XenError::NoSuchVcpu(id.0))
    }

    /// Total vCPU switches so far.
    pub fn switches(&self) -> u64 {
        self.switches
    }

    /// Number of runnable vCPUs.
    pub fn runnable_count(&self) -> usize {
        self.vcpus.iter().flatten().filter(|v| v.runnable).count()
    }

    /// Advances one scheduling quantum: accrues credits, debits running
    /// vCPUs, and (re)assigns each physical CPU the runnable vCPU with the
    /// most credits. Returns the assignments made this tick.
    pub fn tick(&mut self) -> Vec<(u32, VcpuId)> {
        self.ticks += 1;
        let total_weight: u64 = self
            .vcpus
            .iter()
            .flatten()
            .filter(|v| v.runnable)
            .map(|v| u64::from(v.weight))
            .sum();
        if total_weight == 0 {
            self.running.fill(None);
            return Vec::new();
        }
        // Accrue: the machine distributes pcpus × slice worth of credit
        // per tick, proportionally to weight.
        let pool = self.slice.as_nanos() as i64 * i64::from(self.pcpus);
        for v in self.vcpus.iter_mut().flatten() {
            if v.runnable {
                v.credits += pool * i64::from(v.weight) / total_weight as i64;
                // Cap accumulation like Xen does, to bound latency debt.
                v.credits = v.credits.min(pool * 2);
            }
        }

        // Pick: per pCPU, the highest-credit runnable vCPU not already
        // placed this tick.
        let mut placed: Vec<VcpuId> = Vec::with_capacity(self.pcpus as usize);
        let mut assignments = Vec::with_capacity(self.pcpus as usize);
        for pcpu in 0..self.pcpus {
            let best = self
                .vcpus
                .iter()
                .enumerate()
                .filter_map(|(i, v)| v.as_ref().map(|v| (VcpuId(i as u32), v)))
                .filter(|(id, v)| v.runnable && !placed.contains(id))
                .max_by_key(|&(id, v)| (v.credits, std::cmp::Reverse(id)))
                .map(|(id, _)| id);
            let Some(choice) = best else { break };
            placed.push(choice);
            let prev = self.running[pcpu as usize].replace(choice);
            if prev != Some(choice) {
                self.switches += 1;
            }
            let v = self.vcpus[choice.0 as usize]
                .as_mut()
                .expect("placed vcpu exists");
            v.credits -= self.slice.as_nanos() as i64;
            v.run_time += self.slice;
            assignments.push((pcpu, choice));
        }
        assignments
    }

    /// Closed-form steady state for `runnable` symmetric vCPUs: shares,
    /// switch rate, and the fraction of machine time burned on vCPU
    /// switches of cost `switch_cost`.
    pub fn steady_state(
        &self,
        runnable: u64,
        switch_cost: Nanos,
        _costs: &CostModel,
    ) -> SteadyState {
        if runnable == 0 {
            return SteadyState {
                share_per_vcpu: 0.0,
                switches_per_sec: 0.0,
                overhead_fraction: 0.0,
            };
        }
        let pcpus = f64::from(self.pcpus);
        let share = (pcpus / runnable as f64).min(1.0);
        // When oversubscribed, every slice boundary switches vCPUs on every
        // pCPU; undersubscribed machines barely switch.
        let slice_s = self.slice.as_secs_f64();
        let switches_per_sec = if runnable as f64 > pcpus {
            pcpus / slice_s
        } else {
            // Occasional rebalancing only.
            runnable as f64 / slice_s / 8.0
        };
        let overhead = switches_per_sec * switch_cost.as_secs_f64() / pcpus;
        SteadyState {
            share_per_vcpu: share,
            switches_per_sec,
            overhead_fraction: overhead.min(1.0),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn weighted_fairness() {
        let mut s = CreditScheduler::new(1);
        let light = s.add_vcpu(256);
        let heavy = s.add_vcpu(512);
        s.set_runnable(light, true).unwrap();
        s.set_runnable(heavy, true).unwrap();
        for _ in 0..3000 {
            s.tick();
        }
        let lt = s.run_time(light).unwrap().as_secs_f64();
        let ht = s.run_time(heavy).unwrap().as_secs_f64();
        let ratio = ht / lt;
        assert!(
            (1.8..2.2).contains(&ratio),
            "weight 2:1 should run ~2:1, got {ratio}"
        );
    }

    #[test]
    fn work_conserving() {
        let mut s = CreditScheduler::new(4);
        let a = s.add_vcpu(256);
        s.set_runnable(a, true).unwrap();
        let assignments = s.tick();
        // One runnable vCPU: exactly one pCPU busy, none idle-spinning on
        // phantom work.
        assert_eq!(assignments.len(), 1);
        assert_eq!(assignments[0].1, a);
    }

    #[test]
    fn blocked_vcpus_not_scheduled() {
        let mut s = CreditScheduler::new(2);
        let a = s.add_vcpu(256);
        let b = s.add_vcpu(256);
        s.set_runnable(a, true).unwrap();
        s.set_runnable(b, false).unwrap();
        for _ in 0..10 {
            let asg = s.tick();
            assert!(asg.iter().all(|(_, v)| *v == a));
        }
        assert_eq!(s.run_time(b).unwrap(), Nanos::ZERO);
    }

    #[test]
    fn oversubscription_time_shares() {
        let mut s = CreditScheduler::new(2);
        let vcpus: Vec<VcpuId> = (0..6).map(|_| s.add_vcpu(256)).collect();
        for &v in &vcpus {
            s.set_runnable(v, true).unwrap();
        }
        for _ in 0..600 {
            s.tick();
        }
        let total: f64 = vcpus
            .iter()
            .map(|&v| s.run_time(v).unwrap().as_secs_f64())
            .sum();
        for &v in &vcpus {
            let t = s.run_time(v).unwrap().as_secs_f64();
            let share = t / total;
            assert!((share - 1.0 / 6.0).abs() < 0.03, "share {share}");
        }
    }

    #[test]
    fn switches_counted() {
        let mut s = CreditScheduler::new(1);
        let a = s.add_vcpu(256);
        let b = s.add_vcpu(256);
        s.set_runnable(a, true).unwrap();
        s.set_runnable(b, true).unwrap();
        for _ in 0..100 {
            s.tick();
        }
        // Equal credits alternate: roughly one switch per tick.
        assert!(s.switches() > 50, "switches {}", s.switches());
    }

    #[test]
    fn remove_and_errors() {
        let mut s = CreditScheduler::new(1);
        let a = s.add_vcpu(256);
        s.set_runnable(a, true).unwrap();
        s.tick();
        s.remove_vcpu(a).unwrap();
        assert!(matches!(s.remove_vcpu(a), Err(XenError::NoSuchVcpu(_))));
        assert!(matches!(
            s.set_runnable(a, true),
            Err(XenError::NoSuchVcpu(_))
        ));
        assert!(matches!(s.run_time(a), Err(XenError::NoSuchVcpu(_))));
        assert!(s.tick().is_empty());
    }

    #[test]
    fn steady_state_shapes() {
        let s = CreditScheduler::new(8);
        let costs = CostModel::skylake_cloud();
        let sw = Nanos::from_micros(3);
        let light = s.steady_state(4, sw, &costs);
        let heavy = s.steady_state(400, sw, &costs);
        assert_eq!(light.share_per_vcpu, 1.0);
        assert!((heavy.share_per_vcpu - 0.02).abs() < 1e-9);
        assert!(heavy.switches_per_sec >= light.switches_per_sec);
        assert!(heavy.overhead_fraction < 0.01, "credit slices are long");
        let idle = s.steady_state(0, sw, &costs);
        assert_eq!(idle.share_per_vcpu, 0.0);
    }
}
