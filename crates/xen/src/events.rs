//! Event channels — Xen's virtualized interrupts.
//!
//! "Exceptions and interrupts are virtualized through efficient event
//! channels" (§4.1). The model implements the port state machine
//! (allocate → bind → send → pending → deliver) with the same
//! pending/masked bitmap semantics real Xen uses; delivery *costs* are
//! charged by the caller through [`crate::abi::XenAbi::event_delivery_cost`].

use crate::domain::DomainId;
use crate::error::XenError;

/// Maximum ports per domain (Xen's 2-level ABI allows 4096 on x86-64;
/// the model keeps the same bound).
pub const MAX_PORTS: u32 = 4096;

/// State of one event channel port.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum PortState {
    /// Allocated, awaiting an interdomain bind.
    Unbound,
    /// Connected to a remote (domain, port).
    Bound { peer: DomainId, peer_port: u32 },
}

#[derive(Debug, Clone)]
struct Port {
    state: PortState,
    pending: bool,
    masked: bool,
}

/// Per-domain event channel table. Ports are allocated sequentially and
/// never freed, so the port number *is* the `Vec` index — every lookup
/// on the send/deliver hot path is one bounds-checked array access.
#[derive(Debug, Clone, Default)]
struct DomainPorts {
    ports: Vec<Port>,
}

/// The hypervisor's event-channel subsystem.
///
/// # Example
///
/// ```
/// use xc_xen::domain::DomainId;
/// use xc_xen::events::EventChannels;
///
/// let mut ev = EventChannels::new();
/// let (front, back) = (DomainId(1), DomainId(2));
/// let fp = ev.alloc_unbound(front)?;
/// let bp = ev.alloc_unbound(back)?;
/// ev.bind(front, fp, back, bp)?;
///
/// ev.send(back, bp)?;                    // backend notifies frontend
/// assert_eq!(ev.take_pending(front), vec![fp]);
/// # Ok::<(), xc_xen::XenError>(())
/// ```
#[derive(Debug, Clone, Default)]
pub struct EventChannels {
    /// Indexed by `DomainId.0`; domain ids are machine-assigned small
    /// integers, so the table stays dense.
    domains: Vec<DomainPorts>,
    sends: u64,
    deliveries: u64,
    drops: u64,
}

impl EventChannels {
    /// Creates an empty subsystem.
    pub fn new() -> Self {
        EventChannels::default()
    }

    /// Rewinds the subsystem to its freshly-constructed state while
    /// keeping the per-domain port `Vec`s' allocations, so a recycled
    /// table is observationally identical to [`EventChannels::new`] but
    /// re-populating it allocates nothing. The world-arena recycling in
    /// `xc-faults` leans on this.
    pub fn reset(&mut self) {
        for table in &mut self.domains {
            table.ports.clear();
        }
        self.sends = 0;
        self.deliveries = 0;
        self.drops = 0;
    }

    /// Allocates a fresh unbound port for `dom`.
    ///
    /// # Errors
    ///
    /// Returns [`XenError::NoFreePorts`] past [`MAX_PORTS`].
    pub fn alloc_unbound(&mut self, dom: DomainId) -> Result<u32, XenError> {
        let idx = dom.0 as usize;
        if idx >= self.domains.len() {
            self.domains.resize_with(idx + 1, DomainPorts::default);
        }
        let table = &mut self.domains[idx];
        if table.ports.len() as u32 >= MAX_PORTS {
            return Err(XenError::NoFreePorts);
        }
        let port = table.ports.len() as u32;
        table.ports.push(Port {
            state: PortState::Unbound,
            pending: false,
            masked: false,
        });
        Ok(port)
    }

    /// Binds two unbound ports into an interdomain channel.
    ///
    /// # Errors
    ///
    /// Returns [`XenError::BadEventPort`] if either port is missing or
    /// already bound.
    pub fn bind(
        &mut self,
        a: DomainId,
        a_port: u32,
        b: DomainId,
        b_port: u32,
    ) -> Result<(), XenError> {
        // Validate both ends before mutating either.
        for (dom, port) in [(a, a_port), (b, b_port)] {
            let p = self
                .domains
                .get(dom.0 as usize)
                .and_then(|t| t.ports.get(port as usize))
                .ok_or(XenError::BadEventPort(port))?;
            if p.state != PortState::Unbound {
                return Err(XenError::BadEventPort(port));
            }
        }
        self.port_mut(a, a_port)?.state = PortState::Bound {
            peer: b,
            peer_port: b_port,
        };
        self.port_mut(b, b_port)?.state = PortState::Bound {
            peer: a,
            peer_port: a_port,
        };
        Ok(())
    }

    fn port_mut(&mut self, dom: DomainId, port: u32) -> Result<&mut Port, XenError> {
        self.domains
            .get_mut(dom.0 as usize)
            .and_then(|t| t.ports.get_mut(port as usize))
            .ok_or(XenError::BadEventPort(port))
    }

    /// Sends an event from `dom`'s `port` to its bound peer: sets the
    /// peer's pending bit (idempotent while pending, like the real bitmap).
    ///
    /// # Errors
    ///
    /// Returns [`XenError::BadEventPort`] for unbound ports.
    pub fn send(&mut self, dom: DomainId, port: u32) -> Result<(), XenError> {
        let (peer, peer_port) = match self.port_mut(dom, port)?.state {
            PortState::Bound { peer, peer_port } => (peer, peer_port),
            PortState::Unbound => return Err(XenError::BadEventPort(port)),
        };
        let p = self.port_mut(peer, peer_port)?;
        p.pending = true;
        self.sends += 1;
        Ok(())
    }

    /// Masks or unmasks a port (masked ports accumulate pending state but
    /// are not reported by [`EventChannels::take_pending`]).
    ///
    /// # Errors
    ///
    /// Returns [`XenError::BadEventPort`] for unknown ports.
    pub fn set_masked(&mut self, dom: DomainId, port: u32, masked: bool) -> Result<(), XenError> {
        self.port_mut(dom, port)?.masked = masked;
        Ok(())
    }

    /// Whether any unmasked event is pending for `dom` (the shared
    /// variable the guest polls, §4.2).
    pub fn has_pending(&self, dom: DomainId) -> bool {
        self.domains
            .get(dom.0 as usize)
            .is_some_and(|t| t.ports.iter().any(|p| p.pending && !p.masked))
    }

    /// Takes (clears and returns) all unmasked pending ports for `dom`,
    /// in port order.
    pub fn take_pending(&mut self, dom: DomainId) -> Vec<u32> {
        let Some(table) = self.domains.get_mut(dom.0 as usize) else {
            return Vec::new();
        };
        let mut out = Vec::new();
        for (port, p) in table.ports.iter_mut().enumerate() {
            if p.pending && !p.masked {
                p.pending = false;
                out.push(port as u32);
            }
        }
        self.deliveries += out.len() as u64;
        out
    }

    /// Fault-injection hook: clears `dom`'s pending bit on `port` as if
    /// the notification was lost before the guest observed it (a dropped
    /// virtual interrupt). Returns whether an event was actually
    /// suppressed — `false` means the bit was already clear, so nothing
    /// was lost. Suppressed events count toward [`EventChannels::drops`],
    /// keeping the send/delivery ledger balanced:
    /// `sends == deliveries + drops + pending`.
    ///
    /// # Errors
    ///
    /// Returns [`XenError::BadEventPort`] for unknown ports.
    pub fn drop_pending(&mut self, dom: DomainId, port: u32) -> Result<bool, XenError> {
        let p = self.port_mut(dom, port)?;
        let was_pending = p.pending;
        p.pending = false;
        if was_pending {
            self.drops += 1;
        }
        Ok(was_pending)
    }

    /// Number of ports currently pending (masked or not) for `dom` — the
    /// outstanding side of the send/delivery conservation ledger.
    pub fn pending_count(&self, dom: DomainId) -> usize {
        self.domains
            .get(dom.0 as usize)
            .map_or(0, |t| t.ports.iter().filter(|p| p.pending).count())
    }

    /// Total sends performed.
    pub fn sends(&self) -> u64 {
        self.sends
    }

    /// Total events delivered.
    pub fn deliveries(&self) -> u64 {
        self.deliveries
    }

    /// Total pending events suppressed by the fault-injection hook
    /// ([`EventChannels::drop_pending`]).
    pub fn drops(&self) -> u64 {
        self.drops
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn setup() -> (EventChannels, DomainId, u32, DomainId, u32) {
        let mut ev = EventChannels::new();
        let (a, b) = (DomainId(1), DomainId(2));
        let ap = ev.alloc_unbound(a).unwrap();
        let bp = ev.alloc_unbound(b).unwrap();
        ev.bind(a, ap, b, bp).unwrap();
        (ev, a, ap, b, bp)
    }

    #[test]
    fn send_sets_peer_pending() {
        let (mut ev, a, ap, b, bp) = setup();
        ev.send(a, ap).unwrap();
        assert!(ev.has_pending(b));
        assert!(!ev.has_pending(a));
        assert_eq!(ev.take_pending(b), vec![bp]);
        assert!(!ev.has_pending(b));
    }

    #[test]
    fn pending_is_level_triggered() {
        let (mut ev, a, ap, b, _) = setup();
        // Multiple sends coalesce into one pending bit (bitmap semantics).
        ev.send(a, ap).unwrap();
        ev.send(a, ap).unwrap();
        ev.send(a, ap).unwrap();
        assert_eq!(ev.take_pending(b).len(), 1);
        assert_eq!(ev.sends(), 3);
        assert_eq!(ev.deliveries(), 1);
    }

    #[test]
    fn masking_defers_delivery() {
        let (mut ev, a, ap, b, bp) = setup();
        ev.set_masked(b, bp, true).unwrap();
        ev.send(a, ap).unwrap();
        assert!(!ev.has_pending(b));
        assert!(ev.take_pending(b).is_empty());
        ev.set_masked(b, bp, false).unwrap();
        assert!(ev.has_pending(b));
        assert_eq!(ev.take_pending(b), vec![bp]);
    }

    #[test]
    fn bidirectional_channel() {
        let (mut ev, a, ap, b, bp) = setup();
        ev.send(b, bp).unwrap();
        assert!(ev.has_pending(a));
        assert_eq!(ev.take_pending(a), vec![ap]);
    }

    #[test]
    fn unbound_send_rejected() {
        let mut ev = EventChannels::new();
        let a = DomainId(1);
        let p = ev.alloc_unbound(a).unwrap();
        assert_eq!(ev.send(a, p), Err(XenError::BadEventPort(p)));
    }

    #[test]
    fn double_bind_rejected() {
        let (mut ev, a, ap, _, _) = setup();
        let c = DomainId(3);
        let cp = ev.alloc_unbound(c).unwrap();
        assert_eq!(ev.bind(a, ap, c, cp), Err(XenError::BadEventPort(ap)));
    }

    #[test]
    fn bad_port_rejected() {
        let mut ev = EventChannels::new();
        assert_eq!(ev.send(DomainId(9), 0), Err(XenError::BadEventPort(0)));
        assert_eq!(
            ev.set_masked(DomainId(9), 7, true),
            Err(XenError::BadEventPort(7))
        );
    }

    #[test]
    fn drop_pending_suppresses_and_balances() {
        let (mut ev, a, ap, b, bp) = setup();
        ev.send(a, ap).unwrap();
        assert!(ev.has_pending(b));
        assert_eq!(ev.pending_count(b), 1);
        assert_eq!(ev.drop_pending(b, bp), Ok(true));
        assert!(!ev.has_pending(b));
        assert!(ev.take_pending(b).is_empty());
        // Dropping an already-clear bit suppresses nothing.
        assert_eq!(ev.drop_pending(b, bp), Ok(false));
        assert_eq!(ev.drops(), 1);
        // Ledger: every send is delivered, dropped, or still pending.
        ev.send(a, ap).unwrap();
        assert_eq!(ev.take_pending(b), vec![bp]);
        ev.send(a, ap).unwrap();
        assert_eq!(
            ev.sends(),
            ev.deliveries() + ev.drops() + ev.pending_count(b) as u64
        );
    }

    #[test]
    fn drop_pending_rejects_unknown_port() {
        let mut ev = EventChannels::new();
        assert_eq!(
            ev.drop_pending(DomainId(9), 3),
            Err(XenError::BadEventPort(3))
        );
    }

    #[test]
    fn port_exhaustion() {
        let mut ev = EventChannels::new();
        let d = DomainId(1);
        for _ in 0..MAX_PORTS {
            ev.alloc_unbound(d).unwrap();
        }
        assert_eq!(ev.alloc_unbound(d), Err(XenError::NoFreePorts));
    }
}
