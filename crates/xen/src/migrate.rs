//! Live migration and checkpoint/restore.
//!
//! §3.3 lists them among the reasons Xen is the right exokernel: "there
//! are many mature technologies in Xen's ecosystem enabling features
//! such as live migration, fault tolerance, and checkpoint/restore,
//! which are hard to implement with traditional containers." This module
//! implements the classic **pre-copy** algorithm those technologies use:
//!
//! 1. copy all memory while the domain keeps running,
//! 2. iteratively re-send the pages dirtied during the previous round,
//! 3. when the remaining dirty set is small enough (or rounds are
//!    exhausted), stop the domain, send the residue, and resume on the
//!    target — the only downtime.
//!
//! The model is exact given a dirty rate and link bandwidth, which lets
//! tests pin the algorithm's well-known properties: convergence iff the
//! link outpaces dirtying, monotone downtime in the dirty rate, and the
//! stop-and-copy fallback.

use xc_sim::time::Nanos;

/// Inputs to a migration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MigrationParams {
    /// Domain memory footprint in MiB (X-Containers: 128; full VMs: 512+).
    pub memory_mb: f64,
    /// Rate at which the workload dirties memory, MiB/s.
    pub dirty_rate_mb_s: f64,
    /// Migration link bandwidth, MiB/s (10 GbE ≈ 1 150 MiB/s).
    pub link_mb_s: f64,
    /// Stop-and-copy when the remaining dirty set drops below this (MiB).
    pub downtime_threshold_mb: f64,
    /// Maximum pre-copy rounds before forcing stop-and-copy.
    pub max_rounds: u32,
}

impl MigrationParams {
    /// Defaults for an X-Container on the paper's 10 GbE local cluster.
    pub fn x_container_default() -> Self {
        MigrationParams {
            memory_mb: 128.0,
            dirty_rate_mb_s: 40.0,
            link_mb_s: 1_150.0,
            downtime_threshold_mb: 4.0,
            max_rounds: 30,
        }
    }
}

/// One pre-copy round.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Round {
    /// MiB transferred this round.
    pub sent_mb: f64,
    /// Wall time of the round.
    pub duration: Nanos,
}

/// The computed migration schedule.
#[derive(Debug, Clone, PartialEq)]
pub struct MigrationPlan {
    /// Pre-copy rounds, in order (round 0 is the full copy).
    pub rounds: Vec<Round>,
    /// MiB sent during the stop-and-copy phase.
    pub final_copy_mb: f64,
    /// Domain downtime (stop-and-copy transfer + handoff).
    pub downtime: Nanos,
    /// Total wall time from start to resume.
    pub total_time: Nanos,
    /// Whether pre-copy converged below the threshold (false = round
    /// budget exhausted, downtime is whatever the residue costs).
    pub converged: bool,
}

impl MigrationPlan {
    /// Total MiB moved across all phases.
    pub fn total_sent_mb(&self) -> f64 {
        self.rounds.iter().map(|r| r.sent_mb).sum::<f64>() + self.final_copy_mb
    }
}

/// Fixed cost of the final handoff (device reattach, ARP announcement).
const HANDOFF: Nanos = Nanos::from_millis(3);

/// Plans a pre-copy live migration.
///
/// # Panics
///
/// Panics if any parameter is non-positive.
pub fn plan_precopy(p: MigrationParams) -> MigrationPlan {
    assert!(
        p.memory_mb > 0.0 && p.link_mb_s > 0.0,
        "degenerate migration"
    );
    assert!(p.dirty_rate_mb_s >= 0.0 && p.downtime_threshold_mb > 0.0);

    let mut rounds = Vec::new();
    let mut to_send = p.memory_mb;
    let mut total = Nanos::ZERO;
    let mut converged = false;

    for _ in 0..p.max_rounds {
        let duration = Nanos::from_secs_f64(to_send / p.link_mb_s);
        rounds.push(Round {
            sent_mb: to_send,
            duration,
        });
        total += duration;
        // Pages dirtied while this round was on the wire become the next
        // round's payload (capped at the whole footprint).
        let dirtied = p.dirty_rate_mb_s * duration.as_secs_f64();
        to_send = dirtied.min(p.memory_mb);
        if to_send <= p.downtime_threshold_mb {
            converged = true;
            break;
        }
        // Non-convergence detection: if the dirty set stopped shrinking,
        // more rounds only burn bandwidth.
        if dirtied >= rounds.last().expect("pushed above").sent_mb {
            break;
        }
    }

    let final_copy = Nanos::from_secs_f64(to_send / p.link_mb_s);
    let downtime = final_copy + HANDOFF;
    MigrationPlan {
        rounds,
        final_copy_mb: to_send,
        downtime,
        total_time: total + downtime,
        converged,
    }
}

/// A checkpoint (suspend-to-image) of a domain.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Checkpoint {
    /// Image size in MiB (memory + device state).
    pub image_mb: f64,
    /// Time to quiesce and write the image.
    pub save_time: Nanos,
    /// Time to read the image and resume.
    pub restore_time: Nanos,
}

/// Plans a checkpoint/restore through storage of the given bandwidth.
///
/// # Panics
///
/// Panics if parameters are non-positive.
pub fn plan_checkpoint(memory_mb: f64, storage_mb_s: f64) -> Checkpoint {
    assert!(memory_mb > 0.0 && storage_mb_s > 0.0);
    let device_state_mb = 2.0;
    let image_mb = memory_mb + device_state_mb;
    let io = Nanos::from_secs_f64(image_mb / storage_mb_s);
    Checkpoint {
        image_mb,
        save_time: io + HANDOFF,
        restore_time: io + HANDOFF,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quiet_domain_migrates_in_two_phases() {
        let plan = plan_precopy(MigrationParams {
            dirty_rate_mb_s: 0.0,
            ..MigrationParams::x_container_default()
        });
        assert!(plan.converged);
        assert_eq!(plan.rounds.len(), 1);
        assert_eq!(plan.final_copy_mb, 0.0);
        // Downtime is just the handoff.
        assert_eq!(plan.downtime, Nanos::from_millis(3));
    }

    #[test]
    fn default_x_container_converges_fast() {
        let plan = plan_precopy(MigrationParams::x_container_default());
        assert!(plan.converged);
        assert!(plan.rounds.len() <= 3, "rounds {}", plan.rounds.len());
        assert!(
            plan.downtime < Nanos::from_millis(10),
            "downtime {}",
            plan.downtime
        );
        // Rounds shrink geometrically.
        for pair in plan.rounds.windows(2) {
            assert!(pair[1].sent_mb < pair[0].sent_mb);
        }
    }

    #[test]
    fn total_time_monotone_in_dirty_rate_and_downtime_bounded() {
        // Downtime itself oscillates inside the threshold band (a faster
        // dirtier may stop one round later with a *smaller* residue), but
        // total migration time grows with the dirty rate, and converged
        // downtime never exceeds threshold/link + handoff.
        let p0 = MigrationParams::x_container_default();
        let downtime_bound =
            Nanos::from_secs_f64(p0.downtime_threshold_mb / p0.link_mb_s) + HANDOFF;
        let mut last_total = Nanos::ZERO;
        for rate in [10.0, 100.0, 400.0, 900.0] {
            let plan = plan_precopy(MigrationParams {
                dirty_rate_mb_s: rate,
                ..p0
            });
            assert!(
                plan.total_time >= last_total,
                "rate {rate}: total {:?}",
                plan.total_time
            );
            last_total = plan.total_time;
            if plan.converged {
                assert!(
                    plan.downtime <= downtime_bound,
                    "rate {rate}: downtime {:?} exceeds bound {downtime_bound:?}",
                    plan.downtime
                );
            }
        }
    }

    #[test]
    fn hot_domain_falls_back_to_stop_and_copy() {
        // Dirtying as fast as the link can carry: pre-copy cannot gain.
        let plan = plan_precopy(MigrationParams {
            dirty_rate_mb_s: 1_150.0,
            ..MigrationParams::x_container_default()
        });
        assert!(!plan.converged);
        assert!(plan.rounds.len() <= 2, "no point iterating");
        // Stop-and-copy moves the full footprint: downtime ≈ memory/link.
        assert!(plan.final_copy_mb > 100.0);
        assert!(plan.downtime > Nanos::from_millis(90));
    }

    #[test]
    fn total_sent_at_least_memory() {
        for rate in [0.0, 50.0, 500.0] {
            let p = MigrationParams {
                dirty_rate_mb_s: rate,
                ..MigrationParams::x_container_default()
            };
            let plan = plan_precopy(p);
            assert!(plan.total_sent_mb() >= p.memory_mb - 1e-9);
        }
    }

    #[test]
    fn small_footprint_migrates_faster_than_vm() {
        // The container-density argument extends to migration: a 128 MiB
        // X-Container moves an order of magnitude faster than a 512 MiB+
        // Ubuntu VM at the same dirty rate.
        let xc = plan_precopy(MigrationParams::x_container_default());
        let vm = plan_precopy(MigrationParams {
            memory_mb: 512.0,
            ..MigrationParams::x_container_default()
        });
        assert!(vm.total_time > xc.total_time * 3);
    }

    #[test]
    fn checkpoint_roundtrip_times() {
        let ckpt = plan_checkpoint(128.0, 500.0);
        assert!((ckpt.image_mb - 130.0).abs() < 1e-9);
        assert!(ckpt.save_time > Nanos::from_millis(250));
        assert_eq!(ckpt.save_time, ckpt.restore_time);
    }

    #[test]
    #[should_panic(expected = "degenerate")]
    fn zero_memory_rejected() {
        plan_precopy(MigrationParams {
            memory_mb: 0.0,
            ..MigrationParams::x_container_default()
        });
    }
}
