//! Shared-memory descriptor rings — Xen's split-driver transport.
//!
//! "Data is transferred using shared memory (asynchronous buffer
//! descriptor rings)" (§4.1). This is the real algorithm from Xen's
//! `ring.h`: a power-of-two array of slots shared by a front-end
//! (producing requests, consuming responses) and a back-end (the
//! reverse), with private/public producer-consumer indices and the
//! notification-suppression check that keeps event-channel signals off
//! the fast path.

use std::fmt;

use crate::error::XenError;

/// A request or response descriptor (payload modelled as an opaque id +
/// length, which is all the cost model needs).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Descriptor {
    /// Request/response correlation id.
    pub id: u64,
    /// Payload length in bytes.
    pub len: u32,
    /// Grant reference carrying the payload.
    pub gref: u32,
}

/// One side's view of ring occupancy.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RingStats {
    /// Requests produced by the front-end so far.
    pub requests_produced: u64,
    /// Responses produced by the back-end so far.
    pub responses_produced: u64,
    /// Notifications that were actually needed (vs suppressed).
    pub notifications_sent: u64,
    /// Notifications suppressed by the peer-is-already-working check.
    pub notifications_suppressed: u64,
}

/// The shared ring.
///
/// # Example
///
/// ```
/// use xc_xen::ring::{Descriptor, SharedRing};
///
/// let mut ring = SharedRing::new(8)?;
/// // Front-end queues a TX request; first push must notify.
/// let notify = ring.push_request(Descriptor { id: 1, len: 1448, gref: 7 })?;
/// assert!(notify);
/// // Back-end consumes it and responds.
/// let req = ring.pop_request().unwrap();
/// ring.push_response(Descriptor { id: req.id, len: 0, gref: 0 })?;
/// assert_eq!(ring.pop_response().unwrap().id, 1);
/// # Ok::<(), xc_xen::XenError>(())
/// ```
pub struct SharedRing {
    size: usize,
    requests: Vec<Option<Descriptor>>,
    responses: Vec<Option<Descriptor>>,
    /// Public producer/consumer indices (free-running, masked on use).
    req_prod: u64,
    req_cons: u64,
    rsp_prod: u64,
    rsp_cons: u64,
    /// The consumer's advertised "I have seen up to here" marks, used for
    /// notification suppression.
    req_event: u64,
    rsp_event: u64,
    stats: RingStats,
}

impl fmt::Debug for SharedRing {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("SharedRing")
            .field("size", &self.size)
            .field("req_prod", &self.req_prod)
            .field("req_cons", &self.req_cons)
            .field("rsp_prod", &self.rsp_prod)
            .field("rsp_cons", &self.rsp_cons)
            .finish()
    }
}

impl SharedRing {
    /// Creates a ring with `size` slots per direction.
    ///
    /// # Errors
    ///
    /// Rejects non-power-of-two sizes (the index masking requires it).
    pub fn new(size: usize) -> Result<Self, XenError> {
        if size == 0 || !size.is_power_of_two() {
            return Err(XenError::BadPageTableUpdate {
                reason: "ring size must be a power of two",
            });
        }
        Ok(SharedRing {
            size,
            requests: vec![None; size],
            responses: vec![None; size],
            req_prod: 0,
            req_cons: 0,
            rsp_prod: 0,
            rsp_cons: 0,
            req_event: 1,
            rsp_event: 1,
            stats: RingStats {
                requests_produced: 0,
                responses_produced: 0,
                notifications_sent: 0,
                notifications_suppressed: 0,
            },
        })
    }

    /// Slots per direction.
    pub fn size(&self) -> usize {
        self.size
    }

    /// Unconsumed requests currently queued.
    pub fn pending_requests(&self) -> u64 {
        self.req_prod - self.req_cons
    }

    /// Unconsumed responses currently queued.
    pub fn pending_responses(&self) -> u64 {
        self.rsp_prod - self.rsp_cons
    }

    /// Whether the request direction is full.
    pub fn requests_full(&self) -> bool {
        self.pending_requests() as usize >= self.size
    }

    /// Front-end: queues a request. Returns whether the back-end must be
    /// notified (false = it is already awake past our event mark — the
    /// suppression that makes rings cheap under load).
    ///
    /// # Errors
    ///
    /// Returns an error when the ring is full (caller backpressures).
    pub fn push_request(&mut self, d: Descriptor) -> Result<bool, XenError> {
        if self.requests_full() {
            return Err(XenError::BadPageTableUpdate {
                reason: "request ring full",
            });
        }
        let idx = (self.req_prod as usize) & (self.size - 1);
        self.requests[idx] = Some(d);
        self.req_prod += 1;
        self.stats.requests_produced += 1;
        let notify = self.req_prod >= self.req_event;
        if notify {
            self.stats.notifications_sent += 1;
            // Peer will re-arm by setting req_event when it sleeps.
            self.req_event = self.req_prod + self.size as u64;
        } else {
            self.stats.notifications_suppressed += 1;
        }
        Ok(notify)
    }

    /// Back-end: consumes the next request, if any.
    pub fn pop_request(&mut self) -> Option<Descriptor> {
        if self.req_cons == self.req_prod {
            // Going idle: re-arm notification for the next producer slot.
            self.req_event = self.req_prod + 1;
            return None;
        }
        let idx = (self.req_cons as usize) & (self.size - 1);
        self.req_cons += 1;
        self.requests[idx].take()
    }

    /// Back-end: queues a response. Returns whether the front-end must be
    /// notified.
    ///
    /// # Errors
    ///
    /// Returns an error when the response direction is full.
    pub fn push_response(&mut self, d: Descriptor) -> Result<bool, XenError> {
        if (self.rsp_prod - self.rsp_cons) as usize >= self.size {
            return Err(XenError::BadPageTableUpdate {
                reason: "response ring full",
            });
        }
        let idx = (self.rsp_prod as usize) & (self.size - 1);
        self.responses[idx] = Some(d);
        self.rsp_prod += 1;
        self.stats.responses_produced += 1;
        let notify = self.rsp_prod >= self.rsp_event;
        if notify {
            self.stats.notifications_sent += 1;
            self.rsp_event = self.rsp_prod + self.size as u64;
        } else {
            self.stats.notifications_suppressed += 1;
        }
        Ok(notify)
    }

    /// Front-end: consumes the next response, if any.
    pub fn pop_response(&mut self) -> Option<Descriptor> {
        if self.rsp_cons == self.rsp_prod {
            self.rsp_event = self.rsp_prod + 1;
            return None;
        }
        let idx = (self.rsp_cons as usize) & (self.size - 1);
        self.rsp_cons += 1;
        self.responses[idx].take()
    }

    /// Accumulated statistics.
    pub fn stats(&self) -> RingStats {
        self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn d(id: u64) -> Descriptor {
        Descriptor {
            id,
            len: 1448,
            gref: id as u32,
        }
    }

    #[test]
    fn fifo_both_directions() {
        let mut r = SharedRing::new(4).unwrap();
        for i in 0..3 {
            r.push_request(d(i)).unwrap();
        }
        for i in 0..3 {
            let req = r.pop_request().unwrap();
            assert_eq!(req.id, i);
            r.push_response(d(100 + i)).unwrap();
        }
        for i in 0..3 {
            assert_eq!(r.pop_response().unwrap().id, 100 + i);
        }
        assert_eq!(r.pending_requests(), 0);
        assert_eq!(r.pending_responses(), 0);
    }

    #[test]
    fn backpressure_when_full() {
        let mut r = SharedRing::new(2).unwrap();
        r.push_request(d(1)).unwrap();
        r.push_request(d(2)).unwrap();
        assert!(r.requests_full());
        assert!(r.push_request(d(3)).is_err());
        r.pop_request().unwrap();
        r.push_request(d(3)).unwrap();
    }

    #[test]
    fn wraparound_indices() {
        let mut r = SharedRing::new(2).unwrap();
        for i in 0..100 {
            r.push_request(d(i)).unwrap();
            assert_eq!(r.pop_request().unwrap().id, i);
        }
        assert_eq!(r.stats().requests_produced, 100);
    }

    #[test]
    fn notification_suppression_in_batches() {
        let mut r = SharedRing::new(8).unwrap();
        // First push notifies; the rest of the batch is suppressed while
        // the consumer hasn't re-armed.
        assert!(r.push_request(d(0)).unwrap());
        for i in 1..6 {
            assert!(!r.push_request(d(i)).unwrap(), "push {i} suppressed");
        }
        let s = r.stats();
        assert_eq!(s.notifications_sent, 1);
        assert_eq!(s.notifications_suppressed, 5);
        // Consumer drains, goes idle (re-arms), next push notifies again.
        while r.pop_request().is_some() {}
        assert!(r.pop_request().is_none());
        assert!(r.push_request(d(9)).unwrap(), "re-armed after idle");
    }

    #[test]
    fn non_power_of_two_rejected() {
        assert!(SharedRing::new(0).is_err());
        assert!(SharedRing::new(3).is_err());
        assert!(SharedRing::new(8).is_ok());
    }

    #[test]
    fn request_response_correlation() {
        // The netfront/netback pattern: ids correlate grant-carried
        // buffers across the ring.
        let mut r = SharedRing::new(4).unwrap();
        r.push_request(Descriptor {
            id: 7,
            len: 1448,
            gref: 42,
        })
        .unwrap();
        let req = r.pop_request().unwrap();
        assert_eq!(req.gref, 42);
        r.push_response(Descriptor {
            id: req.id,
            len: 1448,
            gref: req.gref,
        })
        .unwrap();
        let rsp = r.pop_response().unwrap();
        assert_eq!((rsp.id, rsp.gref), (7, 42));
    }
}
