//! Hypervisor-validated page-table management.
//!
//! In the PV architecture "all operations that require root privileges are
//! handled by Xen … such as installing new page tables" (§4.1). The model
//! enforces the central PV safety invariant — **a guest may never map one
//! of its own page-table frames writable** — and implements the address
//! space switching whose TLB behaviour differentiates PV guests from
//! X-Containers (§4.3).

use std::collections::BTreeSet;
use std::fmt;

use xc_sim::cost::CostModel;
use xc_sim::time::Nanos;

use crate::abi::XenAbi;
use crate::domain::DomainId;
use crate::error::XenError;

/// Identifier of a guest address space (one per process).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct AddressSpaceId(pub u64);

impl fmt::Display for AddressSpaceId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "as{}", self.0)
    }
}

/// Classification of an address-space switch, which determines its TLB
/// cost.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SwitchKind {
    /// No change (same space re-installed).
    None,
    /// Between processes of the same domain.
    IntraDomain,
    /// Between different domains/containers.
    CrossDomain,
}

#[derive(Debug, Clone)]
struct Space {
    domain: DomainId,
    /// Frames serving as page-table pages for this space (pinned
    /// read-only by the hypervisor).
    table_frames: BTreeSet<u64>,
    /// Frames currently mapped writable.
    writable_frames: BTreeSet<u64>,
}

/// The hypervisor's page-table subsystem.
///
/// # Example
///
/// ```
/// use xc_xen::domain::DomainId;
/// use xc_xen::pgtable::PageTables;
///
/// let mut pt = PageTables::new();
/// let space = pt.create_space(DomainId(1))?;
/// pt.pin_table_frame(space, 0x100)?;          // the space's own L1 page
/// pt.map(space, 0x200, true)?;                // normal data page: fine
/// assert!(pt.map(space, 0x100, true).is_err()); // PT page writable: rejected
/// # Ok::<(), xc_xen::XenError>(())
/// ```
#[derive(Debug, Clone, Default)]
pub struct PageTables {
    /// Indexed by `AddressSpaceId.0` — ids are allocated sequentially
    /// and never reused, so the id *is* the slot and every space lookup
    /// is one array access. Destroyed spaces leave a `None` hole.
    spaces: Vec<Option<Space>>,
    live: usize,
    /// Currently installed space per physical CPU (indexed by pcpu),
    /// with the owning domain cached alongside so switch classification
    /// does not re-derive it from the space table.
    current: Vec<Option<(AddressSpaceId, DomainId)>>,
    switches: u64,
    rejected_updates: u64,
}

impl PageTables {
    /// Creates an empty subsystem.
    pub fn new() -> Self {
        PageTables::default()
    }

    /// Creates an address space for a process of `domain`.
    ///
    /// # Errors
    ///
    /// Infallible today; returns `Result` because real implementations can
    /// exhaust PT frames.
    pub fn create_space(&mut self, domain: DomainId) -> Result<AddressSpaceId, XenError> {
        let id = AddressSpaceId(self.spaces.len() as u64);
        self.spaces.push(Some(Space {
            domain,
            table_frames: BTreeSet::new(),
            writable_frames: BTreeSet::new(),
        }));
        self.live += 1;
        Ok(id)
    }

    /// Destroys an address space.
    ///
    /// # Errors
    ///
    /// Returns [`XenError::BadPageTableUpdate`] for unknown spaces.
    pub fn destroy_space(&mut self, id: AddressSpaceId) -> Result<(), XenError> {
        match self.spaces.get_mut(id.0 as usize) {
            Some(slot @ Some(_)) => {
                *slot = None;
                self.live -= 1;
                Ok(())
            }
            _ => Err(XenError::BadPageTableUpdate {
                reason: "unknown address space",
            }),
        }
    }

    fn space_mut(&mut self, id: AddressSpaceId) -> Result<&mut Space, XenError> {
        self.spaces
            .get_mut(id.0 as usize)
            .and_then(Option::as_mut)
            .ok_or(XenError::BadPageTableUpdate {
                reason: "unknown address space",
            })
    }

    /// Registers `frame` as a page-table page of `space` (Xen "pins" it).
    /// A pinned frame must not be writable anywhere in the space.
    ///
    /// # Errors
    ///
    /// Rejects pinning a frame that is currently mapped writable.
    pub fn pin_table_frame(&mut self, space: AddressSpaceId, frame: u64) -> Result<(), XenError> {
        let s = self.space_mut(space)?;
        if s.writable_frames.contains(&frame) {
            self.rejected_updates += 1;
            return Err(XenError::BadPageTableUpdate {
                reason: "cannot pin a writable frame as a page table",
            });
        }
        s.table_frames.insert(frame);
        Ok(())
    }

    /// Validates and applies one mapping update.
    ///
    /// # Errors
    ///
    /// Rejects writable mappings of pinned page-table frames — the PV
    /// isolation invariant.
    pub fn map(
        &mut self,
        space: AddressSpaceId,
        frame: u64,
        writable: bool,
    ) -> Result<(), XenError> {
        let s = self.space_mut(space)?;
        if writable && s.table_frames.contains(&frame) {
            self.rejected_updates += 1;
            return Err(XenError::BadPageTableUpdate {
                reason: "writable mapping of a page-table frame",
            });
        }
        if writable {
            s.writable_frames.insert(frame);
        }
        Ok(())
    }

    /// Installs `space` on physical CPU `pcpu`, classifying the switch.
    ///
    /// # Errors
    ///
    /// Returns [`XenError::BadPageTableUpdate`] for unknown spaces.
    pub fn switch_to(&mut self, pcpu: u32, space: AddressSpaceId) -> Result<SwitchKind, XenError> {
        let new_domain = self
            .spaces
            .get(space.0 as usize)
            .and_then(Option::as_ref)
            .ok_or(XenError::BadPageTableUpdate {
                reason: "unknown address space",
            })?
            .domain;
        let pcpu_idx = pcpu as usize;
        if pcpu_idx >= self.current.len() {
            self.current.resize(pcpu_idx + 1, None);
        }
        let kind = match self.current[pcpu_idx] {
            Some((prev, _)) if prev == space => SwitchKind::None,
            // The cached domain stands in for re-reading the previous
            // space — unless that space has been destroyed, which is
            // always a cross-domain (full-flush) switch.
            Some((prev, prev_domain)) => {
                let prev_live = self
                    .spaces
                    .get(prev.0 as usize)
                    .is_some_and(Option::is_some);
                if prev_live && prev_domain == new_domain {
                    SwitchKind::IntraDomain
                } else {
                    SwitchKind::CrossDomain
                }
            }
            None => SwitchKind::CrossDomain,
        };
        self.current[pcpu_idx] = Some((space, new_domain));
        if kind != SwitchKind::None {
            self.switches += 1;
        }
        Ok(kind)
    }

    /// Cost of a classified switch under an ABI.
    pub fn switch_cost(kind: SwitchKind, abi: XenAbi, costs: &CostModel) -> Nanos {
        match kind {
            SwitchKind::None => Nanos::ZERO,
            SwitchKind::IntraDomain => abi.process_switch_cost(costs),
            SwitchKind::CrossDomain => abi.container_switch_cost(costs),
        }
    }

    /// Space currently installed on `pcpu`.
    pub fn current_space(&self, pcpu: u32) -> Option<AddressSpaceId> {
        self.current
            .get(pcpu as usize)
            .copied()
            .flatten()
            .map(|(space, _)| space)
    }

    /// Total non-trivial switches performed.
    pub fn switches(&self) -> u64 {
        self.switches
    }

    /// Total updates the hypervisor refused.
    pub fn rejected_updates(&self) -> u64 {
        self.rejected_updates
    }

    /// Number of live address spaces.
    pub fn space_count(&self) -> usize {
        self.live
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const DOM_A: DomainId = DomainId(1);
    const DOM_B: DomainId = DomainId(2);

    #[test]
    fn pv_invariant_no_writable_pt_frames() {
        let mut pt = PageTables::new();
        let s = pt.create_space(DOM_A).unwrap();
        pt.pin_table_frame(s, 10).unwrap();
        assert!(pt.map(s, 10, false).is_ok(), "read-only mapping allowed");
        assert!(pt.map(s, 10, true).is_err(), "writable mapping rejected");
        assert_eq!(pt.rejected_updates(), 1);
    }

    #[test]
    fn pin_of_writable_frame_rejected() {
        let mut pt = PageTables::new();
        let s = pt.create_space(DOM_A).unwrap();
        pt.map(s, 20, true).unwrap();
        assert!(pt.pin_table_frame(s, 20).is_err());
    }

    #[test]
    fn switch_classification() {
        let mut pt = PageTables::new();
        let a1 = pt.create_space(DOM_A).unwrap();
        let a2 = pt.create_space(DOM_A).unwrap();
        let b1 = pt.create_space(DOM_B).unwrap();

        assert_eq!(pt.switch_to(0, a1).unwrap(), SwitchKind::CrossDomain); // cold
        assert_eq!(pt.switch_to(0, a1).unwrap(), SwitchKind::None);
        assert_eq!(pt.switch_to(0, a2).unwrap(), SwitchKind::IntraDomain);
        assert_eq!(pt.switch_to(0, b1).unwrap(), SwitchKind::CrossDomain);
        assert_eq!(pt.switches(), 3);
        assert_eq!(pt.current_space(0), Some(b1));
    }

    #[test]
    fn per_cpu_current_tracking() {
        let mut pt = PageTables::new();
        let a = pt.create_space(DOM_A).unwrap();
        let b = pt.create_space(DOM_B).unwrap();
        pt.switch_to(0, a).unwrap();
        pt.switch_to(1, b).unwrap();
        assert_eq!(pt.current_space(0), Some(a));
        assert_eq!(pt.current_space(1), Some(b));
    }

    #[test]
    fn switch_costs_ordered() {
        let costs = CostModel::skylake_cloud();
        let none = PageTables::switch_cost(SwitchKind::None, XenAbi::XKernel, &costs);
        let intra = PageTables::switch_cost(SwitchKind::IntraDomain, XenAbi::XKernel, &costs);
        let cross = PageTables::switch_cost(SwitchKind::CrossDomain, XenAbi::XKernel, &costs);
        assert_eq!(none, Nanos::ZERO);
        assert!(intra < cross, "global bit helps only within a container");
        // Under plain PV, intra-domain switches are as bad as cross-domain.
        let pv_intra = PageTables::switch_cost(SwitchKind::IntraDomain, XenAbi::XenPv, &costs);
        let pv_cross = PageTables::switch_cost(SwitchKind::CrossDomain, XenAbi::XenPv, &costs);
        assert_eq!(pv_intra, pv_cross);
    }

    #[test]
    fn destroy_space() {
        let mut pt = PageTables::new();
        let s = pt.create_space(DOM_A).unwrap();
        assert_eq!(pt.space_count(), 1);
        pt.destroy_space(s).unwrap();
        assert_eq!(pt.space_count(), 0);
        assert!(pt.destroy_space(s).is_err());
        assert!(pt.switch_to(0, s).is_err());
    }
}
