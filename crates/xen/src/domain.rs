//! Domains and physical-machine bookkeeping.
//!
//! In the X-Container architecture every container is a domain: Domain-0
//! runs only the control toolstack (no applications, §4.1), driver domains
//! own hardware, and each X-Container/guest is an unprivileged DomU. The
//! [`Machine`] tracks physical memory and enforces the density limits that
//! shape Figure 8 (the host ran out of memory before Xen HVM reached 200
//! instances).

use std::collections::BTreeMap;
use std::fmt;

use crate::error::XenError;

/// Identifier of a domain.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct DomainId(pub u32);

impl fmt::Display for DomainId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "dom{}", self.0)
    }
}

/// The role a domain plays.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DomainKind {
    /// The control domain: runs the toolstack, no applications.
    Dom0,
    /// An unprivileged driver domain owning (virtual) hardware.
    Driver,
    /// A paravirtualized guest running an unmodified Linux kernel
    /// (Xen-Container / LightVM style).
    PvGuest,
    /// An X-Container: guest kernel converted to X-LibOS, sharing the
    /// user privilege level with its processes.
    XContainer,
    /// A hardware-virtualized guest (the Xen HVM baseline of Figure 8).
    HvmGuest,
}

impl DomainKind {
    /// Whether this domain may invoke privileged control operations.
    pub fn is_privileged(self) -> bool {
        matches!(self, DomainKind::Dom0)
    }
}

/// One domain.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Domain {
    id: DomainId,
    name: String,
    kind: DomainKind,
    memory_mb: u64,
    vcpus: u32,
}

impl Domain {
    /// Domain identifier.
    pub fn id(&self) -> DomainId {
        self.id
    }

    /// Human-readable name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Role of this domain.
    pub fn kind(&self) -> DomainKind {
        self.kind
    }

    /// Reserved memory in MiB.
    pub fn memory_mb(&self) -> u64 {
        self.memory_mb
    }

    /// Number of virtual CPUs.
    pub fn vcpus(&self) -> u32 {
        self.vcpus
    }
}

/// The physical machine: domains plus memory accounting.
///
/// # Example
///
/// ```
/// use xc_xen::domain::{DomainKind, Machine};
///
/// let mut machine = Machine::new(96 * 1024); // the paper's 96 GB server
/// let dom0 = machine.create_domain("dom0", DomainKind::Dom0, 4096, 4)?;
/// let xc = machine.create_domain("nginx-1", DomainKind::XContainer, 128, 1)?;
/// assert_ne!(dom0, xc);
/// assert_eq!(machine.domain(xc).unwrap().memory_mb(), 128);
/// # Ok::<(), xc_xen::XenError>(())
/// ```
#[derive(Debug, Clone)]
pub struct Machine {
    total_memory_mb: u64,
    used_memory_mb: u64,
    next_id: u32,
    domains: BTreeMap<DomainId, Domain>,
}

impl Machine {
    /// Creates a machine with the given physical memory.
    pub fn new(total_memory_mb: u64) -> Self {
        Machine {
            total_memory_mb,
            used_memory_mb: 0,
            next_id: 0,
            domains: BTreeMap::new(),
        }
    }

    /// Remaining unreserved memory in MiB.
    pub fn free_memory_mb(&self) -> u64 {
        self.total_memory_mb - self.used_memory_mb
    }

    /// Total physical memory in MiB.
    pub fn total_memory_mb(&self) -> u64 {
        self.total_memory_mb
    }

    /// Creates a domain, reserving its memory.
    ///
    /// # Errors
    ///
    /// Returns [`XenError::OutOfMemory`] when the reservation does not fit
    /// — this is the limit that stops Xen PV/HVM instances in Figure 8.
    pub fn create_domain(
        &mut self,
        name: &str,
        kind: DomainKind,
        memory_mb: u64,
        vcpus: u32,
    ) -> Result<DomainId, XenError> {
        if memory_mb > self.free_memory_mb() {
            return Err(XenError::OutOfMemory {
                requested_mb: memory_mb,
                available_mb: self.free_memory_mb(),
            });
        }
        let id = DomainId(self.next_id);
        self.next_id += 1;
        self.used_memory_mb += memory_mb;
        self.domains.insert(
            id,
            Domain {
                id,
                name: name.to_owned(),
                kind,
                memory_mb,
                vcpus,
            },
        );
        Ok(id)
    }

    /// Destroys a domain, releasing its memory.
    ///
    /// # Errors
    ///
    /// Returns [`XenError::NoSuchDomain`] for unknown ids.
    pub fn destroy_domain(&mut self, id: DomainId) -> Result<(), XenError> {
        match self.domains.remove(&id) {
            Some(dom) => {
                self.used_memory_mb -= dom.memory_mb();
                Ok(())
            }
            None => Err(XenError::NoSuchDomain(id)),
        }
    }

    /// Looks up a domain.
    ///
    /// # Errors
    ///
    /// Returns [`XenError::NoSuchDomain`] for unknown ids.
    pub fn domain(&self, id: DomainId) -> Result<&Domain, XenError> {
        self.domains.get(&id).ok_or(XenError::NoSuchDomain(id))
    }

    /// Iterates over all live domains in id order.
    pub fn domains(&self) -> impl Iterator<Item = &Domain> {
        self.domains.values()
    }

    /// Number of live domains.
    pub fn domain_count(&self) -> usize {
        self.domains.len()
    }

    /// Maximum additional domains of `memory_mb` MiB each that still fit.
    pub fn capacity_for(&self, memory_mb: u64) -> u64 {
        self.free_memory_mb()
            .checked_div(memory_mb)
            .unwrap_or(u64::MAX)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn create_and_destroy_tracks_memory() {
        let mut m = Machine::new(1024);
        let a = m
            .create_domain("a", DomainKind::XContainer, 128, 1)
            .unwrap();
        let b = m.create_domain("b", DomainKind::PvGuest, 512, 1).unwrap();
        assert_eq!(m.free_memory_mb(), 384);
        assert_eq!(m.domain_count(), 2);
        m.destroy_domain(a).unwrap();
        assert_eq!(m.free_memory_mb(), 512);
        assert!(m.domain(a).is_err());
        assert!(m.domain(b).is_ok());
    }

    #[test]
    fn out_of_memory_rejected() {
        let mut m = Machine::new(256);
        m.create_domain("a", DomainKind::PvGuest, 200, 1).unwrap();
        let err = m
            .create_domain("b", DomainKind::PvGuest, 100, 1)
            .unwrap_err();
        assert_eq!(
            err,
            XenError::OutOfMemory {
                requested_mb: 100,
                available_mb: 56
            }
        );
    }

    #[test]
    fn figure8_density_envelope() {
        // 96 GB host: ~190 Ubuntu VMs at 512 MiB (minus Dom0) vs >700
        // X-Containers at 128 MiB — the structural reason Figure 8's PV/HVM
        // curves stop early.
        let mut m = Machine::new(96 * 1024);
        m.create_domain("dom0", DomainKind::Dom0, 4096, 4).unwrap();
        assert!(m.capacity_for(512) < 200);
        assert!(m.capacity_for(128) > 400);
    }

    #[test]
    fn ids_are_unique_and_ordered() {
        let mut m = Machine::new(10_000);
        let ids: Vec<DomainId> = (0..10)
            .map(|i| {
                m.create_domain(&format!("d{i}"), DomainKind::XContainer, 64, 1)
                    .unwrap()
            })
            .collect();
        for w in ids.windows(2) {
            assert!(w[0] < w[1]);
        }
        let listed: Vec<DomainId> = m.domains().map(Domain::id).collect();
        assert_eq!(listed, ids);
    }

    #[test]
    fn privilege_classification() {
        assert!(DomainKind::Dom0.is_privileged());
        assert!(!DomainKind::XContainer.is_privileged());
        assert!(!DomainKind::Driver.is_privileged());
    }

    #[test]
    fn destroy_unknown_errors() {
        let mut m = Machine::new(100);
        assert!(matches!(
            m.destroy_domain(DomainId(9)),
            Err(XenError::NoSuchDomain(DomainId(9)))
        ));
    }
}
