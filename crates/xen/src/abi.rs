//! The Xen-PV vs X-Kernel ABI split.
//!
//! §4.1 explains why classic Xen PV is slow on x86-64: without segment
//! protection the guest kernel must live in a separate address space, so
//! **every syscall** is forwarded by the hypervisor as a virtual exception
//! and pays two page-table switches and TLB flushes. §4.2–4.3 describe the
//! X-Kernel changes: guest kernel mapped into every process at the same
//! privilege level (no page-table switch on syscalls), `iret`/`sysret`
//! emulated in user mode, interrupts delivered without trapping, and
//! global-bit kernel mappings that survive intra-container context
//! switches.
//!
//! [`XenAbi`] encodes exactly those differences as cost compositions over
//! the shared [`CostModel`]. Everything `xc-runtimes` reports for
//! Xen-Containers vs X-Containers flows through these four methods.

use xc_sim::cost::CostModel;
use xc_sim::time::Nanos;

/// Typical hot TLB working set of the kernel's syscall/interrupt paths,
/// in pages. Used when a flush forces a refill.
pub const KERNEL_HOT_PAGES: u64 = 24;

/// Typical hot TLB working set of a user process, in pages.
pub const USER_HOT_PAGES: u64 = 40;

/// Hypercalls a paravirtual guest issues per process context switch:
/// install the new page-table base, switch the registered kernel stack,
/// update the fs/gs segment bases, and flush queued VA updates. (Linux's
/// PV `__switch_to` really does issue a handful of hypercalls per
/// switch — the structural reason §5.4's context-switch panel favours
/// Docker.)
pub const SWITCH_HYPERCALLS: u64 = 6;

/// Which hypervisor ABI a guest runs under.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum XenAbi {
    /// Unmodified Xen paravirtualization (the Xen-Container / LightVM
    /// baseline): guest kernel isolated in its own address space.
    XenPv,
    /// The modified ABI of the paper: guest kernel (X-LibOS) shares the
    /// address space and privilege level of its processes.
    XKernel,
}

impl XenAbi {
    /// Cost of one syscall that reaches the guest kernel via the
    /// hypervisor trap path (always the case for [`XenAbi::XenPv`]; for
    /// [`XenAbi::XKernel`] this is the *unpatched* path before ABOM
    /// rewrites the site).
    ///
    /// PV pays: trap into Xen, virtual-exception bounce with a page-table
    /// switch and TLB flush into the guest kernel, then the `iret`
    /// hypercall and a second switch/flush back to the process.
    ///
    /// X-Kernel pays: trap into the X-Kernel, a direct transfer to
    /// X-LibOS in the *same* address space, and a user-mode return.
    pub fn forwarded_syscall_cost(self, costs: &CostModel) -> Nanos {
        match self {
            XenAbi::XenPv => {
                costs.syscall_trap
                    + costs.upcall_delivery
                    + costs.page_table_switch
                    + costs.tlb_flush_with_refill(KERNEL_HOT_PAGES)
                    + costs.iret_hypercall
                    + costs.page_table_switch
                    + costs.tlb_flush_with_refill(USER_HOT_PAGES)
            }
            XenAbi::XKernel => costs.syscall_trap + costs.vsyscall_dispatch + costs.iret_userspace,
        }
    }

    /// Cost of one syscall after ABOM optimization: a function call
    /// through the vsyscall table. Only meaningful under
    /// [`XenAbi::XKernel`]; PV guests cannot express it and fall back to
    /// the forwarded path.
    pub fn optimized_syscall_cost(self, costs: &CostModel) -> Nanos {
        match self {
            XenAbi::XenPv => self.forwarded_syscall_cost(costs),
            XenAbi::XKernel => costs.function_call + costs.vsyscall_dispatch,
        }
    }

    /// Cost of delivering one pending event-channel event into the guest
    /// (receive side; the sender's hypercall is charged separately).
    ///
    /// PV guests issue a hypercall to have events delivered and return
    /// via the `iret` hypercall; X-LibOS "can emulate the interrupt stack
    /// frame when it sees any pending events and jump directly into
    /// interrupt handlers without trapping into the X-Kernel" (§4.2).
    pub fn event_delivery_cost(self, costs: &CostModel) -> Nanos {
        match self {
            XenAbi::XenPv => costs.hypercall + costs.upcall_delivery + costs.iret_hypercall,
            XenAbi::XKernel => costs.vsyscall_dispatch + costs.iret_userspace,
        }
    }

    /// Cost of switching between two processes of the *same* guest.
    ///
    /// Both ABIs must install the new page-table base through the
    /// hypervisor ("process creation and context switches involve page
    /// table operations, which must be done in the X-Kernel", §5.4). The
    /// difference is the TLB: PV disables the global bit, so the whole
    /// working set refills; the X-Kernel keeps X-LibOS mappings global, so
    /// only the user share refills (§4.3).
    pub fn process_switch_cost(self, costs: &CostModel) -> Nanos {
        let base = costs.hypercall * SWITCH_HYPERCALLS + costs.page_table_switch;
        match self {
            XenAbi::XenPv => base + costs.tlb_flush_with_refill(KERNEL_HOT_PAGES + USER_HOT_PAGES),
            XenAbi::XKernel => base + costs.tlb_flush_with_refill(USER_HOT_PAGES),
        }
    }

    /// Cost of switching between vCPUs of *different* containers/guests on
    /// one physical CPU: always a full flush, global pages included
    /// ("context switches between different X-Containers do trigger a full
    /// TLB flush", §4.3).
    pub fn container_switch_cost(self, costs: &CostModel) -> Nanos {
        costs.hypercall * SWITCH_HYPERCALLS
            + costs.page_table_switch
            + costs.tlb_flush_with_refill(KERNEL_HOT_PAGES + USER_HOT_PAGES)
    }

    /// Cost of the page-table side of `fork()`: `pages` PTE updates
    /// validated by the hypervisor in batches of `batch` entries.
    pub fn fork_page_table_cost(self, costs: &CostModel, pages: u64, batch: u64) -> Nanos {
        let batch = batch.max(1);
        let full_batches = pages / batch;
        let remainder = pages % batch;
        let mut total = costs.mmu_update_batch(batch) * full_batches;
        if remainder > 0 {
            total += costs.mmu_update_batch(remainder);
        }
        total
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn costs() -> CostModel {
        CostModel::skylake_cloud()
    }

    #[test]
    fn pv_syscall_forwarding_is_expensive() {
        let c = costs();
        let pv = XenAbi::XenPv.forwarded_syscall_cost(&c);
        let xk = XenAbi::XKernel.forwarded_syscall_cost(&c);
        // The PV bounce is the reason §4.1 gives for 64-bit PV being slow:
        // it should be several times the X-Kernel bounce.
        assert!(pv > xk * 4, "pv={pv} xk={xk}");
        // And the PV bounce exceeds a native trap by far.
        assert!(pv > c.syscall_trap * 5);
    }

    #[test]
    fn optimized_syscall_beats_everything() {
        let c = costs();
        let opt = XenAbi::XKernel.optimized_syscall_cost(&c);
        assert!(opt < XenAbi::XKernel.forwarded_syscall_cost(&c));
        assert!(opt < c.syscall_trap);
        // PV cannot optimize.
        assert_eq!(
            XenAbi::XenPv.optimized_syscall_cost(&c),
            XenAbi::XenPv.forwarded_syscall_cost(&c)
        );
    }

    #[test]
    fn global_bit_speeds_up_process_switches() {
        let c = costs();
        let pv = XenAbi::XenPv.process_switch_cost(&c);
        let xk = XenAbi::XKernel.process_switch_cost(&c);
        assert!(xk < pv);
        // The saving is exactly the kernel working-set refill.
        assert_eq!(pv - xk, c.tlb_refill_per_page * KERNEL_HOT_PAGES);
    }

    #[test]
    fn container_switch_flushes_everything() {
        let c = costs();
        // Cross-container switches lose the global-bit advantage.
        assert!(
            XenAbi::XKernel.container_switch_cost(&c) > XenAbi::XKernel.process_switch_cost(&c)
        );
        assert_eq!(
            XenAbi::XKernel.container_switch_cost(&c),
            XenAbi::XenPv.container_switch_cost(&c)
        );
    }

    #[test]
    fn event_delivery_avoids_hypercalls_on_xkernel() {
        let c = costs();
        let pv = XenAbi::XenPv.event_delivery_cost(&c);
        let xk = XenAbi::XKernel.event_delivery_cost(&c);
        assert!(xk < pv / 5, "pv={pv} xk={xk}");
    }

    #[test]
    fn fork_batching_amortizes() {
        let c = costs();
        let abi = XenAbi::XKernel;
        let batched = abi.fork_page_table_cost(&c, 1024, 512);
        let unbatched = abi.fork_page_table_cost(&c, 1024, 1);
        assert!(batched < unbatched);
        // Exact composition: two full batches.
        assert_eq!(batched, c.mmu_update_batch(512) * 2);
        // Remainder handling.
        assert_eq!(
            abi.fork_page_table_cost(&c, 513, 512),
            c.mmu_update_batch(512) + c.mmu_update_batch(1)
        );
        // Zero pages cost nothing.
        assert_eq!(abi.fork_page_table_cost(&c, 0, 512), Nanos::ZERO);
    }
}
