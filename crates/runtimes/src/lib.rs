//! # xc-runtimes — container platform compositions
//!
//! The paper's evaluation compares ten cloud configurations (§5.1) plus
//! two LibOS baselines (§5.5):
//!
//! | Platform | Isolation | Syscall path |
//! |---|---|---|
//! | Docker (±patch) | shared host kernel + seccomp | native trap |
//! | Xen-Container (±patch) | PV VM per container | hypervisor-forwarded |
//! | X-Container (±patch) | X-Kernel per container | ABOM function call |
//! | gVisor (±patch) | user-space kernel | ptrace interception |
//! | Clear Container (±patch) | nested HVM VM | native trap in guest |
//! | Graphene | host kernel | in-process libOS + IPC |
//! | Unikernel (Rumprun) | VM per app | function call |
//!
//! [`platform::Platform`] composes each from the shared substrate costs
//! (`xc-sim`, `xc-xen`, `xc-libos`), so performance differences in the
//! figure harnesses emerge from architecture, not per-figure constants.
//! [`cloud::CloudEnv`] captures the EC2 / GCE / local-cluster testbeds,
//! and [`container`] the container lifecycle (§4.5's spawning costs).
//!
//! # Example
//!
//! ```
//! use xc_runtimes::cloud::CloudEnv;
//! use xc_runtimes::platform::Platform;
//! use xc_sim::cost::CostModel;
//!
//! let costs = CostModel::skylake_cloud();
//! let docker = Platform::docker(CloudEnv::AmazonEc2, true);
//! let xc = Platform::x_container(CloudEnv::AmazonEc2, true);
//! // The headline: X-Container syscalls are an order of magnitude faster.
//! assert!(docker.syscall_cost(&costs) > xc.syscall_cost(&costs) * 10);
//! // Clear Containers need nested hardware virtualization — not on EC2.
//! assert!(Platform::clear_container(CloudEnv::AmazonEc2, true).is_none());
//! assert!(Platform::clear_container(CloudEnv::GoogleGce, true).is_some());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cloud;
pub mod container;
pub mod platform;
pub mod security;
pub mod wrapper;

pub use cloud::CloudEnv;
pub use container::{Container, SpawnMethod};
pub use platform::{Platform, PlatformKind};
