//! Platform compositions.
//!
//! A [`Platform`] bundles everything a workload needs to price its
//! operations on one of the paper's configurations: syscall dispatch,
//! interrupt entry, context switches, fork/exec, and the network path.
//! Each constructor documents how the architecture maps onto substrate
//! primitives; none of them hard-codes a benchmark result.

use std::fmt;

use xc_libos::backend::Backend;
use xc_libos::config::KernelConfig;
use xc_libos::net::{NetPath, NetStack};
use xc_sim::cost::CostModel;
use xc_sim::time::Nanos;

use crate::cloud::CloudEnv;

/// The platform families of §5.1 and §5.5.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PlatformKind {
    /// Native Docker on the host kernel.
    Docker,
    /// Container in an unmodified Xen PV instance (LightVM-style).
    XenContainer,
    /// The paper's system.
    XContainer,
    /// Google gVisor (ptrace platform).
    Gvisor,
    /// Intel Clear Containers under nested KVM.
    ClearContainer,
    /// Graphene LibOS on Linux.
    Graphene,
    /// Rumprun unikernel on Xen.
    Unikernel,
}

impl PlatformKind {
    /// Display name as used in the figures.
    pub fn label(self) -> &'static str {
        match self {
            PlatformKind::Docker => "Docker",
            PlatformKind::XenContainer => "Xen-Container",
            PlatformKind::XContainer => "X-Container",
            PlatformKind::Gvisor => "gVisor",
            PlatformKind::ClearContainer => "Clear-Container",
            PlatformKind::Graphene => "Graphene",
            PlatformKind::Unikernel => "Unikernel",
        }
    }
}

/// A fully configured platform.
#[derive(Debug, Clone)]
pub struct Platform {
    kind: PlatformKind,
    cloud: CloudEnv,
    /// Whether the *hardware-facing* kernel (host kernel or hypervisor)
    /// carries the Meltdown patch.
    patched: bool,
    backend: Backend,
    guest_config: KernelConfig,
    /// [`Platform::guest_config`] with `kpti` forced to the host patch
    /// state — precomputed so the syscall-cost hot path never clones a
    /// `KernelConfig` (see [`Platform::trap_config`]).
    trap_config: KernelConfig,
    abom_enabled: bool,
}

impl Platform {
    /// Assembles a platform, precomputing the trap-path kernel
    /// configuration once so per-syscall cost queries stay allocation-free.
    fn assemble(
        kind: PlatformKind,
        cloud: CloudEnv,
        patched: bool,
        backend: Backend,
        guest_config: KernelConfig,
        abom_enabled: bool,
    ) -> Platform {
        let mut trap_config = guest_config.clone();
        trap_config.kpti = patched;
        Platform {
            kind,
            cloud,
            patched,
            backend,
            guest_config,
            trap_config,
            abom_enabled,
        }
    }

    /// Native Docker: shared host kernel, default seccomp profile,
    /// bridge + iptables networking.
    pub fn docker(cloud: CloudEnv, patched: bool) -> Platform {
        let guest = if patched {
            KernelConfig::docker_default()
        } else {
            KernelConfig::docker_unpatched()
        };
        Platform::assemble(
            PlatformKind::Docker,
            cloud,
            patched,
            Backend::Native,
            guest,
            false,
        )
    }

    /// Xen-Container: "exactly the same software stack … as X-Containers.
    /// The only difference is the underlying hypervisor (unmodified Xen vs
    /// X-Kernel) and guest kernel (unmodified Linux vs X-LibOS)" (§5.1).
    pub fn xen_container(cloud: CloudEnv, patched: bool) -> Platform {
        let mut cfg = KernelConfig::pv_guest_default();
        cfg.kpti = patched;
        Platform::assemble(
            PlatformKind::XenContainer,
            cloud,
            patched,
            Backend::XenPv,
            cfg,
            false,
        )
    }

    /// X-Container: X-LibOS on the X-Kernel with ABOM enabled.
    pub fn x_container(cloud: CloudEnv, patched: bool) -> Platform {
        Platform::assemble(
            PlatformKind::XContainer,
            cloud,
            patched,
            Backend::XKernel,
            KernelConfig::xlibos_default(),
            true,
        )
    }

    /// X-Container with ABOM disabled — the §5.2 ablation baseline.
    pub fn x_container_no_abom(cloud: CloudEnv, patched: bool) -> Platform {
        Platform {
            abom_enabled: false,
            ..Platform::x_container(cloud, patched)
        }
    }

    /// gVisor with the ptrace platform (as deployed in the paper's era).
    pub fn gvisor(cloud: CloudEnv, patched: bool) -> Platform {
        let guest = if patched {
            KernelConfig::docker_default()
        } else {
            KernelConfig::docker_unpatched()
        };
        Platform::assemble(
            PlatformKind::Gvisor,
            cloud,
            patched,
            Backend::Native,
            guest,
            false,
        )
    }

    /// Clear Containers under nested KVM. Returns `None` where nested
    /// hardware virtualization is unavailable (Amazon EC2, §1).
    ///
    /// Per §5.1, only the host kernel is ever patched; the guest kernel in
    /// the nested VM stays unpatched in both configurations.
    pub fn clear_container(cloud: CloudEnv, patched: bool) -> Option<Platform> {
        cloud.nested_virt_available().then(|| {
            Platform::assemble(
                PlatformKind::ClearContainer,
                cloud,
                patched,
                Backend::Native,
                KernelConfig::docker_unpatched(),
                false,
            )
        })
    }

    /// Graphene on Linux, compiled without the security isolation module
    /// (§5.5).
    pub fn graphene(cloud: CloudEnv) -> Platform {
        Platform::assemble(
            PlatformKind::Graphene,
            cloud,
            false,
            Backend::Native,
            KernelConfig::docker_unpatched(),
            false,
        )
    }

    /// Rumprun unikernel on Xen (§5.5).
    pub fn unikernel(cloud: CloudEnv) -> Platform {
        Platform::assemble(
            PlatformKind::Unikernel,
            cloud,
            false,
            Backend::XKernel, // same-privilege LibOS structure
            KernelConfig::xlibos_uniprocessor(),
            true, // statically linked: calls, not traps
        )
    }

    /// The ten §5.1 cloud configurations for `cloud`, in figure order
    /// (patched first, then `-unpatched`). Clear Containers appear only
    /// where nested virtualization exists.
    pub fn cloud_configurations(cloud: CloudEnv) -> Vec<Platform> {
        let mut out = Vec::new();
        for patched in [true, false] {
            out.push(Platform::docker(cloud, patched));
            out.push(Platform::xen_container(cloud, patched));
            out.push(Platform::x_container(cloud, patched));
            out.push(Platform::gvisor(cloud, patched));
            if let Some(cc) = Platform::clear_container(cloud, patched) {
                out.push(cc);
            }
        }
        out
    }

    /// Platform family.
    pub fn kind(&self) -> PlatformKind {
        self.kind
    }

    /// The environment this instance is configured for.
    pub fn cloud(&self) -> CloudEnv {
        self.cloud
    }

    /// Whether the hardware-facing kernel carries the Meltdown patch.
    pub fn is_patched(&self) -> bool {
        self.patched
    }

    /// Figure-style name, e.g. `X-Container-unpatched`.
    pub fn name(&self) -> String {
        if self.patched || matches!(self.kind, PlatformKind::Graphene | PlatformKind::Unikernel) {
            self.kind.label().to_owned()
        } else {
            format!("{}-unpatched", self.kind.label())
        }
    }

    /// The guest kernel configuration.
    pub fn guest_config(&self) -> &KernelConfig {
        &self.guest_config
    }

    /// The kernel deployment backend.
    pub fn backend(&self) -> Backend {
        self.backend
    }

    /// Whether ABOM rewrites this platform's syscalls.
    pub fn abom_enabled(&self) -> bool {
        self.abom_enabled
    }

    // ---- capability flags (§2.3, §6) ---------------------------------

    /// Full binary compatibility with Linux applications.
    pub fn binary_compatible(&self) -> bool {
        !matches!(self.kind, PlatformKind::Unikernel | PlatformKind::Graphene)
    }

    /// Can run multiple processes in one container.
    pub fn supports_multiprocess(&self) -> bool {
        !matches!(self.kind, PlatformKind::Unikernel)
    }

    /// Can run processes *concurrently* on multiple cores (§2.3: gVisor's
    /// ptrace platform serializes; unikernels are single-vCPU).
    pub fn supports_multicore(&self) -> bool {
        !matches!(self.kind, PlatformKind::Gvisor | PlatformKind::Unikernel)
    }

    // ---- cost compositions --------------------------------------------

    /// Multiplier on network protocol work relative to a tuned Linux
    /// stack. gVisor's TCP stack runs in the Go sentry at roughly twice
    /// the per-segment cost; Graphene's PAL adds marshalling; Rumprun's
    /// NetBSD stack is close to Linux for plain packet pushing (its
    /// Figure 6a NGINX numbers match X-Containers).
    pub fn net_work_multiplier(&self) -> f64 {
        match self.kind {
            PlatformKind::Gvisor => 2.2,
            PlatformKind::Graphene => 1.30,
            PlatformKind::Unikernel => 1.05,
            _ => 1.0,
        }
    }

    /// Multiplier on non-network kernel work (file I/O, buffer
    /// management, IPC internals). This is where Rumprun falls behind —
    /// "the Linux kernel outperforms the Rumprun kernel for this
    /// benchmark" is the paper's explanation for the MySQL gap in
    /// Figure 6c (§5.5).
    pub fn kernel_ops_multiplier(&self) -> f64 {
        match self.kind {
            PlatformKind::Gvisor => 2.2,
            PlatformKind::Graphene => 1.30,
            PlatformKind::Unikernel => 3.0,
            _ => 1.0,
        }
    }

    /// Dispatch cost of one (steady-state) syscall.
    pub fn syscall_cost(&self, costs: &CostModel) -> Nanos {
        match self.kind {
            PlatformKind::Docker => {
                self.backend.syscall_cost(costs, &self.guest_config, false) + costs.seccomp_filter
            }
            PlatformKind::XenContainer => {
                self.backend.syscall_cost(costs, &self.guest_config, false)
            }
            PlatformKind::XContainer => {
                self.backend
                    .syscall_cost(costs, self.trap_config(), self.abom_enabled)
            }
            PlatformKind::Gvisor => {
                // Entry + exit ptrace stops, the sentry's own work, and
                // the host syscalls the sentry issues on the app's behalf.
                let host = Backend::Native.syscall_cost(costs, &self.guest_config, false)
                    + costs.seccomp_filter;
                costs.ptrace_stop * 2 + costs.vsyscall_dispatch * 40 + host
            }
            PlatformKind::ClearContainer => {
                // Native trap inside the nested guest; syscalls do not
                // VM-exit. Guest kernel unpatched and slimmed.
                Backend::Native.syscall_cost(costs, &self.guest_config, false)
            }
            PlatformKind::Graphene => {
                // The in-process libOS fields the call, but I/O-class
                // syscalls (the ones benchmarks are made of) drop through
                // the PAL to a real host syscall with marshalling on both
                // sides.
                let pal_marshalling = costs.vsyscall_dispatch * 60;
                costs.vsyscall_dispatch * 6
                    + costs.function_call
                    + pal_marshalling
                    + Backend::Native.syscall_cost(costs, &self.guest_config, false)
            }
            PlatformKind::Unikernel => {
                Backend::XKernel.syscall_cost(costs, &self.guest_config, true)
            }
        }
    }

    /// Dispatch cost of a syscall at a site ABOM has *not* (yet) patched.
    /// Equals [`Platform::syscall_cost`] everywhere except X-Containers.
    pub fn syscall_cost_trapped(&self, costs: &CostModel) -> Nanos {
        match self.kind {
            PlatformKind::XContainer | PlatformKind::Unikernel => {
                self.backend.syscall_cost(costs, self.trap_config(), false)
            }
            _ => self.syscall_cost(costs),
        }
    }

    /// The trap path crosses into the X-Kernel, which carries the patch
    /// when `patched` (the §5.1 port of KPTI to Xen). Precomputed at
    /// construction: `syscall_cost` sits on every simulated request path.
    #[inline]
    fn trap_config(&self) -> &KernelConfig {
        &self.trap_config
    }

    /// Cost of taking one device/network event batch into the kernel.
    pub fn event_entry_cost(&self, costs: &CostModel) -> Nanos {
        let base = self.backend.event_entry_cost(costs, &self.guest_config);
        match self.kind {
            PlatformKind::Gvisor => {
                // Packets surface in the host, then are injected into the
                // sentry's netstack.
                base + costs.ptrace_stop
            }
            PlatformKind::ClearContainer => {
                // Virtio interrupts VM-exit, and under nesting each exit
                // bounces through L0 and L1.
                base + costs.vmexit + costs.nested_vmexit_extra
            }
            _ => base,
        }
    }

    /// Context switch between processes, with `runnable` tasks queued.
    pub fn context_switch_cost(&self, costs: &CostModel, runnable: u64) -> Nanos {
        let base = self.backend.context_switch_cost(costs, runnable);
        match self.kind {
            // The sentry intercepts the switch and re-dispatches.
            PlatformKind::Gvisor => base + costs.ptrace_stop * 2,
            _ => base,
        }
    }

    /// `fork()` of a process with `resident_pages`.
    pub fn fork_cost(&self, costs: &CostModel, resident_pages: u64) -> Nanos {
        let base = self.backend.fork_cost(costs, resident_pages);
        match self.kind {
            // gVisor forks inside the sentry: every page table operation
            // is emulated via host calls, and the new tracee must be
            // attached and resumed through additional ptrace round trips.
            PlatformKind::Gvisor => base * 5 + costs.ptrace_stop * 8,
            _ => base,
        }
    }

    /// `execve()` of an image.
    pub fn exec_cost(&self, costs: &CostModel, image_pages: u64, loader_syscalls: u64) -> Nanos {
        match self.kind {
            PlatformKind::Gvisor => {
                self.backend
                    .exec_cost(costs, &self.guest_config, image_pages, 0, false)
                    + self.syscall_cost(costs) * loader_syscalls
            }
            _ => {
                let dispatch = self.syscall_cost(costs);
                self.backend
                    .exec_cost(costs, &self.guest_config, image_pages, 0, false)
                    + dispatch * loader_syscalls
            }
        }
    }

    /// The network stack endpoint for servers on this platform.
    pub fn net_stack(&self, costs: &CostModel) -> NetStack {
        let path = match self.kind {
            PlatformKind::Docker
            | PlatformKind::Gvisor
            | PlatformKind::Graphene
            | PlatformKind::ClearContainer => NetPath::NativeBridge { iptables_rules: 1 },
            PlatformKind::XenContainer | PlatformKind::XContainer => NetPath::SplitDriver {
                blanket: self.cloud.blanket(),
                iptables_rules: 1,
            },
            PlatformKind::Unikernel => NetPath::SplitDriver {
                blanket: self.cloud.blanket(),
                iptables_rules: 0,
            },
        };
        let stack = NetStack::new(self.backend, self.guest_config.clone(), path);
        // Interposition layers tax every kernel entry on the data path.
        match self.kind {
            PlatformKind::ClearContainer => {
                stack.with_entry_surcharge(costs.vmexit + costs.nested_vmexit_extra)
            }
            PlatformKind::Gvisor => stack.with_entry_surcharge(costs.ptrace_stop),
            _ => stack,
        }
    }

    /// Graphene's multi-process coordination tax: "processes use IPC
    /// calls to maintain the consistency of multiple LibOS instances, at a
    /// significant performance penalty" (§3.3). Zero elsewhere.
    pub fn multiprocess_ipc_cost(&self, costs: &CostModel) -> Nanos {
        match self.kind {
            PlatformKind::Graphene => {
                // A round trip through a host pipe plus marshalling.
                (costs.pipe_op + costs.context_switch_base) * 2 + costs.copy_bytes(4096)
            }
            _ => Nanos::ZERO,
        }
    }

    /// Applies the environment's CPU speed factor to a cost.
    pub fn environment_adjust(&self, n: Nanos) -> Nanos {
        n.scale(self.cloud.speed_factor())
    }
}

impl fmt::Display for Platform {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} on {}", self.name(), self.cloud.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn c() -> CostModel {
        CostModel::skylake_cloud()
    }

    #[test]
    fn ten_configurations_on_gce_eight_on_ec2() {
        assert_eq!(
            Platform::cloud_configurations(CloudEnv::GoogleGce).len(),
            10
        );
        assert_eq!(Platform::cloud_configurations(CloudEnv::AmazonEc2).len(), 8);
    }

    #[test]
    fn figure4_syscall_ordering() {
        let costs = c();
        let cloud = CloudEnv::GoogleGce;
        let sc = |p: &Platform| p.syscall_cost(&costs).as_nanos();

        let docker = Platform::docker(cloud, true);
        let docker_un = Platform::docker(cloud, false);
        let xen = Platform::xen_container(cloud, true);
        let xc = Platform::x_container(cloud, true);
        let gv = Platform::gvisor(cloud, true);
        let cc = Platform::clear_container(cloud, true).unwrap();

        // X fastest, then Clear, then Docker-unpatched, Docker, Xen, gVisor.
        assert!(sc(&xc) < sc(&cc));
        assert!(sc(&cc) < sc(&docker_un));
        assert!(sc(&docker_un) < sc(&docker));
        assert!(sc(&docker) < sc(&xen));
        assert!(sc(&xen) < sc(&gv));

        // Magnitudes: X ≈ 25–35× Docker-patched; gVisor ≈ 7–9% of Docker.
        let x_ratio = sc(&docker) as f64 / sc(&xc) as f64;
        assert!((15.0..60.0).contains(&x_ratio), "x_ratio {x_ratio}");
        let gv_ratio = sc(&docker) as f64 / sc(&gv) as f64;
        assert!((0.04..0.15).contains(&gv_ratio), "gv_ratio {gv_ratio}");
    }

    #[test]
    fn meltdown_patch_leaves_x_and_clear_alone() {
        let costs = c();
        let cloud = CloudEnv::GoogleGce;
        assert_eq!(
            Platform::x_container(cloud, true).syscall_cost(&costs),
            Platform::x_container(cloud, false).syscall_cost(&costs)
        );
        assert_eq!(
            Platform::clear_container(cloud, true)
                .unwrap()
                .syscall_cost(&costs),
            Platform::clear_container(cloud, false)
                .unwrap()
                .syscall_cost(&costs)
        );
        // …but hits Docker and Xen-Containers.
        assert!(
            Platform::docker(cloud, true).syscall_cost(&costs)
                > Platform::docker(cloud, false).syscall_cost(&costs)
        );
        assert!(
            Platform::xen_container(cloud, true).syscall_cost(&costs)
                > Platform::xen_container(cloud, false).syscall_cost(&costs)
        );
    }

    #[test]
    fn abom_ablation_reverts_to_trap_path() {
        let costs = c();
        let on = Platform::x_container(CloudEnv::AmazonEc2, true);
        let off = Platform::x_container_no_abom(CloudEnv::AmazonEc2, true);
        assert!(off.syscall_cost(&costs) > on.syscall_cost(&costs) * 5);
        assert_eq!(off.syscall_cost(&costs), on.syscall_cost_trapped(&costs));
    }

    #[test]
    fn capability_matrix() {
        let cloud = CloudEnv::LocalCluster;
        let xc = Platform::x_container(cloud, true);
        assert!(xc.binary_compatible() && xc.supports_multiprocess() && xc.supports_multicore());
        let u = Platform::unikernel(cloud);
        assert!(!u.binary_compatible() && !u.supports_multiprocess() && !u.supports_multicore());
        let g = Platform::graphene(cloud);
        assert!(!g.binary_compatible() && g.supports_multiprocess());
        let gv = Platform::gvisor(cloud, true);
        assert!(gv.supports_multiprocess() && !gv.supports_multicore());
    }

    #[test]
    fn x_container_loses_context_switch_and_fork() {
        // §5.4: "X-Containers has noticeable overheads compared to Docker
        // in process creation and context switching".
        let costs = c();
        let cloud = CloudEnv::AmazonEc2;
        let docker = Platform::docker(cloud, true);
        let xc = Platform::x_container(cloud, true);
        assert!(xc.context_switch_cost(&costs, 4) > docker.context_switch_cost(&costs, 4));
        assert!(xc.fork_cost(&costs, 2_000) > docker.fork_cost(&costs, 2_000));
        // But wins exec, where loader syscalls dominate.
        assert!(xc.exec_cost(&costs, 600, 150) < docker.exec_cost(&costs, 600, 150));
    }

    #[test]
    fn clear_container_pays_nested_io() {
        let costs = c();
        let cc = Platform::clear_container(CloudEnv::GoogleGce, true).unwrap();
        let docker = Platform::docker(CloudEnv::GoogleGce, true);
        assert!(cc.event_entry_cost(&costs) > docker.event_entry_cost(&costs) * 5);
    }

    #[test]
    fn graphene_pays_ipc_for_multiprocess() {
        let costs = c();
        let g = Platform::graphene(CloudEnv::LocalCluster);
        assert!(g.multiprocess_ipc_cost(&costs) > Nanos::from_micros(2));
        let xc = Platform::x_container(CloudEnv::LocalCluster, true);
        assert_eq!(xc.multiprocess_ipc_cost(&costs), Nanos::ZERO);
    }

    #[test]
    fn names_follow_figures() {
        assert_eq!(Platform::docker(CloudEnv::AmazonEc2, true).name(), "Docker");
        assert_eq!(
            Platform::docker(CloudEnv::AmazonEc2, false).name(),
            "Docker-unpatched"
        );
        assert_eq!(
            Platform::x_container(CloudEnv::GoogleGce, false).to_string(),
            "X-Container-unpatched on Google"
        );
    }
}
