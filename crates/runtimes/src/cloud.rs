//! Cloud environments — the paper's three testbeds (§5.1, §5.5).

use xc_xen::blanket::XenBlanket;

/// Where the experiment runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CloudEnv {
    /// Amazon EC2 c4.2xlarge, dedicated host (4 cores / 8 threads, 15 GB).
    /// No nested hardware virtualization.
    AmazonEc2,
    /// Google Compute Engine custom instance (4 cores / 8 threads, 16 GB).
    /// Nested hardware virtualization available (at a cost).
    GoogleGce,
    /// The local Dell PowerEdge R720 cluster (2× E5-2690, 16 cores,
    /// 96 GB) used for §5.5–5.7. Bare metal: no Blanket layer.
    LocalCluster,
}

impl CloudEnv {
    /// All environments, in paper order.
    pub const ALL: [CloudEnv; 3] = [
        CloudEnv::AmazonEc2,
        CloudEnv::GoogleGce,
        CloudEnv::LocalCluster,
    ];

    /// Display name matching the figures.
    pub fn name(self) -> &'static str {
        match self {
            CloudEnv::AmazonEc2 => "Amazon",
            CloudEnv::GoogleGce => "Google",
            CloudEnv::LocalCluster => "Local",
        }
    }

    /// Whether nested hardware virtualization is available (Clear
    /// Containers require it; EC2 lacks it, §1).
    pub fn nested_virt_available(self) -> bool {
        matches!(self, CloudEnv::GoogleGce)
    }

    /// Whether the X-Container stack needs the Xen-Blanket shim here.
    pub fn blanket(self) -> XenBlanket {
        match self {
            CloudEnv::AmazonEc2 | CloudEnv::GoogleGce => XenBlanket::cloud(),
            CloudEnv::LocalCluster => XenBlanket::bare_metal(),
        }
    }

    /// Relative CPU speed factor versus the baseline Skylake cost model
    /// (small: same hardware class; GCE's custom instances clocked a
    /// touch lower in the paper's era).
    pub fn speed_factor(self) -> f64 {
        match self {
            CloudEnv::AmazonEc2 => 1.0,
            CloudEnv::GoogleGce => 1.08,
            CloudEnv::LocalCluster => 0.97,
        }
    }

    /// Physical cores visible to one experiment host.
    pub fn cores(self) -> u32 {
        match self {
            CloudEnv::AmazonEc2 | CloudEnv::GoogleGce => 8,
            CloudEnv::LocalCluster => 16,
        }
    }

    /// Host memory in MiB.
    pub fn memory_mb(self) -> u64 {
        match self {
            CloudEnv::AmazonEc2 => 15 * 1024,
            CloudEnv::GoogleGce => 16 * 1024,
            CloudEnv::LocalCluster => 96 * 1024,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nested_virt_matrix() {
        assert!(!CloudEnv::AmazonEc2.nested_virt_available());
        assert!(CloudEnv::GoogleGce.nested_virt_available());
        assert!(!CloudEnv::LocalCluster.nested_virt_available());
    }

    #[test]
    fn blanket_only_in_clouds() {
        assert!(CloudEnv::AmazonEc2.blanket().nested);
        assert!(CloudEnv::GoogleGce.blanket().nested);
        assert!(!CloudEnv::LocalCluster.blanket().nested);
    }

    #[test]
    fn testbed_shapes() {
        assert_eq!(CloudEnv::LocalCluster.cores(), 16);
        assert_eq!(CloudEnv::LocalCluster.memory_mb(), 96 * 1024);
        assert_eq!(CloudEnv::AmazonEc2.name(), "Amazon");
        for env in CloudEnv::ALL {
            assert!(env.speed_factor() > 0.5 && env.speed_factor() < 2.0);
        }
    }
}
