//! The Docker Wrapper — §4.5's bridge from Docker images to X-Containers.
//!
//! "To support Docker containers, we implemented a Docker Wrapper. To
//! bootstrap an X-Container, the Docker Wrapper loads an X-LibOS with a
//! Docker image and a special bootloader. The bootloader spawns the
//! processes of the container directly without running any unnecessary
//! services." This module models that pipeline: an OCI-ish image
//! description turns into an ordered boot plan whose step costs add up
//! to the §4.5 numbers, and whose process spawning drives the real
//! process table through `xc-libos`.

use xc_libos::backend::Backend;
use xc_libos::config::KernelConfig;
use xc_libos::kernel::{GuestKernel, KernelError};
use xc_sim::cost::CostModel;
use xc_sim::time::Nanos;

use crate::container::SpawnMethod;

/// A minimal Docker/OCI image description (what the wrapper consumes).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DockerImage {
    /// Image reference, e.g. `nginx:1.13`.
    pub reference: String,
    /// Entrypoint process name.
    pub entrypoint: String,
    /// Additional worker processes the entrypoint forks at startup.
    pub workers: u32,
    /// Resident pages of the entrypoint once running.
    pub entry_pages: u64,
    /// Environment variables (count only affects boot marginally).
    pub env: Vec<(String, String)>,
}

impl DockerImage {
    /// The `nginx:1.13` image of §5.3 with one worker.
    pub fn nginx() -> Self {
        DockerImage {
            reference: "nginx:1.13".to_owned(),
            entrypoint: "nginx-master".to_owned(),
            workers: 1,
            entry_pages: 1_500,
            env: vec![("NGINX_VERSION".to_owned(), "1.13".to_owned())],
        }
    }

    /// A bare `bash` image (the §4.5 180 ms measurement target).
    pub fn bash() -> Self {
        DockerImage {
            reference: "bash:4".to_owned(),
            entrypoint: "bash".to_owned(),
            workers: 0,
            entry_pages: 400,
            env: Vec::new(),
        }
    }
}

/// One step of the boot plan.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BootStep {
    /// What happens.
    pub description: String,
    /// How long it takes.
    pub duration: Nanos,
}

/// The full plan produced by the wrapper.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BootPlan {
    /// Ordered steps.
    pub steps: Vec<BootStep>,
}

impl BootPlan {
    /// Total instantiation latency.
    pub fn total(&self) -> Nanos {
        self.steps.iter().map(|s| s.duration).sum()
    }
}

/// Builds the boot plan for `image` under a toolstack choice.
///
/// The fixed milestones come straight from §4.5: the toolstack dominates
/// (`xl` ≈ 2.8 s vs LightVM's 4 ms), the X-LibOS boots in well under
/// 180 ms, and the bootloader spawns container processes directly —
/// no init system, no getty, no services.
pub fn boot_plan(image: &DockerImage, toolstack: SpawnMethod) -> BootPlan {
    let toolstack_time = match toolstack {
        SpawnMethod::XlToolstack => Nanos::from_millis(2_820),
        SpawnMethod::LightVmToolstack => Nanos::from_millis(4),
        // The wrapper only drives Xen toolstacks; other methods take their
        // whole budget as one opaque step.
        other => {
            return BootPlan {
                steps: vec![BootStep {
                    description: format!("opaque spawn via {other}"),
                    duration: other.spawn_time(),
                }],
            }
        }
    };
    let image_attach = Nanos::from_millis(35); // device-mapper snapshot attach
    let libos_boot = Nanos::from_millis(120); // X-LibOS bring-up
    let bootloader = Nanos::from_millis(20)
        + Nanos::from_micros(50) * u64::from(image.workers)
        + Nanos::from_micros(5) * image.env.len() as u64;

    BootPlan {
        steps: vec![
            BootStep {
                description: format!("toolstack: create domain for {}", image.reference),
                duration: toolstack_time,
            },
            BootStep {
                description: "attach image via device-mapper".to_owned(),
                duration: image_attach,
            },
            BootStep {
                description: "boot X-LibOS".to_owned(),
                duration: libos_boot,
            },
            BootStep {
                description: format!(
                    "bootloader: spawn {} (+{} workers), no init services",
                    image.entrypoint, image.workers
                ),
                duration: bootloader,
            },
        ],
    }
}

/// Executes the process-spawning phase against a real [`GuestKernel`]:
/// spawns the entrypoint and forks its workers. Returns the kernel with
/// the container's process tree in place.
///
/// # Errors
///
/// Propagates kernel failures.
pub fn bootstrap_processes(
    image: &DockerImage,
    costs: &CostModel,
) -> Result<GuestKernel, KernelError> {
    let mut kernel = GuestKernel::new(Backend::XKernel, KernelConfig::xlibos_default());
    let entry = kernel.spawn(&image.entrypoint, image.entry_pages, costs)?;
    for _ in 0..image.workers {
        kernel.fork(entry, costs)?;
    }
    Ok(kernel)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn xl_plan_matches_section_4_5() {
        let plan = boot_plan(&DockerImage::bash(), SpawnMethod::XlToolstack);
        // "we can boot an X-LibOS with a single bash process in 180ms, but
        // the overhead of Xen's xl toolstack brings the total instantiation
        // time up to 3 seconds."
        let non_toolstack: Nanos = plan.steps[1..].iter().map(|s| s.duration).sum();
        assert!(
            non_toolstack <= Nanos::from_millis(180),
            "boot w/o toolstack {non_toolstack}"
        );
        let total = plan.total();
        assert!(
            (Nanos::from_millis(2_900)..=Nanos::from_millis(3_100)).contains(&total),
            "total {total}"
        );
    }

    #[test]
    fn lightvm_plan_cuts_toolstack() {
        let xl = boot_plan(&DockerImage::nginx(), SpawnMethod::XlToolstack).total();
        let lv = boot_plan(&DockerImage::nginx(), SpawnMethod::LightVmToolstack).total();
        assert!(lv < Nanos::from_millis(200), "lightvm total {lv}");
        assert!(xl.as_nanos() > 10 * lv.as_nanos());
    }

    #[test]
    fn non_xen_methods_are_opaque() {
        let plan = boot_plan(&DockerImage::nginx(), SpawnMethod::DockerEngine);
        assert_eq!(plan.steps.len(), 1);
        assert_eq!(plan.total(), SpawnMethod::DockerEngine.spawn_time());
    }

    #[test]
    fn bootstrap_spawns_the_process_tree() {
        let costs = CostModel::skylake_cloud();
        let image = DockerImage::nginx();
        let kernel = bootstrap_processes(&image, &costs).unwrap();
        assert_eq!(kernel.process_count(), 2, "master + 1 worker");
        assert!(kernel.elapsed() > Nanos::ZERO);
    }

    #[test]
    fn workers_and_env_cost_a_little() {
        let mut big = DockerImage::nginx();
        big.workers = 8;
        big.env = (0..20).map(|i| (format!("K{i}"), "v".to_owned())).collect();
        let small = boot_plan(&DockerImage::nginx(), SpawnMethod::LightVmToolstack).total();
        let large = boot_plan(&big, SpawnMethod::LightVmToolstack).total();
        assert!(large > small);
        assert!(
            large < small + Nanos::from_millis(5),
            "marginal, not dominant"
        );
    }
}
