//! The §3.4 isolation argument, quantified.
//!
//! "X-Containers rely on a small X-Kernel that is specifically dedicated
//! to providing isolation. The X-Kernel has a small TCB and a small
//! number of hypervisor calls that lead to a smaller number of
//! vulnerabilities in practice." This module tabulates, per platform,
//! the trusted computing base and attack surface a tenant's threat
//! crosses — kLoC figures are the public numbers for the component
//! versions the paper deployed (Linux 4.4, Xen 4.2, gVisor 2018,
//! Graphene 2014).

use crate::platform::{Platform, PlatformKind};

/// The isolation boundary between two co-resident tenants.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum IsolationBoundary {
    /// A shared monolithic OS kernel (namespaces + cgroups + seccomp).
    SharedKernel,
    /// A user-space kernel intermediating, host kernel beneath.
    UserSpaceKernel,
    /// A hypervisor, with a full guest kernel per tenant.
    Hypervisor,
    /// A hypervisor acting as an exokernel (guest kernel inside the
    /// tenant's own trust domain).
    Exokernel,
    /// An in-process library OS over the shared host kernel.
    InProcessLibOs,
}

/// Security posture of one platform.
#[derive(Debug, Clone, PartialEq)]
pub struct SecurityProfile {
    /// Platform family.
    pub kind: PlatformKind,
    /// What separates mutually untrusting tenants.
    pub boundary: IsolationBoundary,
    /// Size of the code a tenant must trust for *isolation*, in kLoC.
    pub isolation_tcb_kloc: u32,
    /// Number of interfaces a malicious tenant can drive against that
    /// TCB (system calls or hypercalls).
    pub attack_interfaces: u32,
    /// Whether tenant kernel bugs are contained to the tenant.
    pub kernel_bugs_contained: bool,
}

/// The profile for a platform.
pub fn security_profile(platform: &Platform) -> SecurityProfile {
    let kind = platform.kind();
    match kind {
        // Docker: the whole host kernel is the isolation TCB, reachable
        // through the full syscall interface (seccomp trims the default
        // profile to ~300 of ~350).
        PlatformKind::Docker => SecurityProfile {
            kind,
            boundary: IsolationBoundary::SharedKernel,
            isolation_tcb_kloc: 17_000,
            attack_interfaces: 300,
            kernel_bugs_contained: false,
        },
        // gVisor: the sentry absorbs most syscalls but itself rests on a
        // host-kernel filter of ~70 syscalls; the sentry (~200 kLoC Go)
        // plus that slice of the host kernel is the TCB.
        PlatformKind::Gvisor => SecurityProfile {
            kind,
            boundary: IsolationBoundary::UserSpaceKernel,
            isolation_tcb_kloc: 1_200,
            attack_interfaces: 70,
            kernel_bugs_contained: true,
        },
        // Clear Containers: KVM + host kernel portions; interface is the
        // VM exit surface.
        PlatformKind::ClearContainer => SecurityProfile {
            kind,
            boundary: IsolationBoundary::Hypervisor,
            isolation_tcb_kloc: 1_500,
            attack_interfaces: 60,
            kernel_bugs_contained: true,
        },
        // Xen-Container: stock Xen (~300 kLoC with toolstack-facing
        // pieces) and its ~40 hypercalls.
        PlatformKind::XenContainer => SecurityProfile {
            kind,
            boundary: IsolationBoundary::Hypervisor,
            isolation_tcb_kloc: 300,
            attack_interfaces: 40,
            kernel_bugs_contained: true,
        },
        // X-Container: the X-Kernel is a trimmed Xen — the guest kernel
        // moved *out* of the trust boundary entirely (§3.4): its bugs are
        // the tenant's own problem.
        PlatformKind::XContainer => SecurityProfile {
            kind,
            boundary: IsolationBoundary::Exokernel,
            isolation_tcb_kloc: 250,
            attack_interfaces: 40,
            kernel_bugs_contained: true,
        },
        // Graphene (no isolation module in §5.5's build): the host
        // kernel is fully exposed to the PAL.
        PlatformKind::Graphene => SecurityProfile {
            kind,
            boundary: IsolationBoundary::InProcessLibOs,
            isolation_tcb_kloc: 17_000,
            attack_interfaces: 350,
            kernel_bugs_contained: false,
        },
        // Unikernel on Xen: same boundary class as X-Containers.
        PlatformKind::Unikernel => SecurityProfile {
            kind,
            boundary: IsolationBoundary::Exokernel,
            isolation_tcb_kloc: 300,
            attack_interfaces: 40,
            kernel_bugs_contained: true,
        },
    }
}

impl SecurityProfile {
    /// A crude comparable score: interfaces × log2(TCB). Lower is a
    /// smaller target. Only orderings are meaningful.
    pub fn exposure_score(&self) -> f64 {
        f64::from(self.attack_interfaces) * f64::from(self.isolation_tcb_kloc).log2()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cloud::CloudEnv;

    fn profile_of(kind: PlatformKind) -> SecurityProfile {
        let cloud = CloudEnv::GoogleGce;
        let p = match kind {
            PlatformKind::Docker => Platform::docker(cloud, true),
            PlatformKind::XenContainer => Platform::xen_container(cloud, true),
            PlatformKind::XContainer => Platform::x_container(cloud, true),
            PlatformKind::Gvisor => Platform::gvisor(cloud, true),
            PlatformKind::ClearContainer => Platform::clear_container(cloud, true).unwrap(),
            PlatformKind::Graphene => Platform::graphene(cloud),
            PlatformKind::Unikernel => Platform::unikernel(cloud),
        };
        security_profile(&p)
    }

    #[test]
    fn x_container_has_smallest_tcb() {
        let x = profile_of(PlatformKind::XContainer);
        for kind in [
            PlatformKind::Docker,
            PlatformKind::Gvisor,
            PlatformKind::ClearContainer,
            PlatformKind::XenContainer,
            PlatformKind::Graphene,
        ] {
            assert!(
                x.isolation_tcb_kloc <= profile_of(kind).isolation_tcb_kloc,
                "{kind:?}"
            );
        }
    }

    #[test]
    fn shared_kernel_platforms_do_not_contain_kernel_bugs() {
        // The Meltdown framing of §2.2: a kernel bug under Docker breaks
        // *inter-container* isolation.
        assert!(!profile_of(PlatformKind::Docker).kernel_bugs_contained);
        assert!(!profile_of(PlatformKind::Graphene).kernel_bugs_contained);
        assert!(profile_of(PlatformKind::XContainer).kernel_bugs_contained);
        assert!(profile_of(PlatformKind::Gvisor).kernel_bugs_contained);
    }

    #[test]
    fn exposure_ordering_matches_paper_argument() {
        let docker = profile_of(PlatformKind::Docker).exposure_score();
        let gvisor = profile_of(PlatformKind::Gvisor).exposure_score();
        let x = profile_of(PlatformKind::XContainer).exposure_score();
        assert!(x < gvisor, "exokernel beats user-space kernel");
        assert!(gvisor < docker, "both beat the shared kernel");
    }

    #[test]
    fn boundaries_classified() {
        assert_eq!(
            profile_of(PlatformKind::XContainer).boundary,
            IsolationBoundary::Exokernel
        );
        assert_eq!(
            profile_of(PlatformKind::Docker).boundary,
            IsolationBoundary::SharedKernel
        );
        assert_eq!(
            profile_of(PlatformKind::ClearContainer).boundary,
            IsolationBoundary::Hypervisor
        );
    }
}
