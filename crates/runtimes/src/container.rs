//! Container lifecycle: spawning, memory footprint, density.
//!
//! §4.5 quantifies X-Container startup: the Docker-Wrapper bootloader
//! brings up an X-LibOS with a bash process in **180 ms**, but Xen's `xl`
//! toolstack inflates total instantiation to **3 s**; LightVM's toolstack
//! redesign gets the toolstack down to **4 ms** and "can be also applied
//! to X-Containers". This module models those paths plus the per-platform
//! memory footprints that bound Figure 8's density.

use std::fmt;

use xc_sim::time::Nanos;

use crate::platform::{Platform, PlatformKind};

/// How an instance is brought up.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SpawnMethod {
    /// Docker engine starting a container on the shared kernel.
    DockerEngine,
    /// X-Container via the Docker Wrapper + special bootloader, driven by
    /// the stock `xl` toolstack (the paper's prototype).
    XlToolstack,
    /// Same bootloader behind a LightVM-style slimmed toolstack (the
    /// §4.5 improvement path).
    LightVmToolstack,
    /// Full VM boot (Xen PV/HVM instances of Figure 8).
    FullVmBoot,
}

impl SpawnMethod {
    /// Wall-clock instantiation latency.
    pub fn spawn_time(self) -> Nanos {
        match self {
            // Docker engine overhead for a small image.
            SpawnMethod::DockerEngine => Nanos::from_millis(700),
            // 180 ms bootloader + ~2.8 s toolstack (totals ≈ 3 s, §4.5).
            SpawnMethod::XlToolstack => Nanos::from_millis(180 + 2_820),
            // 180 ms bootloader + 4 ms toolstack.
            SpawnMethod::LightVmToolstack => Nanos::from_millis(184),
            // Ordinary VM: firmware + full distro boot.
            SpawnMethod::FullVmBoot => Nanos::from_secs(25),
        }
    }

    /// The prototype's default method for a platform.
    pub fn default_for(platform: &Platform) -> SpawnMethod {
        match platform.kind() {
            PlatformKind::Docker | PlatformKind::Gvisor | PlatformKind::Graphene => {
                SpawnMethod::DockerEngine
            }
            PlatformKind::XContainer | PlatformKind::Unikernel => SpawnMethod::XlToolstack,
            PlatformKind::XenContainer | PlatformKind::ClearContainer => SpawnMethod::FullVmBoot,
        }
    }
}

impl fmt::Display for SpawnMethod {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let name = match self {
            SpawnMethod::DockerEngine => "docker engine",
            SpawnMethod::XlToolstack => "xl toolstack + bootloader",
            SpawnMethod::LightVmToolstack => "LightVM toolstack + bootloader",
            SpawnMethod::FullVmBoot => "full VM boot",
        };
        f.write_str(name)
    }
}

/// A running container instance.
#[derive(Debug, Clone)]
pub struct Container {
    name: String,
    platform: Platform,
    memory_mb: u64,
    spawn: SpawnMethod,
}

impl Container {
    /// Creates a container on `platform` with the platform's default
    /// memory footprint and spawn method.
    pub fn new(name: &str, platform: Platform) -> Container {
        let memory_mb = Container::default_memory_mb(&platform);
        let spawn = SpawnMethod::default_for(&platform);
        Container {
            name: name.to_owned(),
            platform,
            memory_mb,
            spawn,
        }
    }

    /// Overrides the memory reservation (Figure 8 squeezes VM memory to
    /// fit more instances).
    pub fn with_memory_mb(mut self, memory_mb: u64) -> Container {
        self.memory_mb = memory_mb;
        self
    }

    /// Overrides the spawn method (e.g. the LightVM toolstack).
    pub fn with_spawn(mut self, spawn: SpawnMethod) -> Container {
        self.spawn = spawn;
        self
    }

    /// Default memory footprint per instance:
    /// Docker-family containers share the host kernel (tens of MiB);
    /// X-Containers boot in 128 MiB ("also work with 64 MB", §5.6);
    /// ordinary VMs need 512 MiB ("the recommended minimum size for
    /// Ubuntu-16").
    pub fn default_memory_mb(platform: &Platform) -> u64 {
        match platform.kind() {
            PlatformKind::Docker | PlatformKind::Gvisor | PlatformKind::Graphene => 32,
            PlatformKind::XContainer => 128,
            PlatformKind::Unikernel => 64,
            PlatformKind::XenContainer | PlatformKind::ClearContainer => 512,
        }
    }

    /// Container name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The platform this container runs on.
    pub fn platform(&self) -> &Platform {
        &self.platform
    }

    /// Memory reservation in MiB.
    pub fn memory_mb(&self) -> u64 {
        self.memory_mb
    }

    /// Instantiation latency for this container.
    pub fn spawn_time(&self) -> Nanos {
        self.spawn.spawn_time()
    }

    /// The configured spawn method.
    pub fn spawn_method(&self) -> SpawnMethod {
        self.spawn
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cloud::CloudEnv;

    #[test]
    fn paper_spawn_times() {
        assert_eq!(SpawnMethod::XlToolstack.spawn_time(), Nanos::from_secs(3));
        assert_eq!(
            SpawnMethod::LightVmToolstack.spawn_time(),
            Nanos::from_millis(184)
        );
        assert!(SpawnMethod::DockerEngine.spawn_time() < Nanos::from_secs(1));
        assert!(SpawnMethod::FullVmBoot.spawn_time() > Nanos::from_secs(10));
    }

    #[test]
    fn lightvm_toolstack_closes_most_of_the_gap() {
        let xc = Container::new("web", Platform::x_container(CloudEnv::AmazonEc2, true));
        let improved = xc.clone().with_spawn(SpawnMethod::LightVmToolstack);
        let docker = Container::new("web", Platform::docker(CloudEnv::AmazonEc2, true));
        assert!(xc.spawn_time() > docker.spawn_time());
        assert!(improved.spawn_time() < docker.spawn_time());
    }

    #[test]
    fn memory_footprints_drive_density() {
        let cloud = CloudEnv::LocalCluster;
        let xc = Container::new("a", Platform::x_container(cloud, true));
        let pv = Container::new("b", Platform::xen_container(cloud, true));
        let docker = Container::new("c", Platform::docker(cloud, true));
        assert!(docker.memory_mb() < xc.memory_mb());
        assert!(xc.memory_mb() < pv.memory_mb());
        let squeezed = pv.with_memory_mb(256);
        assert_eq!(squeezed.memory_mb(), 256);
    }

    #[test]
    fn accessors() {
        let c = Container::new("nginx-1", Platform::docker(CloudEnv::AmazonEc2, true));
        assert_eq!(c.name(), "nginx-1");
        assert_eq!(c.spawn_method(), SpawnMethod::DockerEngine);
        assert_eq!(c.platform().kind(), PlatformKind::Docker);
        assert!(SpawnMethod::DockerEngine.to_string().contains("docker"));
    }
}
