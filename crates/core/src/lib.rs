//! # xcontainers — an executable model of the X-Containers architecture
//!
//! A from-scratch Rust reproduction of *"X-Containers: Breaking Down
//! Barriers to Improve Performance and Isolation of Cloud-Native
//! Containers"* (Shen et al., ASPLOS 2019): the Xen-as-exokernel +
//! Linux-as-LibOS container architecture, its ABOM binary optimizer
//! implemented faithfully at x86-64 byte level, all competing runtimes
//! the paper evaluates, and harnesses that regenerate every table and
//! figure of the evaluation.
//!
//! This crate is the facade: it re-exports the workspace crates and a
//! [`prelude`] with the names most programs need.
//!
//! ## The pieces
//!
//! | Crate | Contents |
//! |---|---|
//! | [`sim`] | deterministic discrete-event engine, RNG, statistics, cost model |
//! | [`isa`] | x86-64 subset: codec, assembler, binary images, mini interpreter |
//! | [`abom`] | the Automatic Binary Optimization Module (§4.4), online + offline |
//! | [`verify`] | static patch-safety analyzer: disassembly, CFG, dataflow, verdicts |
//! | [`xen`] | hypervisor substrate: domains, hypercalls, event channels, grant tables, credit scheduler, PV vs X-Kernel ABI |
//! | [`libos`] | guest Linux / X-LibOS: processes, CFS scheduler, VFS, pipes, network paths |
//! | [`faults`] | deterministic fault injection: seeded fault plans, retry/backoff, watchdog restarts, ABOM degradation, the chaos world |
//! | [`runtimes`] | platform compositions: Docker, Xen-Container, X-Container, gVisor, Clear Containers, Graphene, Unikernel |
//! | [`workloads`] | UnixBench, iperf, macrobenchmarks, Table 1, Figures 6, 8, 9 |
//!
//! ## Quick start
//!
//! Compare raw syscall dispatch across architectures (the Figure 4
//! headline):
//!
//! ```
//! use xcontainers::prelude::*;
//!
//! let costs = CostModel::skylake_cloud();
//! let docker = Platform::docker(CloudEnv::AmazonEc2, true);
//! let xc = Platform::x_container(CloudEnv::AmazonEc2, true);
//!
//! let speedup = SystemCallBench::score(&xc, &costs)
//!     / SystemCallBench::score(&docker, &costs);
//! assert!(speedup > 15.0, "ABOM turns syscalls into function calls");
//! ```
//!
//! Watch ABOM patch a real binary (Figure 2, case 1):
//!
//! ```
//! use xcontainers::prelude::*;
//!
//! let mut image = xcontainers::abom::binaries::glibc_wrapper_image(0); // __read
//! let entry = image.symbol("wrapper").unwrap();
//! let mut kernel = XContainerKernel::new();
//!
//! // First call traps and patches; later calls are function calls.
//! for _ in 0..3 {
//!     let mut cpu = Cpu::new(entry);
//!     cpu.push_halt_frame().unwrap();
//!     cpu.run(&mut image, &mut kernel, 1_000).unwrap();
//! }
//! assert_eq!(kernel.stats().trapped, 1);
//! assert_eq!(kernel.stats().via_function_call, 2);
//! // The bytes are now: callq *0xffffffffff600008
//! assert_eq!(
//!     image.read_bytes(entry, 7).unwrap(),
//!     [0xff, 0x14, 0x25, 0x08, 0x00, 0x60, 0xff],
//! );
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use xc_abom as abom;
pub use xc_faults as faults;
pub use xc_isa as isa;
pub use xc_libos as libos;
pub use xc_runtimes as runtimes;
pub use xc_sim as sim;
pub use xc_verify as verify;
pub use xc_workloads as workloads;
pub use xc_xen as xen;

/// The names most experiments need, in one import.
pub mod prelude {
    pub use xc_abom::handler::XContainerKernel;
    pub use xc_abom::offline::OfflinePatcher;
    pub use xc_abom::patcher::{Abom, AbomConfig};
    pub use xc_faults::{
        run_chaos, ChaosParams, ChaosResult, FaultKind, FaultPlan, FaultRates, FaultStats,
        RetryPolicy, Watchdog,
    };
    pub use xc_isa::asm::Assembler;
    pub use xc_isa::cpu::Cpu;
    pub use xc_isa::image::BinaryImage;
    pub use xc_isa::inst::{Inst, Reg};
    pub use xc_libos::backend::Backend;
    pub use xc_libos::config::KernelConfig;
    pub use xc_runtimes::cloud::CloudEnv;
    pub use xc_runtimes::container::{Container, SpawnMethod};
    pub use xc_runtimes::platform::{Platform, PlatformKind};
    pub use xc_sim::cost::CostModel;
    pub use xc_sim::report::{json_array, json_object, Cell, Json, Table};
    pub use xc_sim::rng::Rng;
    pub use xc_sim::stats::{shard_share, Histogram, HistogramCheckpoint, Summary};
    pub use xc_sim::time::Nanos;
    pub use xc_verify::{AnalysisCache, Verdict, Verifier, VerifyReport};
    pub use xc_workloads::cluster::{run_cluster, run_cluster_range, ClusterParams, ClusterResult};
    pub use xc_workloads::costs::PlatformCosts;
    pub use xc_workloads::fig6::{DbTopology, LibOsPlatform};
    pub use xc_workloads::http::{
        run_closed_loop, run_closed_loop_cached, run_closed_loop_from, run_closed_loop_sharded,
        ClosedLoopCache, ClosedLoopResult, RequestProfile, ServerModel,
    };
    pub use xc_workloads::loadbalance::LbMode;
    pub use xc_workloads::scalability::ScalabilityConfig;
    pub use xc_workloads::unixbench::{MicroBench, SystemCallBench};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn prelude_names_resolve() {
        let costs = CostModel::skylake_cloud();
        let p = Platform::x_container(CloudEnv::GoogleGce, true);
        assert!(p.syscall_cost(&costs) < Nanos::from_nanos(100));
        let _ = Rng::new(1);
        let _ = Summary::new();
        let _ = Histogram::new();
        let _ = Table::new("t", &["a"]);
        let mut image = xc_abom::binaries::glibc_wrapper_image(0);
        image.protect_all(true);
        let analysis = Verifier::new().analyze(&image);
        assert_eq!(analysis.report().tally(), (1, 0, 0));
        let _: &VerifyReport = analysis.report();
        assert!(Verdict::Safe.allows_patch());
        let mut plan = FaultPlan::new(1, FaultRates::disabled());
        assert!(!plan.should_inject(FaultKind::DomainCrash));
        assert!(RetryPolicy::event_default().delay_for(0).is_some());
        let _ = Watchdog::new(1, Nanos::from_millis(1));
        let r: ChaosResult = run_chaos(
            ChaosParams {
                duration: Nanos::from_millis(20),
                ..ChaosParams::default()
            },
            plan,
            7,
        );
        assert!(r.check_conservation().is_ok());
    }
}
