//! Structured diagnostics over a [`VerifyReport`].
//!
//! Every site the verifier could not prove `Safe` becomes a
//! [`LintFinding`]: a stable rule id, a severity, the site address, the
//! rendered reason *chain* (terminal reason plus the blocking and
//! defining instructions when known), and a fix hint. Sites the
//! interprocedural pass upgraded get an informational finding so
//! coverage tooling can see *why* the count moved. Findings render both
//! human-readable ([`render_text`]) and machine-readable
//! ([`render_json`], hand-rolled — no serde in the workspace).
//!
//! Rule space: `XV0xx` = coverage gaps (`Unknown` verdicts, patcher must
//! trap), `XV1xx` = proven-unsafe structure, `XV000` = informational
//! upgrade notes.

use std::collections::BTreeMap;
use std::fmt::Write as _;

use crate::report::{SiteKind, SiteReport, UnknownReason, UnsafeReason, Verdict, VerifyReport};

/// Finding severity.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Severity {
    /// Rewriting would be wrong; the verdict is final.
    Error,
    /// Analysis gap; the site stays trapped but a better proof could
    /// recover it.
    Warning,
    /// Informational (e.g. an interprocedural upgrade).
    Note,
}

impl Severity {
    /// Lowercase name, as rendered.
    pub fn as_str(self) -> &'static str {
        match self {
            Severity::Error => "error",
            Severity::Warning => "warning",
            Severity::Note => "note",
        }
    }
}

/// One diagnostic about one `syscall` site.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LintFinding {
    /// Stable rule id (`XV...`).
    pub rule: &'static str,
    /// Severity class.
    pub severity: Severity,
    /// Address (or image offset, for position-independent reports) of
    /// the `syscall` instruction.
    pub addr: u64,
    /// Rendered reason chain: terminal reason, blocking instruction,
    /// defining instruction.
    pub reason: String,
    /// What would make the site patchable (or why nothing will).
    pub hint: &'static str,
}

/// Aggregate counts for one report.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct LintSummary {
    /// Total `syscall` sites.
    pub total: usize,
    /// Sites proven safe (including upgrades).
    pub safe: usize,
    /// Sites proven unsafe.
    pub unsafe_sites: usize,
    /// Sites the analysis could not decide.
    pub unknown: usize,
    /// Safe sites owed to the interprocedural pass
    /// ([`SiteKind::PropagatedNumber`]).
    pub upgraded: usize,
    /// Findings per rule id.
    pub rule_counts: BTreeMap<&'static str, usize>,
}

impl LintSummary {
    /// Percentage of sites proven safe, in `[0, 100]` (100 for an empty
    /// report: nothing is unproven).
    pub fn coverage_pct(&self) -> f64 {
        if self.total == 0 {
            100.0
        } else {
            100.0 * self.safe as f64 / self.total as f64
        }
    }
}

fn rule_for(site: &SiteReport) -> Option<(&'static str, Severity, &'static str)> {
    match site.verdict {
        Verdict::Safe => (site.kind == SiteKind::PropagatedNumber).then_some((
            "XV000",
            Severity::Note,
            "proven by interprocedural propagation; an offline patcher with \
             `interprocedural` enabled will detour this site",
        )),
        Verdict::Unknown(UnknownReason::NumberNotConstant) => Some((
            "XV001",
            Severity::Warning,
            "materialize the number as `mov $imm, %eax` next to the syscall, or \
             route it through a constant-argument wrapper the call-graph pass can see",
        )),
        Verdict::Unknown(UnknownReason::MultipleDefinitions) => Some((
            "XV002",
            Severity::Warning,
            "give each path its own adjacent defining mov so one definition \
             dominates the site",
        )),
        Verdict::Unknown(UnknownReason::NumberOutOfRange { .. }) => Some((
            "XV003",
            Severity::Warning,
            "number has no vsyscall table entry; extend the table or leave the \
             site trapped",
        )),
        Verdict::Unknown(UnknownReason::OverlappingDecode { .. }) => Some((
            "XV004",
            Severity::Warning,
            "region bytes decode two ways; align branch targets to instruction \
             boundaries",
        )),
        Verdict::Unknown(UnknownReason::UndecodedBytes { .. }) => Some((
            "XV005",
            Severity::Warning,
            "region contains undecodable bytes; keep data out of the code stream",
        )),
        Verdict::Unsafe(UnsafeReason::InteriorJumpTarget { .. }) => Some((
            "XV101",
            Severity::Error,
            "control enters the detour region from outside; move the label or \
             the region",
        )),
        Verdict::Unsafe(UnsafeReason::InteriorBranchEscapes { .. }) => Some((
            "XV102",
            Severity::Error,
            "an interior branch leaves the displaced window; the trampoline \
             cannot relocate it",
        )),
        Verdict::Unsafe(UnsafeReason::RcxLiveAfterSite) => Some((
            "XV103",
            Severity::Error,
            "%rcx is read after the site; the replacement call preserves what \
             the original syscall clobbers",
        )),
    }
}

/// Lints every site of `report` into findings, in site order.
pub fn lint_report(report: &VerifyReport) -> Vec<LintFinding> {
    let mut out = Vec::new();
    for site in &report.sites {
        let Some((rule, severity, hint)) = rule_for(site) else {
            continue;
        };
        let reason = match site.verdict {
            Verdict::Safe => format!(
                "number {} propagated from {:#x}",
                site.number.unwrap_or(-1),
                site.mov_addr.unwrap_or(0)
            ),
            v => format!("{v}{}", site.chain),
        };
        out.push(LintFinding {
            rule,
            severity,
            addr: site.syscall_addr,
            reason,
            hint,
        });
    }
    out
}

/// Aggregates `report` into per-rule counts and coverage.
pub fn summarize(report: &VerifyReport) -> LintSummary {
    let (safe, unsafe_sites, unknown) = report.tally();
    let mut summary = LintSummary {
        total: report.sites.len(),
        safe,
        unsafe_sites,
        unknown,
        upgraded: report
            .sites
            .iter()
            .filter(|s| s.kind == SiteKind::PropagatedNumber && s.verdict == Verdict::Safe)
            .count(),
        rule_counts: BTreeMap::new(),
    };
    for f in lint_report(report) {
        *summary.rule_counts.entry(f.rule).or_insert(0) += 1;
    }
    summary
}

/// Renders findings the way a compiler would print them.
pub fn render_text(findings: &[LintFinding]) -> String {
    let mut out = String::new();
    for f in findings {
        let _ = writeln!(
            out,
            "{}[{}] site {:#x}: {}\n    hint: {}",
            f.severity.as_str(),
            f.rule,
            f.addr,
            f.reason,
            f.hint
        );
    }
    out
}

/// Renders findings as a stable JSON array (hand-rolled; keys in fixed
/// order, findings in site order).
pub fn render_json(findings: &[LintFinding]) -> String {
    let mut out = String::from("[");
    for (i, f) in findings.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(
            out,
            "{{\"rule\":\"{}\",\"severity\":\"{}\",\"addr\":{},\"reason\":\"{}\",\"hint\":\"{}\"}}",
            f.rule,
            f.severity.as_str(),
            f.addr,
            escape_json(&f.reason),
            escape_json(f.hint)
        );
    }
    out.push(']');
    out
}

fn escape_json(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::verifier::Verifier;
    use xc_isa::asm::Assembler;
    use xc_isa::inst::{Inst, Reg};

    fn mixed_report() -> VerifyReport {
        let mut a = Assembler::new(0x1000);
        a.label("safe").unwrap();
        a.inst(Inst::MovImm32 {
            reg: Reg::Rax,
            imm: 1,
        });
        a.inst(Inst::Syscall);
        a.inst(Inst::Ret);
        a.label("unknown").unwrap();
        a.inst(Inst::MovRegReg64 {
            dst: Reg::Rax,
            src: Reg::Rdi,
        });
        a.inst(Inst::Syscall);
        a.inst(Inst::Ret);
        a.label("rcx_unsafe").unwrap();
        a.inst(Inst::MovImm32 {
            reg: Reg::Rax,
            imm: 0,
        });
        a.inst(Inst::Syscall);
        a.inst(Inst::MovRegReg64 {
            dst: Reg::Rdx,
            src: Reg::Rcx,
        });
        a.inst(Inst::Ret);
        Verifier::new()
            .analyze(&a.finish().unwrap())
            .report()
            .clone()
    }

    #[test]
    fn findings_cover_non_safe_sites_with_stable_rules() {
        let report = mixed_report();
        let findings = lint_report(&report);
        assert_eq!(findings.len(), 2);
        assert_eq!(findings[0].rule, "XV001");
        assert_eq!(findings[0].severity, Severity::Warning);
        assert_eq!(findings[1].rule, "XV103");
        assert_eq!(findings[1].severity, Severity::Error);
        assert!(findings[0].reason.contains("not constant"));
    }

    #[test]
    fn upgraded_site_gets_a_note() {
        let mut a = Assembler::new(0x1000);
        a.label("wrapper").unwrap();
        a.inst(Inst::MovImm32 {
            reg: Reg::Rdi,
            imm: 39,
        });
        a.call_to("shim");
        a.inst(Inst::Ret);
        a.label("shim").unwrap();
        a.inst(Inst::MovRegReg64 {
            dst: Reg::Rax,
            src: Reg::Rdi,
        });
        a.inst(Inst::Syscall);
        a.inst(Inst::Ret);
        let report = Verifier::new()
            .analyze(&a.finish().unwrap())
            .report()
            .clone();
        let findings = lint_report(&report);
        assert_eq!(findings.len(), 1);
        assert_eq!(findings[0].rule, "XV000");
        assert_eq!(findings[0].severity, Severity::Note);
        let summary = summarize(&report);
        assert_eq!(summary.upgraded, 1);
        assert_eq!(summary.unknown, 0);
        assert!((summary.coverage_pct() - 100.0).abs() < 1e-12);
    }

    #[test]
    fn summary_counts_and_coverage() {
        let summary = summarize(&mixed_report());
        assert_eq!(summary.total, 3);
        assert_eq!(summary.safe, 1);
        assert_eq!(summary.unknown, 1);
        assert_eq!(summary.unsafe_sites, 1);
        assert_eq!(summary.rule_counts.get("XV001"), Some(&1));
        assert_eq!(summary.rule_counts.get("XV103"), Some(&1));
        assert!((summary.coverage_pct() - 100.0 / 3.0).abs() < 1e-9);
    }

    #[test]
    fn json_rendering_is_stable_and_escaped() {
        let findings = vec![LintFinding {
            rule: "XV001",
            severity: Severity::Warning,
            addr: 0x1003,
            reason: "has \"quotes\"\nand newline".to_string(),
            hint: "h",
        }];
        let json = render_json(&findings);
        assert_eq!(
            json,
            "[{\"rule\":\"XV001\",\"severity\":\"warning\",\"addr\":4099,\
             \"reason\":\"has \\\"quotes\\\"\\nand newline\",\"hint\":\"h\"}]"
        );
        let text = render_text(&findings);
        assert!(text.starts_with("warning[XV001] site 0x1003:"));
    }
}
