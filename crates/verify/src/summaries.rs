//! Per-function summaries: clobber sets and `%rax` effects.
//!
//! The interprocedural engine ([`crate::absint`]) needs two facts about
//! every call it steps over: *which registers may the callee change* (the
//! clobber set, a bitmask over the eight GPRs) and *what lands in `%rax`*
//! (the return-value effect). Both are computed bottom-up over the
//! [`crate::callgraph::CallGraph`] as a growing fixpoint:
//!
//! * **Clobbers** start from each function's own register writes and
//!   absorb callee clobbers until stable. A function containing an
//!   *unresolved* call (vsyscall page, escaped indirect) is pinned at
//!   clobber-everything. If the fixpoint has not stabilised within
//!   `max_summary_depth` rounds, every summary collapses to
//!   clobber-everything — an early stop on a growing iteration would be
//!   an *under*-approximation, which is the unsound direction.
//! * **`%rax` effects** start pessimistic ([`RaxEffect::Unknown`]) and
//!   are *refined* for the same number of rounds, so any intermediate
//!   state is already sound. The effect is read off a straight-line scan
//!   of the entry block: `mov $imm, %eax`-family gives
//!   [`RaxEffect::Const`], `mov %reg, %rax` from an unwritten register
//!   gives [`RaxEffect::ArgReg`], and a function that provably never
//!   writes `%rax` is [`RaxEffect::Preserved`].

use std::collections::BTreeMap;

use xc_isa::inst::{Inst, Reg};

use crate::callgraph::CallGraph;
use crate::cfg::Cfg;
use crate::disasm::Disassembly;

/// Bit for `reg` in a clobber mask.
#[inline]
pub fn reg_bit(reg: Reg) -> u8 {
    1u8 << reg.code()
}

/// Clobber mask naming all eight GPRs.
pub const CLOBBER_ALL: u8 = 0xff;

/// What a call leaves in `%rax`, as seen by the caller.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RaxEffect {
    /// The callee provably never writes `%rax`.
    Preserved,
    /// The callee returns this constant on every path.
    Const(i64),
    /// The callee returns its caller's value of this register
    /// (libc-style `syscall(nr, ...)` identity shims).
    ArgReg(Reg),
    /// No claim.
    Unknown,
}

/// Summary of one function, applied at its call sites.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FnSummary {
    /// Registers the call may change, as a bitmask (`1 << reg.code()`).
    pub clobbers: u8,
    /// Return-value effect on `%rax`.
    pub rax: RaxEffect,
}

impl FnSummary {
    /// The summary assumed for anything we cannot analyze.
    pub const UNRESOLVED: FnSummary = FnSummary {
        clobbers: CLOBBER_ALL,
        rax: RaxEffect::Unknown,
    };
}

/// Summaries for every node of a call graph.
#[derive(Debug, Clone, Default)]
pub struct Summaries {
    /// Function head → its summary.
    pub by_fn: BTreeMap<u64, FnSummary>,
}

impl Summaries {
    /// Summary for `head`, conservatively [`FnSummary::UNRESOLVED`] for
    /// unknown heads.
    pub fn summary(&self, head: u64) -> FnSummary {
        self.by_fn
            .get(&head)
            .copied()
            .unwrap_or(FnSummary::UNRESOLVED)
    }

    /// Computes summaries bottom-up to a fixpoint (capped at
    /// `max_summary_depth` growth rounds, collapsing to
    /// clobber-everything if the cap is hit before stability).
    pub fn build(
        disasm: &Disassembly,
        cfg: &Cfg,
        cg: &CallGraph,
        max_summary_depth: u8,
    ) -> Summaries {
        let own: BTreeMap<u64, u8> = cg
            .nodes
            .iter()
            .map(|&head| (head, own_clobbers(head, disasm, cfg, cg)))
            .collect();
        let mut clobbers = own.clone();
        let rounds = max_summary_depth.max(1);
        let mut stable = false;
        for _ in 0..rounds {
            let mut changed = false;
            for &head in &cg.nodes {
                let mut mask = own[&head];
                for callee in &cg.callees[&head] {
                    mask |= clobbers.get(callee).copied().unwrap_or(CLOBBER_ALL);
                }
                let slot = clobbers.get_mut(&head).expect("seeded above");
                if *slot != mask {
                    *slot = mask;
                    changed = true;
                }
            }
            if !changed {
                stable = true;
                break;
            }
        }
        if !stable {
            for mask in clobbers.values_mut() {
                *mask = CLOBBER_ALL;
            }
        }

        // Effects start pessimistic, so every refinement round is sound
        // on its own and the cap needs no collapse step.
        let mut summaries = Summaries {
            by_fn: clobbers
                .iter()
                .map(|(&head, &mask)| {
                    (
                        head,
                        FnSummary {
                            clobbers: mask,
                            rax: RaxEffect::Unknown,
                        },
                    )
                })
                .collect(),
        };
        for _ in 0..rounds {
            let mut changed = false;
            for &head in &cg.nodes {
                let effect = entry_block_rax_effect(head, disasm, cfg, cg, &summaries);
                let cur = summaries.by_fn.get_mut(&head).expect("seeded above");
                if cur.rax != effect {
                    cur.rax = effect;
                    changed = true;
                }
            }
            if !changed {
                break;
            }
        }
        summaries
    }
}

/// Registers written directly by one instruction, as a clobber mask.
fn inst_clobbers(inst: Inst) -> u8 {
    match inst {
        Inst::MovImm32 { reg, .. }
        | Inst::MovImm32SxR64 { reg, .. }
        | Inst::LoadRspDisp8R32 { reg, .. }
        | Inst::LoadRspDisp8R64 { reg, .. } => reg_bit(reg),
        Inst::MovRegReg64 { dst, .. } => reg_bit(dst),
        Inst::XorEaxEax => reg_bit(Reg::Rax),
        // `syscall` clobbers `%rax` (return value) and — once ABOM
        // rewrites the site into a call — `%rcx` as well.
        Inst::Syscall => reg_bit(Reg::Rax) | reg_bit(Reg::Rcx),
        Inst::PushRbp | Inst::AddRspImm8 { .. } | Inst::SubRspImm8 { .. } => reg_bit(Reg::Rsp),
        Inst::PopRbp => reg_bit(Reg::Rsp) | reg_bit(Reg::Rbp),
        Inst::Leave => reg_bit(Reg::Rsp) | reg_bit(Reg::Rbp),
        Inst::Nop
        | Inst::Ret
        | Inst::Int3
        | Inst::Ud2
        | Inst::StoreRspDisp8R64 { .. }
        | Inst::CallAbsIndirect { .. }
        | Inst::CallRel32 { .. }
        | Inst::JmpRel8 { .. }
        | Inst::JmpRel32 { .. }
        | Inst::JccRel8 { .. }
        | Inst::TestEaxEax => 0,
    }
}

/// Clobbers contributed by `head`'s own body (calls folded in by the
/// caller's fixpoint, except unresolved calls which pin everything).
fn own_clobbers(head: u64, disasm: &Disassembly, cfg: &Cfg, cg: &CallGraph) -> u8 {
    if cg.has_unresolved_call.get(&head).copied().unwrap_or(true) {
        return CLOBBER_ALL;
    }
    let mut mask = 0u8;
    for start in &cg.bodies[&head] {
        for at in &cfg.blocks[start].insts {
            mask |= inst_clobbers(disasm.insts[at].inst);
        }
    }
    mask
}

/// Straight-line `%rax` effect of `head`'s entry block.
fn entry_block_rax_effect(
    head: u64,
    disasm: &Disassembly,
    cfg: &Cfg,
    cg: &CallGraph,
    summaries: &Summaries,
) -> RaxEffect {
    let Some(block) = cfg.blocks.get(&head) else {
        return RaxEffect::Unknown;
    };
    let mut effect = RaxEffect::Preserved;
    let mut written = 0u8;
    for &at in &block.insts {
        let inst = disasm.insts[&at].inst;
        match inst {
            Inst::MovImm32 { reg: Reg::Rax, imm } => effect = RaxEffect::Const(i64::from(imm)),
            Inst::MovImm32SxR64 { reg: Reg::Rax, imm } => effect = RaxEffect::Const(i64::from(imm)),
            Inst::XorEaxEax => effect = RaxEffect::Const(0),
            Inst::MovRegReg64 { dst: Reg::Rax, src } => {
                effect = if written & reg_bit(src) == 0 {
                    RaxEffect::ArgReg(src)
                } else {
                    RaxEffect::Unknown
                };
            }
            Inst::CallRel32 { .. } | Inst::CallAbsIndirect { .. } => {
                let callee_effect = match cg.site_targets.get(&at) {
                    Some(&t) => summaries.summary(t).rax,
                    None => RaxEffect::Unknown,
                };
                effect = match callee_effect {
                    RaxEffect::Preserved => effect,
                    RaxEffect::Const(v) => RaxEffect::Const(v),
                    // The callee's "argument register" is in *its* frame;
                    // translating through two frames is not worth it.
                    RaxEffect::ArgReg(_) | RaxEffect::Unknown => RaxEffect::Unknown,
                };
                written |= match cg.site_targets.get(&at) {
                    Some(&t) => summaries.summary(t).clobbers,
                    None => CLOBBER_ALL,
                };
                continue;
            }
            Inst::Syscall => effect = RaxEffect::Unknown,
            Inst::Ret => return effect,
            _ => {
                if inst_clobbers(inst) & reg_bit(Reg::Rax) != 0 {
                    effect = RaxEffect::Unknown;
                }
            }
        }
        written |= inst_clobbers(inst);
    }
    // Fell off the entry block into more control flow: keep the claim
    // only if the whole function provably never writes `%rax`.
    if summaries.summary(head).clobbers & reg_bit(Reg::Rax) == 0 {
        RaxEffect::Preserved
    } else {
        RaxEffect::Unknown
    }
}
