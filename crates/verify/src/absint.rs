//! Interprocedural abstract interpretation over the CFG.
//!
//! This replaces the v1 single-register forward pass with a worklist
//! fixpoint that tracks an abstract value for **all eight GPRs** plus a
//! bounded window of `rsp`-relative stack slots, propagated *across call
//! edges*: a call site seeds its resolved callee's entry state with the
//! caller's registers, and the caller continues with the callee's
//! [`crate::summaries::FnSummary`] applied. That is what lets a syscall
//! number materialised in a caller (`mov $39, %edi; call shim`) reach
//! the `syscall` inside a libc-style identity shim as a *constant with a
//! named defining instruction* — the fact the upgrade pass
//! ([`crate::verifier`]) needs to turn an `Unknown` verdict into a
//! patchable region.
//!
//! ## Lattice
//!
//! [`AbsValue`] is a flat constant domain widened through intervals:
//! `Unreached ⊑ Const ⊑ Interval ⊑ Top`. Joining two *equal* constants
//! keeps the value but drops the defining site unless it is also equal —
//! a value that is constant along all paths but defined in two places is
//! still constant (good for diagnostics) yet yields no single region to
//! patch. Every copy or reload **re-defines**: the def site moves to the
//! copy, so the patchable region starts at the *latest* instruction that
//! materialises the value before the syscall.
//!
//! All values in this ISA originate from immediates (there is no
//! arithmetic on registers), so interval endpoints are drawn from the
//! finite set of program constants and the fixpoint terminates; a
//! per-block visit cap widens to `Top` as defence in depth.

use std::collections::BTreeMap;

use xc_isa::inst::{Inst, Reg};

use crate::callgraph::CallGraph;
use crate::cfg::Cfg;
use crate::disasm::Disassembly;
use crate::profile::{NoProbe, Probe};
use crate::summaries::{reg_bit, RaxEffect, Summaries};

/// Abstract value of one register or stack slot.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AbsValue {
    /// No path reaches this point (bottom).
    Unreached,
    /// The value is `v` on every path. `def` names the single
    /// instruction (address, length) that materialises it when that
    /// instruction is unique — only then can a detour region be built.
    Const {
        /// The constant.
        v: i64,
        /// Unique defining instruction, if any.
        def: Option<(u64, u8)>,
    },
    /// The value lies within `[lo, hi]` (join of unequal constants).
    Interval {
        /// Inclusive lower bound.
        lo: i64,
        /// Inclusive upper bound.
        hi: i64,
    },
    /// No claim (top).
    Top,
}

impl AbsValue {
    /// Least upper bound.
    pub fn join(self, other: AbsValue) -> AbsValue {
        use AbsValue::*;
        match (self, other) {
            (Unreached, x) | (x, Unreached) => x,
            (Top, _) | (_, Top) => Top,
            (Const { v: a, def: da }, Const { v: b, def: db }) => {
                if a == b {
                    Const {
                        v: a,
                        def: if da == db { da } else { None },
                    }
                } else {
                    Interval {
                        lo: a.min(b),
                        hi: a.max(b),
                    }
                }
            }
            (Const { v, .. }, Interval { lo, hi }) | (Interval { lo, hi }, Const { v, .. }) => {
                Interval {
                    lo: lo.min(v),
                    hi: hi.max(v),
                }
            }
            (Interval { lo: a, hi: b }, Interval { lo: c, hi: d }) => Interval {
                lo: a.min(c),
                hi: b.max(d),
            },
        }
    }

    /// The value after being copied by the instruction at `at` (length
    /// `len`): constants are re-defined to the copy site, everything
    /// else is unchanged.
    fn redef(self, at: u64, len: u8) -> AbsValue {
        match self {
            AbsValue::Const { v, .. } => AbsValue::Const {
                v,
                def: Some((at, len)),
            },
            other => other,
        }
    }

    /// The constant value, if this is a `Const`.
    pub fn as_const(self) -> Option<i64> {
        match self {
            AbsValue::Const { v, .. } => Some(v),
            _ => None,
        }
    }
}

/// Abstract machine state at one program point.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AbsState {
    /// One value per GPR, indexed by [`Reg::code`].
    pub regs: [AbsValue; 8],
    /// Tracked `rsp`-relative slots, keyed by byte displacement. An
    /// absent key means `Top` (untracked), **not** unreached.
    pub slots: BTreeMap<u8, AbsValue>,
}

impl AbsState {
    /// The no-information state (function entry from outside).
    pub fn top() -> AbsState {
        AbsState {
            regs: [AbsValue::Top; 8],
            slots: BTreeMap::new(),
        }
    }

    /// Value of `reg`.
    pub fn reg(&self, reg: Reg) -> AbsValue {
        self.regs[reg.code() as usize]
    }

    /// Writes `reg`, reporting whether the value actually moved — the
    /// transfer function's dirty bit is the OR of these.
    fn set_reg(&mut self, reg: Reg, v: AbsValue) -> bool {
        let slot = &mut self.regs[reg.code() as usize];
        if *slot == v {
            false
        } else {
            *slot = v;
            true
        }
    }

    /// Drops every tracked slot, reporting whether any existed.
    fn clear_slots(&mut self) -> bool {
        if self.slots.is_empty() {
            false
        } else {
            self.slots.clear();
            true
        }
    }

    /// Pointwise join. Slots join by key intersection (absent = `Top`).
    fn join(&self, other: &AbsState) -> AbsState {
        let mut regs = [AbsValue::Top; 8];
        for (i, slot) in regs.iter_mut().enumerate() {
            *slot = self.regs[i].join(other.regs[i]);
        }
        let mut slots = BTreeMap::new();
        for (&k, &v) in &self.slots {
            if let Some(&w) = other.slots.get(&k) {
                let j = v.join(w);
                if j != AbsValue::Top {
                    slots.insert(k, j);
                }
            }
        }
        AbsState { regs, slots }
    }

    /// State a resolved callee starts in when entered from here: the
    /// caller's registers travel through the call, the caller's frame
    /// does not (`rsp` moved).
    fn call_seed(&self) -> AbsState {
        AbsState {
            regs: self.regs,
            slots: BTreeMap::new(),
        }
    }
}

/// Result of the interprocedural pass.
///
/// Pre-states are interned: `states` is a dense arena and `state_in`
/// maps instruction addresses to arena ids, so the many program points
/// that share one abstract state (every instruction that does not move
/// the lattice) share one allocation instead of each holding a clone.
#[derive(Debug, Clone, Default)]
pub struct AbsInt {
    /// Interned abstract states (the copy-on-write arena).
    states: Vec<AbsState>,
    /// Arena id of the pre-state of every reachable instruction.
    state_in: BTreeMap<u64, u32>,
}

/// A block is re-queued at most this many times before its in-state is
/// widened straight to `Top` (defence in depth; see module docs).
const BLOCK_VISIT_CAP: u32 = 64;

/// Bitset worklist over dense block ids. `pop_first` returns the lowest
/// set id, so with ids assigned in ascending block-address order the
/// scheduling is identical to the old `BTreeSet<u64>` pop-minimum — one
/// cache line per 64 blocks instead of a node allocation per entry.
struct Worklist {
    words: Vec<u64>,
    /// Lowest word index that may contain a set bit (monotone scan
    /// cursor, rewound on insert).
    hint: usize,
}

impl Worklist {
    fn new(blocks: usize) -> Worklist {
        Worklist {
            words: vec![0; blocks.div_ceil(64)],
            hint: 0,
        }
    }

    #[inline]
    fn insert(&mut self, id: usize) {
        self.words[id / 64] |= 1u64 << (id % 64);
        self.hint = self.hint.min(id / 64);
    }

    #[inline]
    fn pop_first(&mut self) -> Option<usize> {
        while self.hint < self.words.len() {
            let word = &mut self.words[self.hint];
            if *word != 0 {
                let bit = word.trailing_zeros() as usize;
                *word &= *word - 1;
                return Some(self.hint * 64 + bit);
            }
            self.hint += 1;
        }
        None
    }
}

impl AbsInt {
    /// The interned pre-state of the instruction at `at`, if reached.
    pub fn state_at(&self, at: u64) -> Option<&AbsState> {
        self.state_in.get(&at).map(|&id| &self.states[id as usize])
    }

    /// The abstract `%rax` value just before the instruction at `at`
    /// ([`AbsValue::Unreached`] if the point was never reached).
    pub fn rax_at(&self, at: u64) -> AbsValue {
        self.state_at(at)
            .map_or(AbsValue::Unreached, |s| s.reg(Reg::Rax))
    }

    /// Runs the fixpoint. `stack_window_slots` bounds the tracked frame
    /// window to displacements below `8 * stack_window_slots` bytes.
    pub fn analyze(
        disasm: &Disassembly,
        cfg: &Cfg,
        cg: &CallGraph,
        summaries: &Summaries,
        stack_window_slots: u8,
    ) -> AbsInt {
        Self::analyze_with(disasm, cfg, cg, summaries, stack_window_slots, &mut NoProbe)
    }

    /// Runs the fixpoint with a timing/counting probe attached,
    /// returning the analysis plus its profile. Only compiled with the
    /// `profile` feature; [`AbsInt::analyze`] monomorphizes the same
    /// driver against a no-op probe, so the production path pays
    /// nothing for the instrumentation seam.
    #[cfg(feature = "profile")]
    pub fn analyze_profiled(
        disasm: &Disassembly,
        cfg: &Cfg,
        cg: &CallGraph,
        summaries: &Summaries,
        stack_window_slots: u8,
    ) -> (AbsInt, crate::profile::AbsIntProfile) {
        let mut probe = crate::profile::AbsIntProfile::new();
        let out = Self::analyze_with(disasm, cfg, cg, summaries, stack_window_slots, &mut probe);
        (out, probe)
    }

    /// The worklist driver behind both entry points.
    ///
    /// Block in-states are *interned*: the arena (`AbsInt::states`)
    /// holds the actual `AbsState`s and `block_in` maps dense block ids
    /// (rank in ascending start-address order, binary search for the
    /// lookup) to arena ids. The arena is copy-on-write — `owned[id]`
    /// says whether block `id` is the sole referent of its slot. When a
    /// popped block's transfer chain leaves the state untouched (the
    /// per-pop dirty bit stays clear), successors receive the in-state
    /// *by id* instead of by clone, and both sides drop ownership so a
    /// later join interns a fresh slot rather than mutating a shared
    /// one. Join order, widening points and the pop schedule are
    /// exactly the old `BTreeSet<u64>`-pop-minimum behaviour; only the
    /// clone traffic changes, which [`Probe::state_cloned`] /
    /// [`Probe::state_shared`] account for (each share replaces what
    /// the pre-CoW driver cloned, so `cloned + shared` is the old clone
    /// count).
    fn analyze_with<P: Probe>(
        disasm: &Disassembly,
        cfg: &Cfg,
        cg: &CallGraph,
        summaries: &Summaries,
        stack_window_slots: u8,
        probe: &mut P,
    ) -> AbsInt {
        let window = u16::from(stack_window_slots) * 8;
        let starts: Vec<u64> = cfg.blocks.keys().copied().collect();
        let id_of = |addr: u64| starts.binary_search(&addr).ok();
        let mut arena: Vec<AbsState> = Vec::with_capacity(starts.len());
        let mut block_in: Vec<Option<u32>> = vec![None; starts.len()];
        let mut owned: Vec<bool> = vec![false; starts.len()];
        let mut visits: Vec<u32> = vec![0; starts.len()];
        let mut work = Worklist::new(starts.len());
        for &e in &disasm.entries {
            if let Some(id) = id_of(e) {
                if block_in[id].is_none() {
                    arena.push(AbsState::top());
                    block_in[id] = Some((arena.len() - 1) as u32);
                    owned[id] = true;
                }
                work.insert(id);
            }
        }

        // Scratch out-state, refreshed per pop (the one unavoidable
        // copy per fixpoint iteration — `clone_from` reuses its
        // allocations where the collections allow).
        let mut scratch = AbsState::top();

        while let Some(id) = work.pop_first() {
            probe.block_popped();
            visits[id] += 1;
            let cur = block_in[id].expect("queued block has a state") as usize;
            if visits[id] > BLOCK_VISIT_CAP {
                if owned[id] {
                    arena[cur] = AbsState::top();
                } else {
                    arena.push(AbsState::top());
                    block_in[id] = Some((arena.len() - 1) as u32);
                    owned[id] = true;
                }
            }
            let in_id = block_in[id].expect("queued block has a state");
            scratch.clone_from(&arena[in_id as usize]);
            probe.state_cloned();
            let start = starts[id];
            let block = &cfg.blocks[&start];
            let mut dirty = false;
            for &at in &block.insts {
                let d = &disasm.insts[&at];
                if let Some(tid) = resolved_call_target(cg, at).and_then(id_of) {
                    let seed = scratch.call_seed();
                    let m = merge_into(
                        &mut arena,
                        &mut block_in,
                        &mut owned,
                        probe,
                        tid,
                        &seed,
                        None,
                    );
                    if m.changed {
                        work.insert(tid);
                        // A self-targeted seed may have joined into our
                        // own (owned) slot in place; don't offer that
                        // slot's id to successors as the clean in-state.
                        dirty |= tid == id;
                    }
                }
                dirty |= transfer(&mut scratch, d.inst, at, window, cg, summaries);
            }
            // A clean chain means the out-state *is* the in-state, so
            // successors may share its arena id.
            let out_id = if dirty { None } else { Some(in_id) };
            for &succ in &block.succs {
                if let Some(sid) = id_of(succ) {
                    let m = merge_into(
                        &mut arena,
                        &mut block_in,
                        &mut owned,
                        probe,
                        sid,
                        &scratch,
                        out_id,
                    );
                    if m.shared {
                        // Two blocks now reference the slot; neither may
                        // join into it in place.
                        owned[id] = false;
                    }
                    if m.changed {
                        work.insert(sid);
                    }
                }
            }
        }
        probe.fixpoint_done();

        // Converged: materialise per-instruction pre-states in order.
        // Instructions whose transfer left the state untouched share
        // the previous arena id; only a lattice-moving instruction
        // interns a fresh state.
        let mut state_in = BTreeMap::new();
        for (id, (start, block)) in cfg.blocks.iter().enumerate() {
            debug_assert_eq!(*start, starts[id]);
            let Some(mut cur_id) = block_in[id] else {
                continue;
            };
            scratch.clone_from(&arena[cur_id as usize]);
            probe.state_cloned();
            let mut dirty = false;
            for &at in &block.insts {
                if dirty {
                    arena.push(scratch.clone());
                    probe.state_cloned();
                    cur_id = (arena.len() - 1) as u32;
                    dirty = false;
                } else {
                    probe.state_shared();
                }
                state_in.insert(at, cur_id);
                dirty |= transfer(
                    &mut scratch,
                    disasm.insts[&at].inst,
                    at,
                    window,
                    cg,
                    summaries,
                );
            }
        }
        probe.materialize_done();
        AbsInt {
            states: arena,
            state_in,
        }
    }
}

/// What [`merge_into`] did: whether the join moved the target's lattice
/// (re-queue it) and whether the incoming state was adopted by arena id
/// (the donor must then give up in-place mutation rights).
struct MergeOutcome {
    changed: bool,
    shared: bool,
}

/// Merges `state` into block `id`'s in-state under the copy-on-write
/// discipline. `src` carries the incoming state's arena id when it is
/// already interned (a clean out-state); a first merge then shares the
/// id instead of cloning. Joins mutate in place only when the target
/// owns its slot; otherwise the joined state is interned fresh so
/// sharers never observe the write. Merging into an address with no
/// block used to park a state in the map that nothing ever read; the
/// dense arena just skips it.
fn merge_into<P: Probe>(
    arena: &mut Vec<AbsState>,
    block_in: &mut [Option<u32>],
    owned: &mut [bool],
    probe: &mut P,
    id: usize,
    state: &AbsState,
    src: Option<u32>,
) -> MergeOutcome {
    let outcome = match block_in[id] {
        Some(cur) => {
            let old = &arena[cur as usize];
            let joined = old.join(state);
            let changed = &joined != old;
            if changed {
                if owned[id] {
                    arena[cur as usize] = joined;
                } else {
                    arena.push(joined);
                    block_in[id] = Some((arena.len() - 1) as u32);
                    owned[id] = true;
                }
            }
            MergeOutcome {
                changed,
                shared: false,
            }
        }
        None => match src {
            Some(sid) => {
                block_in[id] = Some(sid);
                owned[id] = false;
                probe.state_shared();
                MergeOutcome {
                    changed: true,
                    shared: true,
                }
            }
            None => {
                arena.push(state.clone());
                block_in[id] = Some((arena.len() - 1) as u32);
                owned[id] = true;
                probe.state_cloned();
                MergeOutcome {
                    changed: true,
                    shared: false,
                }
            }
        },
    };
    probe.state_merged(outcome.changed);
    outcome
}

/// Resolved in-image destination of a call instruction at `at`, if any.
fn resolved_call_target(cg: &CallGraph, at: u64) -> Option<u64> {
    cg.site_targets.get(&at).copied()
}

/// One-instruction transfer function (mutates `state` in place).
/// Returns whether the state actually moved — the copy-on-write driver
/// uses this dirty bit to share untouched states by arena id.
fn transfer(
    state: &mut AbsState,
    inst: Inst,
    at: u64,
    window: u16,
    cg: &CallGraph,
    summaries: &Summaries,
) -> bool {
    match inst {
        Inst::MovImm32 { reg, imm } => state.set_reg(
            reg,
            AbsValue::Const {
                v: i64::from(imm),
                def: Some((at, 5)),
            },
        ),
        Inst::MovImm32SxR64 { reg, imm } => state.set_reg(
            reg,
            AbsValue::Const {
                v: i64::from(imm),
                def: Some((at, 7)),
            },
        ),
        Inst::XorEaxEax => state.set_reg(
            Reg::Rax,
            AbsValue::Const {
                v: 0,
                def: Some((at, 2)),
            },
        ),
        Inst::MovRegReg64 { dst, src } => {
            let v = state.reg(src).redef(at, 3);
            state.set_reg(dst, v)
        }
        Inst::LoadRspDisp8R64 { reg, disp } => {
            let v = state
                .slots
                .get(&disp)
                .copied()
                .unwrap_or(AbsValue::Top)
                .redef(at, 5);
            state.set_reg(reg, v)
        }
        Inst::LoadRspDisp8R32 { reg, disp } => {
            // 32-bit load zero-extends; only constants already in u32
            // range survive the truncation claim.
            let v = match state.slots.get(&disp) {
                Some(AbsValue::Const { v, .. }) if (0..=i64::from(u32::MAX)).contains(v) => {
                    AbsValue::Const {
                        v: *v,
                        def: Some((at, 4)),
                    }
                }
                _ => AbsValue::Top,
            };
            state.set_reg(reg, v)
        }
        Inst::StoreRspDisp8R64 { reg, disp } => {
            // An 8-byte store invalidates any tracked slot it overlaps,
            // then records the stored value at `disp` when it is inside
            // the tracked window and informative.
            let lo = disp.saturating_sub(7);
            let hi = disp.saturating_add(7);
            let new = if u16::from(disp) < window {
                Some(state.reg(reg)).filter(|&v| v != AbsValue::Top)
            } else {
                None
            };
            let stale: Vec<u8> = state
                .slots
                .range(lo..=hi)
                .map(|(&k, _)| k)
                .filter(|&k| k != disp)
                .collect();
            let mut changed = !stale.is_empty();
            for k in stale {
                state.slots.remove(&k);
            }
            match new {
                Some(v) => changed |= state.slots.insert(disp, v) != Some(v),
                None => changed |= state.slots.remove(&disp).is_some(),
            }
            changed
        }
        Inst::Syscall => {
            let mut changed = state.set_reg(Reg::Rax, AbsValue::Top);
            changed |= state.set_reg(Reg::Rcx, AbsValue::Top);
            changed | state.clear_slots()
        }
        Inst::CallRel32 { .. } | Inst::CallAbsIndirect { .. } => {
            let mut changed = match resolved_call_target(cg, at) {
                Some(target) => {
                    let s = summaries.summary(target);
                    let pre_rax = state.reg(Reg::Rax);
                    let mut changed = false;
                    for code in 0..8u8 {
                        if s.clobbers & (1 << code) != 0 {
                            changed |= state.regs[code as usize] != AbsValue::Top;
                            state.regs[code as usize] = AbsValue::Top;
                        }
                    }
                    let rax = match s.rax {
                        RaxEffect::Preserved => pre_rax,
                        // A summary constant has no caller-side defining
                        // instruction, so it never yields a region.
                        RaxEffect::Const(v) => AbsValue::Const { v, def: None },
                        RaxEffect::ArgReg(_) | RaxEffect::Unknown => {
                            if s.clobbers & reg_bit(Reg::Rax) != 0 {
                                AbsValue::Top
                            } else {
                                pre_rax
                            }
                        }
                    };
                    changed | state.set_reg(Reg::Rax, rax)
                }
                None => {
                    let changed = state.regs != [AbsValue::Top; 8];
                    state.regs = [AbsValue::Top; 8];
                    changed
                }
            };
            changed |= state.clear_slots();
            changed
        }
        Inst::PushRbp | Inst::AddRspImm8 { .. } | Inst::SubRspImm8 { .. } => {
            state.set_reg(Reg::Rsp, AbsValue::Top) | state.clear_slots()
        }
        Inst::PopRbp | Inst::Leave => {
            state.set_reg(Reg::Rsp, AbsValue::Top)
                | state.set_reg(Reg::Rbp, AbsValue::Top)
                | state.clear_slots()
        }
        Inst::Nop
        | Inst::Ret
        | Inst::Int3
        | Inst::Ud2
        | Inst::TestEaxEax
        | Inst::JmpRel8 { .. }
        | Inst::JmpRel32 { .. }
        | Inst::JccRel8 { .. } => false,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::disasm::disassemble_image;
    use crate::verifier::VerifierConfig;
    use xc_isa::asm::Assembler;

    fn run(a: Assembler) -> (Disassembly, AbsInt) {
        let image = a.finish().unwrap();
        let d = disassemble_image(&image);
        let cfg = Cfg::build(&d);
        let cg = CallGraph::build(&d, &cfg);
        let config = VerifierConfig::default();
        let summaries = Summaries::build(&d, &cfg, &cg, config.max_summary_depth);
        let a = AbsInt::analyze(&d, &cfg, &cg, &summaries, config.stack_window_slots);
        (d, a)
    }

    fn syscall_addrs(d: &Disassembly) -> Vec<u64> {
        d.insts
            .iter()
            .filter(|(_, dec)| dec.inst == Inst::Syscall)
            .map(|(&at, _)| at)
            .collect()
    }

    #[test]
    fn constant_flows_through_identity_shim() {
        let mut a = Assembler::new(0x1000);
        a.label("wrapper").unwrap();
        a.inst(Inst::MovImm32 {
            reg: Reg::Rdi,
            imm: 39,
        });
        a.call_to("shim");
        a.inst(Inst::Ret);
        a.label("shim").unwrap();
        let copy_at = a.here();
        a.inst(Inst::MovRegReg64 {
            dst: Reg::Rax,
            src: Reg::Rdi,
        });
        a.inst(Inst::Syscall);
        a.inst(Inst::Ret);
        let (d, ai) = run(a);
        let syscalls = syscall_addrs(&d);
        assert_eq!(syscalls.len(), 1);
        assert_eq!(
            ai.rax_at(syscalls[0]),
            AbsValue::Const {
                v: 39,
                def: Some((copy_at, 3)),
            }
        );
    }

    #[test]
    fn two_callers_with_different_numbers_join_to_interval() {
        let mut a = Assembler::new(0x1000);
        a.label("caller_a").unwrap();
        a.inst(Inst::MovImm32 {
            reg: Reg::Rdi,
            imm: 0,
        });
        a.call_to("shim");
        a.inst(Inst::Ret);
        a.label("caller_b").unwrap();
        a.inst(Inst::MovImm32 {
            reg: Reg::Rdi,
            imm: 60,
        });
        a.call_to("shim");
        a.inst(Inst::Ret);
        a.label("shim").unwrap();
        a.inst(Inst::MovRegReg64 {
            dst: Reg::Rax,
            src: Reg::Rdi,
        });
        a.inst(Inst::Syscall);
        a.inst(Inst::Ret);
        let (d, ai) = run(a);
        let syscalls = syscall_addrs(&d);
        assert_eq!(ai.rax_at(syscalls[0]), AbsValue::Interval { lo: 0, hi: 60 });
    }

    #[test]
    fn spill_and_reload_keeps_the_constant_and_redefs_to_the_load() {
        let mut a = Assembler::new(0x1000);
        a.label("f").unwrap();
        a.inst(Inst::MovImm32 {
            reg: Reg::Rdi,
            imm: 7,
        });
        a.inst(Inst::StoreRspDisp8R64 {
            reg: Reg::Rdi,
            disp: 0x10,
        });
        let load_at = a.here();
        a.inst(Inst::LoadRspDisp8R64 {
            reg: Reg::Rax,
            disp: 0x10,
        });
        a.inst(Inst::Syscall);
        a.inst(Inst::Ret);
        let (d, ai) = run(a);
        let syscalls = syscall_addrs(&d);
        assert_eq!(
            ai.rax_at(syscalls[0]),
            AbsValue::Const {
                v: 7,
                def: Some((load_at, 5)),
            }
        );
    }

    #[test]
    fn overlapping_store_invalidates_tracked_slot() {
        let mut a = Assembler::new(0x1000);
        a.label("f").unwrap();
        a.inst(Inst::MovImm32 {
            reg: Reg::Rdi,
            imm: 7,
        });
        a.inst(Inst::StoreRspDisp8R64 {
            reg: Reg::Rdi,
            disp: 0x10,
        });
        // Unknown value clobbers [0x14, 0x1c) which overlaps slot 0x10.
        a.inst(Inst::StoreRspDisp8R64 {
            reg: Reg::Rsi,
            disp: 0x14,
        });
        a.inst(Inst::LoadRspDisp8R64 {
            reg: Reg::Rax,
            disp: 0x10,
        });
        a.inst(Inst::Syscall);
        a.inst(Inst::Ret);
        let (d, ai) = run(a);
        let syscalls = syscall_addrs(&d);
        assert_eq!(ai.rax_at(syscalls[0]), AbsValue::Top);
    }

    #[test]
    fn call_applies_callee_clobbers_but_preserves_the_rest() {
        let mut a = Assembler::new(0x1000);
        a.label("caller").unwrap();
        a.inst(Inst::MovImm32 {
            reg: Reg::Rbx,
            imm: 11,
        });
        a.inst(Inst::MovImm32 {
            reg: Reg::Rax,
            imm: 1,
        });
        a.call_to("noisy");
        let after_call = a.here();
        a.inst(Inst::Syscall);
        a.inst(Inst::Ret);
        a.label("noisy").unwrap();
        a.inst(Inst::Syscall); // clobbers rax + rcx
        a.inst(Inst::Ret);
        let (_, ai) = run(a);
        let state = ai.state_at(after_call).unwrap();
        // rax was clobbered by the callee's syscall; rbx survived.
        assert_eq!(state.reg(Reg::Rax), AbsValue::Top);
        assert_eq!(state.reg(Reg::Rbx).as_const(), Some(11));
    }

    #[test]
    fn entry_state_is_top() {
        let mut a = Assembler::new(0x1000);
        a.label("f").unwrap();
        let first = a.here();
        a.inst(Inst::Syscall);
        a.inst(Inst::Ret);
        let (_, ai) = run(a);
        assert_eq!(ai.rax_at(first), AbsValue::Top);
    }
}
