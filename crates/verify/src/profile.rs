//! Self-timing probes for the abstract-interpretation fixpoint.
//!
//! [`crate::AbsInt::analyze`] runs through a generic driver that calls
//! into a [`Probe`] at the worklist's hot points. The default probe
//! methods are empty `#[inline]` bodies and the production path
//! monomorphizes against the [`NoProbe`] ZST, so the hooks compile to
//! nothing unless a caller opts into the `profile` feature and runs
//! [`crate::AbsInt::analyze_profiled`] — the classic zero-cost
//! instrumentation seam.

/// Observation points inside the worklist driver. Every method has an
/// empty inlined default so a probe only pays for what it overrides.
pub(crate) trait Probe {
    /// A block was popped off the worklist (one fixpoint iteration).
    #[inline]
    fn block_popped(&mut self) {}

    /// An edge state was merged into a block's in-state; `changed` is
    /// whether the join moved the lattice (and re-queued the target).
    #[inline]
    fn state_merged(&mut self, changed: bool) {
        let _ = changed;
    }

    /// An `AbsState` was physically copied (scratch refresh, first-merge
    /// intern, or a materialisation intern). Together with
    /// [`Probe::state_shared`] this accounts for every point the
    /// pre-copy-on-write driver cloned: `cloned + shared` is the old
    /// clone count.
    #[inline]
    fn state_cloned(&mut self) {}

    /// An `AbsState` was adopted by arena id where the pre-CoW driver
    /// would have cloned it.
    #[inline]
    fn state_shared(&mut self) {}

    /// The worklist drained — the fixpoint phase is over.
    #[inline]
    fn fixpoint_done(&mut self) {}

    /// Per-instruction pre-states have been materialised.
    #[inline]
    fn materialize_done(&mut self) {}
}

/// The production probe: every hook is a no-op, erased by inlining.
pub(crate) struct NoProbe;

impl Probe for NoProbe {}

#[cfg(feature = "profile")]
mod timing {
    use std::time::Instant;

    /// Counters and phase wall times from one profiled analysis run
    /// (see [`crate::AbsInt::analyze_profiled`]). Wall times are
    /// host-dependent; the counters are deterministic per image.
    #[derive(Debug, Clone)]
    pub struct AbsIntProfile {
        /// Worklist pops (fixpoint iterations).
        pub pops: u64,
        /// Edge-state merges attempted.
        pub merges: u64,
        /// Merges that moved the lattice and re-queued a block.
        pub merges_changed: u64,
        /// `AbsState`s physically copied (scratch refreshes plus arena
        /// interns). `states_cloned + states_shared` is what the
        /// pre-copy-on-write driver cloned.
        pub states_cloned: u64,
        /// `AbsState`s adopted by arena id instead of cloned.
        pub states_shared: u64,
        /// Wall time of the fixpoint phase, in nanoseconds.
        pub fixpoint_nanos: u64,
        /// Wall time of the materialisation phase, in nanoseconds.
        pub materialize_nanos: u64,
        started: Instant,
        fixpoint_end: Option<Instant>,
    }

    impl AbsIntProfile {
        pub(crate) fn new() -> Self {
            AbsIntProfile {
                pops: 0,
                merges: 0,
                merges_changed: 0,
                states_cloned: 0,
                states_shared: 0,
                fixpoint_nanos: 0,
                materialize_nanos: 0,
                started: Instant::now(),
                fixpoint_end: None,
            }
        }
    }

    impl super::Probe for AbsIntProfile {
        #[inline]
        fn block_popped(&mut self) {
            self.pops += 1;
        }

        #[inline]
        fn state_merged(&mut self, changed: bool) {
            self.merges += 1;
            self.merges_changed += u64::from(changed);
        }

        #[inline]
        fn state_cloned(&mut self) {
            self.states_cloned += 1;
        }

        #[inline]
        fn state_shared(&mut self) {
            self.states_shared += 1;
        }

        fn fixpoint_done(&mut self) {
            let now = Instant::now();
            self.fixpoint_nanos = now.duration_since(self.started).as_nanos() as u64;
            self.fixpoint_end = Some(now);
        }

        fn materialize_done(&mut self) {
            let end = self.fixpoint_end.unwrap_or(self.started);
            self.materialize_nanos = end.elapsed().as_nanos() as u64;
        }
    }
}

#[cfg(feature = "profile")]
pub use timing::AbsIntProfile;
