//! Register dataflow over the CFG.
//!
//! Two analyses back the per-site verdicts:
//!
//! * **Forward `%rax` reaching-value** — which syscall number (if any)
//!   provably reaches each `syscall` instruction, and from which single
//!   defining `mov`. ABOM's 7/9-byte replacements fold the number into an
//!   indexed vsyscall entry, so the number must be one compile-time
//!   constant with one definition site adjacent in the patch region.
//! * **Backward `%rcx` liveness** — `syscall` clobbers `%rcx` (saved
//!   `%rip`) and `%r11` (saved `RFLAGS`); the replacement `call` preserves
//!   both. Rewriting is observation-equivalent only where no live use of
//!   `%rcx` follows the site. `%r11` is not representable in the 8-register
//!   `xc-isa` subset, so its liveness is vacuously false and needs no
//!   analysis — noted here so the asymmetry is deliberate, not forgotten.
//!
//! Both analyses are conservative in the same direction: when in doubt,
//! `%rax` becomes [`RaxValue::Unknown`] and `%rcx` becomes live, each of
//! which blocks a `Safe` verdict.

use std::collections::BTreeMap;

use xc_isa::inst::{Inst, Reg};

use crate::cfg::Cfg;
use crate::disasm::Disassembly;

/// The abstract value of `%rax` at a program point (a join semilattice:
/// `Unreached ⊑ Const ⊑ MultipleDefs ⊑ Unknown`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RaxValue {
    /// No path reaches this point (⊥).
    Unreached,
    /// A single `mov` instruction's constant reaches here on every path.
    Const {
        /// The constant (sign-extended for `MovImm32SxR64`).
        nr: i64,
        /// Address of the defining instruction.
        mov_addr: u64,
        /// Encoded length of the defining instruction.
        mov_len: u8,
    },
    /// A compile-time constant reaches here, but from more than one
    /// definition site — no single region covers the definition.
    MultipleDefs,
    /// Anything: loaded from memory, copied from a register, a syscall or
    /// call return value, or an entry-point assumption (⊤).
    Unknown,
}

impl RaxValue {
    /// Least upper bound of two values.
    pub fn join(self, other: RaxValue) -> RaxValue {
        use RaxValue::*;
        match (self, other) {
            (Unreached, x) | (x, Unreached) => x,
            (Unknown, _) | (_, Unknown) => Unknown,
            (Const { mov_addr: a, .. }, Const { mov_addr: b, .. }) if a == b => self,
            _ => MultipleDefs,
        }
    }

    /// Applies one instruction's effect on `%rax`.
    pub fn transfer(self, at: u64, inst: &Inst) -> RaxValue {
        match *inst {
            Inst::MovImm32 { reg: Reg::Rax, imm } => RaxValue::Const {
                nr: i64::from(imm),
                mov_addr: at,
                mov_len: 5,
            },
            Inst::MovImm32SxR64 { reg: Reg::Rax, imm } => RaxValue::Const {
                nr: i64::from(imm),
                mov_addr: at,
                mov_len: 7,
            },
            Inst::XorEaxEax => RaxValue::Const {
                nr: 0,
                mov_addr: at,
                mov_len: 2,
            },
            Inst::LoadRspDisp8R32 { reg: Reg::Rax, .. }
            | Inst::LoadRspDisp8R64 { reg: Reg::Rax, .. }
            | Inst::MovRegReg64 { dst: Reg::Rax, .. }
            | Inst::Syscall
            | Inst::CallRel32 { .. }
            | Inst::CallAbsIndirect { .. } => RaxValue::Unknown,
            _ => self,
        }
    }
}

/// Results of both dataflow passes, indexed by instruction address.
#[derive(Debug, Clone)]
pub struct Dataflow {
    /// `%rax` value *on entry to* each instruction.
    pub rax_in: BTreeMap<u64, RaxValue>,
    /// Whether `%rcx` is live *after* each instruction executes.
    pub rcx_live_out: BTreeMap<u64, bool>,
}

impl Dataflow {
    /// Runs both analyses to fixpoint over `cfg`.
    pub fn run(disasm: &Disassembly, cfg: &Cfg) -> Dataflow {
        let rax_in = rax_forward(disasm, cfg);
        let rcx_live_out = rcx_backward(disasm, cfg);
        Dataflow {
            rax_in,
            rcx_live_out,
        }
    }
}

/// Forward worklist pass: `%rax` value at each instruction entry.
///
/// Block-entry boundary conditions: descent entry points and direct-call
/// targets start at `Unknown` (callers may pass anything); a block with no
/// predecessors and no entry marking is unreachable and stays `Unreached`.
fn rax_forward(disasm: &Disassembly, cfg: &Cfg) -> BTreeMap<u64, RaxValue> {
    use crate::cfg::EdgeKind;

    let mut block_in: BTreeMap<u64, RaxValue> = BTreeMap::new();
    for &start in cfg.blocks.keys() {
        block_in.insert(start, RaxValue::Unreached);
    }
    for &entry in &disasm.entries {
        block_in.insert(entry, RaxValue::Unknown);
    }
    for e in &cfg.edges {
        if e.kind == EdgeKind::Call && cfg.blocks.contains_key(&e.target) {
            block_in.insert(e.target, RaxValue::Unknown);
        }
    }

    let mut worklist: Vec<u64> = cfg.blocks.keys().copied().collect();
    let mut block_out: BTreeMap<u64, RaxValue> = BTreeMap::new();
    let mut rax_in = BTreeMap::new();
    while let Some(start) = worklist.pop() {
        let block = &cfg.blocks[&start];
        let mut v = block_in[&start];
        for &at in &block.insts {
            rax_in.insert(at, v);
            v = v.transfer(at, &disasm.insts[&at].inst);
        }
        let changed = block_out.insert(start, v) != Some(v);
        if changed {
            for &succ in &block.succs {
                let joined = block_in[&succ].join(v);
                if joined != block_in[&succ] {
                    block_in.insert(succ, joined);
                    worklist.push(succ);
                }
            }
        }
    }
    // One final in-order pass so `rax_in` reflects the fixpoint `block_in`.
    for (start, block) in &cfg.blocks {
        let mut v = block_in[start];
        for &at in &block.insts {
            rax_in.insert(at, v);
            v = v.transfer(at, &disasm.insts[&at].inst);
        }
    }
    rax_in
}

/// `%rcx` access classification for the backward pass.
fn rcx_use_def(inst: &Inst) -> (bool, bool) {
    // (reads rcx, writes rcx)
    match *inst {
        // rcx is the 4th SysV argument register: assume every call reads it.
        Inst::CallRel32 { .. } | Inst::CallAbsIndirect { .. } => (true, false),
        // A spill publishes the current rcx value to memory: that is a read.
        Inst::StoreRspDisp8R64 { reg: Reg::Rcx, .. } => (true, false),
        Inst::MovRegReg64 { src: Reg::Rcx, dst } => (true, dst == Reg::Rcx),
        Inst::MovRegReg64 { dst: Reg::Rcx, .. }
        | Inst::MovImm32 { reg: Reg::Rcx, .. }
        | Inst::MovImm32SxR64 { reg: Reg::Rcx, .. }
        | Inst::LoadRspDisp8R32 { reg: Reg::Rcx, .. }
        | Inst::LoadRspDisp8R64 { reg: Reg::Rcx, .. } => (false, true),
        // syscall clobbers rcx with the return rip.
        Inst::Syscall => (false, true),
        _ => (false, false),
    }
}

/// Backward worklist pass: is `%rcx` live after each instruction?
///
/// Exit boundary conditions: dead at `ret` (caller-saved per SysV) and at
/// traps; live when the block ends at an undecodable gap or falls off the
/// image (we cannot see the continuation).
fn rcx_backward(disasm: &Disassembly, cfg: &Cfg) -> BTreeMap<u64, bool> {
    let mut block_out: BTreeMap<u64, bool> = BTreeMap::new();
    for (&start, block) in &cfg.blocks {
        let last = *block.insts.last().expect("blocks are non-empty");
        let terminator = &disasm.insts[&last].inst;
        let v = match terminator {
            Inst::Ret | Inst::Int3 | Inst::Ud2 => false,
            // Jumps / jcc: liveness flows from successors instead.
            _ if !block.succs.is_empty() => false,
            // Block ends without successors for another reason (gap, image
            // edge, branch to a non-block address): assume live.
            _ => true,
        };
        block_out.insert(start, v);
    }

    let mut preds_of: BTreeMap<u64, Vec<u64>> = BTreeMap::new();
    for (&start, block) in &cfg.blocks {
        for &s in &block.succs {
            preds_of.entry(s).or_default().push(start);
        }
    }

    let mut block_in_live: BTreeMap<u64, bool> = BTreeMap::new();
    let mut worklist: Vec<u64> = cfg.blocks.keys().copied().collect();
    while let Some(start) = worklist.pop() {
        let block = &cfg.blocks[&start];
        let mut live = block_out[&start]
            || block
                .succs
                .iter()
                .any(|s| block_in_live.get(s).copied().unwrap_or(false));
        for &at in block.insts.iter().rev() {
            let (reads, writes) = rcx_use_def(&disasm.insts[&at].inst);
            if writes {
                live = false;
            }
            if reads {
                live = true;
            }
        }
        let changed = block_in_live.insert(start, live) != Some(live);
        if changed {
            if let Some(preds) = preds_of.get(&start) {
                worklist.extend(preds.iter().copied());
            }
        }
    }

    // Final pass materializing per-instruction live-out.
    let mut rcx_live_out = BTreeMap::new();
    for (&start, block) in &cfg.blocks {
        let mut live = block_out[&start]
            || block
                .succs
                .iter()
                .any(|s| block_in_live.get(s).copied().unwrap_or(false));
        for &at in block.insts.iter().rev() {
            rcx_live_out.insert(at, live);
            let (reads, writes) = rcx_use_def(&disasm.insts[&at].inst);
            if writes {
                live = false;
            }
            if reads {
                live = true;
            }
        }
    }
    rcx_live_out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::disasm::disassemble_image;
    use xc_isa::asm::Assembler;
    use xc_isa::inst::Cond;

    fn analyze(a: Assembler) -> (Disassembly, Cfg, Dataflow) {
        let image = a.finish().unwrap();
        let d = disassemble_image(&image);
        let cfg = Cfg::build(&d);
        let df = Dataflow::run(&d, &cfg);
        (d, cfg, df)
    }

    #[test]
    fn const_reaches_syscall_in_straight_line() {
        let mut a = Assembler::new(0x1000);
        a.label("w").unwrap();
        a.inst(Inst::MovImm32 {
            reg: Reg::Rax,
            imm: 39,
        });
        a.inst(Inst::Syscall); // at 0x1005
        a.inst(Inst::Ret);
        let (_, _, df) = analyze(a);
        assert_eq!(
            df.rax_in[&0x1005],
            RaxValue::Const {
                nr: 39,
                mov_addr: 0x1000,
                mov_len: 5
            }
        );
        // rcx is clobber-dead: nothing reads it before the ret.
        assert!(!df.rcx_live_out[&0x1005]);
    }

    #[test]
    fn const_survives_conditional_join() {
        // mov; test; je skip; nop; skip: syscall — one def, two paths.
        let mut a = Assembler::new(0x1000);
        a.label("w").unwrap();
        a.inst(Inst::MovImm32 {
            reg: Reg::Rax,
            imm: 3,
        });
        a.inst(Inst::TestEaxEax);
        a.jcc_to(Cond::E, "skip");
        a.inst(Inst::Nop);
        a.label("skip").unwrap();
        a.inst(Inst::Syscall);
        a.inst(Inst::Ret);
        let image = a.finish().unwrap();
        let syscall_at = image.symbol("skip").unwrap();
        let d = disassemble_image(&image);
        let cfg = Cfg::build(&d);
        let df = Dataflow::run(&d, &cfg);
        assert_eq!(
            df.rax_in[&syscall_at],
            RaxValue::Const {
                nr: 3,
                mov_addr: 0x1000,
                mov_len: 5
            }
        );
    }

    #[test]
    fn two_defs_join_to_multiple_defs() {
        let mut a = Assembler::new(0x1000);
        a.label("w").unwrap();
        a.inst(Inst::TestEaxEax);
        a.jcc_to(Cond::E, "other");
        a.inst(Inst::MovImm32 {
            reg: Reg::Rax,
            imm: 1,
        });
        a.jmp_short_to("join");
        a.label("other").unwrap();
        a.inst(Inst::MovImm32 {
            reg: Reg::Rax,
            imm: 2,
        });
        a.label("join").unwrap();
        a.inst(Inst::Syscall);
        a.inst(Inst::Ret);
        let image = a.finish().unwrap();
        let syscall_at = image.symbol("join").unwrap();
        let d = disassemble_image(&image);
        let cfg = Cfg::build(&d);
        let df = Dataflow::run(&d, &cfg);
        assert_eq!(df.rax_in[&syscall_at], RaxValue::MultipleDefs);
    }

    #[test]
    fn register_copy_and_stack_load_are_unknown() {
        let mut a = Assembler::new(0x1000);
        a.label("w").unwrap();
        a.inst(Inst::MovRegReg64 {
            dst: Reg::Rax,
            src: Reg::Rdi,
        });
        a.inst(Inst::Syscall); // 0x1003
        a.inst(Inst::LoadRspDisp8R64 {
            reg: Reg::Rax,
            disp: 8,
        });
        a.inst(Inst::Syscall); // 0x100a
        a.inst(Inst::Ret);
        let (_, _, df) = analyze(a);
        assert_eq!(df.rax_in[&0x1003], RaxValue::Unknown);
        assert_eq!(df.rax_in[&0x100a], RaxValue::Unknown);
    }

    #[test]
    fn rcx_read_after_syscall_is_live() {
        let mut a = Assembler::new(0x1000);
        a.label("w").unwrap();
        a.inst(Inst::MovImm32 {
            reg: Reg::Rax,
            imm: 0,
        });
        a.inst(Inst::Syscall); // 0x1005
        a.inst(Inst::MovRegReg64 {
            dst: Reg::Rdx,
            src: Reg::Rcx,
        });
        a.inst(Inst::Ret);
        let (_, _, df) = analyze(a);
        assert!(df.rcx_live_out[&0x1005]);
    }

    #[test]
    fn call_makes_rcx_conservatively_live() {
        let mut a = Assembler::new(0x1000);
        a.label("w").unwrap();
        a.inst(Inst::Syscall); // 0x1000
        a.call_to("helper");
        a.inst(Inst::Ret);
        a.label("helper").unwrap();
        a.inst(Inst::Ret);
        let (_, _, df) = analyze(a);
        assert!(df.rcx_live_out[&0x1000]);
    }

    #[test]
    fn rcx_write_kills_liveness() {
        let mut a = Assembler::new(0x1000);
        a.label("w").unwrap();
        a.inst(Inst::Syscall); // 0x1000
        a.inst(Inst::MovImm32 {
            reg: Reg::Rcx,
            imm: 0,
        });
        a.inst(Inst::MovRegReg64 {
            dst: Reg::Rdx,
            src: Reg::Rcx,
        });
        a.inst(Inst::Ret);
        let (_, _, df) = analyze(a);
        assert!(!df.rcx_live_out[&0x1000]);
    }
}
