//! Whole-image call graph over the hybrid disassembly.
//!
//! Nodes are *function heads*: the image's external entry points plus
//! every resolved call destination. Direct `call rel32` targets resolve
//! trivially; `call *disp32` targets resolve when the absolute address is
//! provably constant (it is encoded in the instruction) **and** lands on
//! an in-image sweep boundary — the jump-table/indirect case the subset
//! admits. Everything else (vsyscall-page calls) stays an unresolved
//! escape, which the summary layer treats as clobber-everything.
//!
//! A function's *body* is the set of basic blocks reachable from its head
//! along intraprocedural successor edges (call edges excluded: control
//! returns). Bodies may overlap when code is shared by fall-through —
//! that is fine, every consumer of a body is conservative over a
//! superset.

use std::collections::BTreeMap;
use std::collections::BTreeSet;

use xc_isa::inst::Inst;

use crate::cfg::Cfg;
use crate::disasm::Disassembly;

/// The call graph of one image.
#[derive(Debug, Clone, Default)]
pub struct CallGraph {
    /// Function head addresses: entries plus resolved call targets.
    pub nodes: BTreeSet<u64>,
    /// Call-site address → resolved in-image destination. Sites whose
    /// destination cannot be proven constant and in-image are *absent*
    /// (the conservative escape set).
    pub site_targets: BTreeMap<u64, u64>,
    /// Call-site addresses with **no** resolvable in-image destination
    /// (vsyscall-page and other external calls).
    pub unresolved_sites: BTreeSet<u64>,
    /// Function head → block start addresses of its intraprocedural body.
    pub bodies: BTreeMap<u64, BTreeSet<u64>>,
    /// Function head → heads of the functions it calls (resolved only).
    pub callees: BTreeMap<u64, BTreeSet<u64>>,
    /// Function head → whether its body contains an unresolved call.
    pub has_unresolved_call: BTreeMap<u64, bool>,
}

impl CallGraph {
    /// Builds the call graph from the disassembly and CFG.
    pub fn build(disasm: &Disassembly, cfg: &Cfg) -> CallGraph {
        let mut site_targets = BTreeMap::new();
        let mut unresolved_sites = BTreeSet::new();
        for (&at, d) in &disasm.insts {
            match d.inst {
                Inst::CallRel32 { .. } => {
                    let t = d.inst.branch_target(at).expect("call rel32 has target");
                    if cfg.blocks.contains_key(&t) {
                        site_targets.insert(at, t);
                    } else {
                        unresolved_sites.insert(at);
                    }
                }
                Inst::CallAbsIndirect { target } => {
                    // The indirect destination is a compile-time constant
                    // encoded in the instruction; it resolves exactly when
                    // it names an in-image block head.
                    if (disasm.base()..disasm.end()).contains(&target)
                        && cfg.blocks.contains_key(&target)
                    {
                        site_targets.insert(at, target);
                    } else {
                        unresolved_sites.insert(at);
                    }
                }
                _ => {}
            }
        }

        let mut nodes: BTreeSet<u64> = disasm
            .entries
            .iter()
            .copied()
            .filter(|e| cfg.blocks.contains_key(e))
            .collect();
        nodes.extend(site_targets.values().copied());

        let mut cg = CallGraph {
            nodes,
            site_targets,
            unresolved_sites,
            ..CallGraph::default()
        };
        for &head in &cg.nodes.clone() {
            let body = cg.body_blocks(head, cfg);
            let mut callees = BTreeSet::new();
            let mut unresolved = false;
            for &start in &body {
                for at in &cfg.blocks[&start].insts {
                    if let Some(&t) = cg.site_targets.get(at) {
                        callees.insert(t);
                    }
                    if cg.unresolved_sites.contains(at) {
                        unresolved = true;
                    }
                }
            }
            cg.bodies.insert(head, body);
            cg.callees.insert(head, callees);
            cg.has_unresolved_call.insert(head, unresolved);
        }
        cg
    }

    /// Blocks reachable from `head` along intraprocedural edges.
    fn body_blocks(&self, head: u64, cfg: &Cfg) -> BTreeSet<u64> {
        let mut seen = BTreeSet::new();
        let mut stack = vec![head];
        while let Some(b) = stack.pop() {
            if !cfg.blocks.contains_key(&b) || !seen.insert(b) {
                continue;
            }
            stack.extend(cfg.blocks[&b].succs.iter().copied());
        }
        seen
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::disasm::disassemble_image;
    use xc_isa::asm::Assembler;
    use xc_isa::inst::Reg;

    fn graph_of(a: Assembler) -> (CallGraph, Cfg) {
        let image = a.finish().unwrap();
        let d = disassemble_image(&image);
        let cfg = Cfg::build(&d);
        (CallGraph::build(&d, &cfg), cfg)
    }

    #[test]
    fn direct_call_resolves_and_makes_callee_a_node() {
        let mut a = Assembler::new(0x1000);
        a.label("main").unwrap();
        a.call_to("helper");
        a.inst(Inst::Ret);
        a.label("helper").unwrap();
        a.inst(Inst::Ret);
        let (cg, _) = graph_of(a);
        assert!(cg.nodes.contains(&0x1000));
        let helper = *cg.site_targets.get(&0x1000).unwrap();
        assert!(cg.nodes.contains(&helper));
        assert!(cg.callees[&0x1000].contains(&helper));
        assert!(!cg.has_unresolved_call[&0x1000]);
    }

    #[test]
    fn vsyscall_indirect_call_is_unresolved() {
        let mut a = Assembler::new(0x1000);
        a.label("patched").unwrap();
        a.inst(Inst::CallAbsIndirect {
            target: 0xffff_ffff_ff60_0008,
        });
        a.inst(Inst::Ret);
        let (cg, _) = graph_of(a);
        assert!(cg.unresolved_sites.contains(&0x1000));
        assert!(cg.has_unresolved_call[&0x1000]);
        assert!(cg.site_targets.is_empty());
    }

    #[test]
    fn in_image_constant_indirect_call_resolves() {
        // call *0x1008 where 0x1008 is a real function head.
        let mut a = Assembler::new(0x1000);
        a.label("main").unwrap();
        a.inst(Inst::CallAbsIndirect { target: 0x1008 });
        a.inst(Inst::Ret);
        assert_eq!(a.here(), 0x1008);
        a.label("helper").unwrap();
        a.inst(Inst::MovImm32 {
            reg: Reg::Rax,
            imm: 1,
        });
        a.inst(Inst::Ret);
        let (cg, _) = graph_of(a);
        assert_eq!(cg.site_targets.get(&0x1000), Some(&0x1008));
        assert!(cg.nodes.contains(&0x1008));
    }

    #[test]
    fn bodies_stay_intraprocedural() {
        let mut a = Assembler::new(0x1000);
        a.label("main").unwrap();
        a.call_to("helper");
        a.inst(Inst::Ret);
        a.label("helper").unwrap();
        a.inst(Inst::Nop);
        a.inst(Inst::Ret);
        let (cg, cfg) = graph_of(a);
        let helper_head = *cg.site_targets.get(&0x1000).unwrap();
        let main_body = &cg.bodies[&0x1000];
        // The callee's blocks are not part of the caller's body.
        assert!(!main_body.contains(&helper_head));
        assert!(cg.bodies[&helper_head].contains(&helper_head));
        assert!(cfg.blocks.contains_key(&helper_head));
    }
}
