//! Per-site verdicts and the whole-image verification report.

use std::fmt;

/// Why a site is provably unsafe to rewrite.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum UnsafeReason {
    /// Control enters the candidate patch region from outside it — a
    /// direct branch or an external entry point lands strictly inside the
    /// bytes the detour would overwrite.
    InteriorJumpTarget {
        /// The interior address that is entered from outside.
        target: u64,
    },
    /// An instruction inside the region branches to an address the detour
    /// trampoline cannot relocate faithfully (outside
    /// `[mov_end, syscall_addr]`).
    InteriorBranchEscapes {
        /// Address of the escaping branch.
        src: u64,
    },
    /// `%rcx` is live after the syscall: the original `syscall` clobbers
    /// it with the return `%rip`, the replacement `call` preserves it, so
    /// rewriting changes an observable value.
    RcxLiveAfterSite,
}

impl fmt::Display for UnsafeReason {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            UnsafeReason::InteriorJumpTarget { target } => {
                write!(f, "interior jump target at {target:#x}")
            }
            UnsafeReason::InteriorBranchEscapes { src } => {
                write!(f, "interior branch at {src:#x} escapes the region")
            }
            UnsafeReason::RcxLiveAfterSite => write!(f, "%rcx live after site"),
        }
    }
}

/// Why the analysis cannot decide a site either way.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum UnknownReason {
    /// No compile-time constant syscall number reaches the site.
    NumberNotConstant,
    /// A constant reaches the site, but from more than one definition.
    MultipleDefinitions,
    /// The constant is outside the vsyscall table range.
    NumberOutOfRange {
        /// The out-of-range number.
        nr: i64,
    },
    /// A branch destination lands mid-instruction near the site: the
    /// bytes have two valid decodings and no single reading is sound.
    OverlappingDecode {
        /// The mid-instruction destination.
        at: u64,
    },
    /// The candidate region contains bytes the sweep could not decode.
    UndecodedBytes {
        /// First undecodable address in the region.
        at: u64,
    },
}

impl fmt::Display for UnknownReason {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            UnknownReason::NumberNotConstant => write!(f, "syscall number not constant"),
            UnknownReason::MultipleDefinitions => {
                write!(f, "syscall number has multiple definitions")
            }
            UnknownReason::NumberOutOfRange { nr } => {
                write!(f, "syscall number {nr} out of table range")
            }
            UnknownReason::OverlappingDecode { at } => {
                write!(f, "overlapping decode at {at:#x}")
            }
            UnknownReason::UndecodedBytes { at } => {
                write!(f, "undecodable bytes at {at:#x}")
            }
        }
    }
}

/// The analysis result for one `syscall` site.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Verdict {
    /// Rewriting this site is provably observation-equivalent.
    Safe,
    /// Rewriting this site is provably wrong.
    Unsafe(UnsafeReason),
    /// The analysis cannot prove the site either way; a sound patcher
    /// must leave it alone (ABOM treats Unknown exactly like Unsafe).
    Unknown(UnknownReason),
}

impl Verdict {
    /// Whether a patcher may rewrite this site.
    pub fn allows_patch(&self) -> bool {
        matches!(self, Verdict::Safe)
    }
}

impl fmt::Display for Verdict {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Verdict::Safe => write!(f, "safe"),
            Verdict::Unsafe(r) => write!(f, "unsafe: {r}"),
            Verdict::Unknown(r) => write!(f, "unknown: {r}"),
        }
    }
}

/// How the syscall number reaches the site.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SiteKind {
    /// An immediate `mov` (or `xor`-zero) defines the number: the shape
    /// ABOM's 7/9-byte immediate rewrites and the offline detour handle.
    ImmediateNumber,
    /// The adjacent instruction loads the number from the stack (the Go
    /// `syscall.Syscall` shape); the vsyscall dispatch entry validates the
    /// number at run time, so no static range check applies.
    StackNumber,
    /// The interprocedural pass proved the number constant through a
    /// copy, reload, or call boundary (a libc-style `syscall(nr, ...)`
    /// shim) and found a sound detour region at the propagating
    /// instruction. Syntactically the site looked like [`SiteKind::Other`];
    /// v1 reported it `Unknown`.
    PropagatedNumber,
    /// Anything else.
    Other,
}

impl fmt::Display for SiteKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SiteKind::ImmediateNumber => write!(f, "immediate"),
            SiteKind::StackNumber => write!(f, "stack"),
            SiteKind::PropagatedNumber => write!(f, "propagated"),
            SiteKind::Other => write!(f, "other"),
        }
    }
}

/// The causal chain behind a non-`Safe` verdict: not just the terminal
/// reason but *where* the proof broke down and *where* the value came
/// from, so diagnostics can point at the instruction to fix.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ReasonChain {
    /// The instruction that blocked the proof (the first rax-clobbering
    /// or flow-merging instruction the backward walk hit, or the
    /// escaping branch / interior target for unsafe sites).
    pub blocker: Option<u64>,
    /// The defining instruction the abstract interpreter attributes the
    /// `%rax` value to at the blocker, when it knows one.
    pub definer: Option<u64>,
}

impl ReasonChain {
    /// Chain with no recorded links.
    pub const EMPTY: ReasonChain = ReasonChain {
        blocker: None,
        definer: None,
    };
}

impl fmt::Display for ReasonChain {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match (self.blocker, self.definer) {
            (Some(b), Some(d)) => write!(f, " (blocked at {b:#x}, value defined at {d:#x})"),
            (Some(b), None) => write!(f, " (blocked at {b:#x})"),
            (None, Some(d)) => write!(f, " (value defined at {d:#x})"),
            (None, None) => Ok(()),
        }
    }
}

/// The full analysis record for one `syscall` instruction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SiteReport {
    /// Address of the `syscall` instruction.
    pub syscall_addr: u64,
    /// How the number reaches the site.
    pub kind: SiteKind,
    /// The constant syscall number, when one provably reaches the site.
    pub number: Option<i64>,
    /// Address of the single defining `mov`, when one exists.
    pub mov_addr: Option<u64>,
    /// Encoded length of that defining instruction (needed by an
    /// offline patcher to place the detour for propagated sites).
    pub mov_len: Option<u8>,
    /// Causal chain for non-`Safe` verdicts (empty for `Safe`).
    pub chain: ReasonChain,
    /// The verdict.
    pub verdict: Verdict,
}

/// The whole-image verification report.
#[derive(Debug, Clone, Default)]
pub struct VerifyReport {
    /// One record per `syscall` instruction, in address order.
    pub sites: Vec<SiteReport>,
}

impl VerifyReport {
    /// Number of sites with each verdict: `(safe, unsafe, unknown)`.
    pub fn tally(&self) -> (usize, usize, usize) {
        let mut t = (0, 0, 0);
        for s in &self.sites {
            match s.verdict {
                Verdict::Safe => t.0 += 1,
                Verdict::Unsafe(_) => t.1 += 1,
                Verdict::Unknown(_) => t.2 += 1,
            }
        }
        t
    }

    /// The record for the site at `syscall_addr`.
    pub fn site(&self, syscall_addr: u64) -> Option<&SiteReport> {
        self.sites.iter().find(|s| s.syscall_addr == syscall_addr)
    }
}

impl fmt::Display for VerifyReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let (safe, uns, unk) = self.tally();
        writeln!(
            f,
            "{} sites: {safe} safe, {uns} unsafe, {unk} unknown",
            self.sites.len()
        )?;
        for s in &self.sites {
            writeln!(
                f,
                "  {:#x} [{}] {}{}",
                s.syscall_addr, s.kind, s.verdict, s.chain
            )?;
        }
        Ok(())
    }
}
