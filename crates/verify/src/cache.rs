//! Memoized analysis results, keyed by image *content*.
//!
//! The full pipeline — disassembly, CFG construction, dataflow, verdict
//! judging — is a pure function of the image bytes, its entry offsets,
//! and the verifier configuration, yet the hot paths that consume it
//! re-run it per query: the online patcher's pre-flight check analyzes
//! the image on *every* trapped syscall, and the offline patcher
//! re-analyzes an image the caller often just analyzed itself.
//! [`AnalysisCache`] memoizes [`Verifier::analyze`] behind a content
//! fingerprint of `(bytes, entry offsets, config)` — deliberately **not**
//! the load address. The same function body mapped at two different bases
//! is one analysis, so distinct patch sites over identical bodies share a
//! single pipeline run instead of missing on the base.
//!
//! To make base-free sharing sound, the cache analyzes a copy of the
//! image rebased to address 0 and returns a [`CachedAnalysis`] view that
//! remembers the querying image's base: queries arrive in absolute
//! addresses, are translated to offsets against the shared analysis, and
//! address-carrying results are translated back.
//!
//! Keying on the byte content (FNV-1a over the whole image) makes
//! invalidation automatic: the moment a patcher rewrites a site, the
//! fingerprint changes and the stale analysis is simply never consulted
//! again. Entries are [`Arc`]-shared, so a hit costs one hash of the
//! image plus a reference-count bump — no re-decode, no clone of the
//! analysis.
//!
//! # Example
//!
//! ```
//! use xc_isa::asm::Assembler;
//! use xc_isa::inst::{Inst, Reg};
//! use xc_verify::{AnalysisCache, Verifier};
//!
//! let mut a = Assembler::new(0x40_0000);
//! a.inst(Inst::MovImm32 { reg: Reg::Rax, imm: 0 });
//! a.inst(Inst::Syscall);
//! a.inst(Inst::Ret);
//! let image = a.finish().unwrap();
//!
//! let mut cache = AnalysisCache::new();
//! let verifier = Verifier::new();
//! let first = cache.analyze(&verifier, &image);
//! let second = cache.analyze(&verifier, &image);
//! assert!(std::sync::Arc::ptr_eq(first.shared(), second.shared()));
//! assert_eq!((cache.hits(), cache.misses()), (1, 1));
//! ```

use std::collections::HashMap;
use std::sync::Arc;

use xc_isa::image::BinaryImage;

use crate::report::{ReasonChain, SiteReport, UnknownReason, UnsafeReason, Verdict, VerifyReport};
use crate::verifier::{Analysis, DetourHazard, Verifier};

/// FNV-1a offset basis.
const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
/// FNV-1a prime.
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

#[inline]
fn fnv1a(mut h: u64, bytes: &[u8]) -> u64 {
    for b in bytes {
        h ^= u64::from(*b);
        h = h.wrapping_mul(FNV_PRIME);
    }
    h
}

/// Content fingerprint of everything [`Verifier::analyze`] depends on
/// *modulo translation*: length, byte content, the base-relative offsets
/// of the image's entry symbols (they seed the recursive descent), and
/// the verifier's syscall-number bound. The load address is deliberately
/// excluded — the analysis of identical content is identical up to a
/// uniform shift, which [`CachedAnalysis`] applies at query time.
fn fingerprint(verifier: &Verifier, image: &BinaryImage) -> u64 {
    let mut h = FNV_OFFSET;
    h = fnv1a(h, &(image.len() as u64).to_le_bytes());
    h = fnv1a(h, &verifier.config().max_syscall_nr.to_le_bytes());
    // The interprocedural inputs are part of the analysis function: two
    // configurations that window the frame, bound the summary fixpoint,
    // or gate upgrades differently must not share verdicts.
    h = fnv1a(
        h,
        &[
            verifier.config().stack_window_slots,
            verifier.config().max_summary_depth,
            u8::from(verifier.config().interprocedural_upgrades),
        ],
    );
    let body = image
        .read_bytes(image.base(), image.len())
        .expect("whole-image read is in bounds by construction");
    h = fnv1a(h, body);
    let mut offsets: Vec<u64> = image.symbols().map(|(_, a)| a - image.base()).collect();
    offsets.sort_unstable();
    for off in offsets {
        h = fnv1a(h, &off.to_le_bytes());
    }
    h
}

/// A copy of `image` mapped at address 0 (symbols carried over as
/// offsets): the canonical representative of its content class.
fn rebased_to_zero(image: &BinaryImage) -> BinaryImage {
    let bytes = image
        .read_bytes(image.base(), image.len())
        .expect("whole-image read is in bounds by construction")
        .to_vec();
    let mut out = BinaryImage::new(0, bytes);
    for (name, addr) in image.symbols() {
        out.add_symbol(name, addr - image.base());
    }
    out
}

/// A cache-backed view of one image's [`Analysis`].
///
/// The underlying analysis is computed over the image rebased to address
/// 0 and shared by every image with the same content, wherever each is
/// loaded. The view remembers the querying image's base and translates:
/// query addresses are shifted down on the way in, address-carrying
/// verdicts and hazards are shifted back up on the way out, so callers
/// keep speaking absolute addresses throughout.
#[derive(Debug, Clone)]
pub struct CachedAnalysis {
    base: u64,
    inner: Arc<Analysis>,
}

impl CachedAnalysis {
    /// The verdict for the `syscall` at absolute address `syscall_addr`,
    /// if one exists there.
    pub fn verdict_at(&self, syscall_addr: u64) -> Option<Verdict> {
        let v = self
            .inner
            .verdict_at(syscall_addr.checked_sub(self.base)?)?;
        Some(self.rebase_verdict(v))
    }

    /// Pre-flight detour check (see [`Analysis::region_detour_hazard`]),
    /// in absolute addresses.
    pub fn region_detour_hazard(
        &self,
        region_start: u64,
        mov_end: u64,
        syscall_addr: u64,
    ) -> Option<DetourHazard> {
        let h = self.inner.region_detour_hazard(
            region_start - self.base,
            mov_end - self.base,
            syscall_addr - self.base,
        )?;
        Some(self.rebase_hazard(h))
    }

    /// Batched pre-flight detour check (see
    /// [`Analysis::region_detour_hazards`]), in absolute addresses:
    /// answers every query with one pass over the shared analysis's edge
    /// list.
    pub fn region_detour_hazards(&self, queries: &[(u64, u64, u64)]) -> Vec<Option<DetourHazard>> {
        let translated: Vec<(u64, u64, u64)> = queries
            .iter()
            .map(|&(rs, me, sa)| (rs - self.base, me - self.base, sa - self.base))
            .collect();
        self.inner
            .region_detour_hazards(&translated)
            .into_iter()
            .map(|h| h.map(|h| self.rebase_hazard(h)))
            .collect()
    }

    fn rebase_hazard(&self, h: DetourHazard) -> DetourHazard {
        match h {
            DetourHazard::InteriorJumpTarget { target } => DetourHazard::InteriorJumpTarget {
                target: target + self.base,
            },
            DetourHazard::EscapingInteriorBranch { src } => DetourHazard::EscapingInteriorBranch {
                src: src + self.base,
            },
        }
    }

    /// The per-site report. Site addresses are base-relative offsets (the
    /// shared analysis is position-independent); counts and verdict kinds
    /// are what callers consume.
    pub fn report(&self) -> &VerifyReport {
        self.inner.report()
    }

    /// The full site record for the `syscall` at absolute address
    /// `syscall_addr`, with every embedded address translated into the
    /// caller's base (the offline patcher uses this to place detours for
    /// [`crate::SiteKind::PropagatedNumber`] sites).
    pub fn site_at(&self, syscall_addr: u64) -> Option<SiteReport> {
        let s = *self
            .inner
            .report()
            .site(syscall_addr.checked_sub(self.base)?)?;
        Some(SiteReport {
            syscall_addr: s.syscall_addr + self.base,
            kind: s.kind,
            number: s.number,
            mov_addr: s.mov_addr.map(|a| a + self.base),
            mov_len: s.mov_len,
            chain: ReasonChain {
                blocker: s.chain.blocker.map(|a| a + self.base),
                definer: s.chain.definer.map(|a| a + self.base),
            },
            verdict: self.rebase_verdict(s.verdict),
        })
    }

    /// The shared offset-based analysis (addresses relative to the image
    /// base). Two views over identical content share one allocation.
    pub fn shared(&self) -> &Arc<Analysis> {
        &self.inner
    }

    fn rebase_verdict(&self, v: Verdict) -> Verdict {
        match v {
            Verdict::Unsafe(UnsafeReason::InteriorJumpTarget { target }) => {
                Verdict::Unsafe(UnsafeReason::InteriorJumpTarget {
                    target: target + self.base,
                })
            }
            Verdict::Unsafe(UnsafeReason::InteriorBranchEscapes { src }) => {
                Verdict::Unsafe(UnsafeReason::InteriorBranchEscapes {
                    src: src + self.base,
                })
            }
            Verdict::Unknown(UnknownReason::OverlappingDecode { at }) => {
                Verdict::Unknown(UnknownReason::OverlappingDecode { at: at + self.base })
            }
            Verdict::Unknown(UnknownReason::UndecodedBytes { at }) => {
                Verdict::Unknown(UnknownReason::UndecodedBytes { at: at + self.base })
            }
            other => other,
        }
    }
}

/// A memo table over [`Verifier::analyze`] with hit/miss accounting.
///
/// The cache is unbounded: its natural population is one entry per
/// distinct image *content* (pre-patch, post-offline-patch, and each
/// intermediate online-patch state that gets re-queried), which for the
/// study corpora is a handful of small images. Use [`AnalysisCache::clear`]
/// if a long-lived process churns through many images.
#[derive(Debug, Clone, Default)]
pub struct AnalysisCache {
    entries: HashMap<u64, Arc<Analysis>>,
    hits: u64,
    misses: u64,
}

impl AnalysisCache {
    /// An empty cache.
    pub fn new() -> Self {
        AnalysisCache::default()
    }

    /// Returns the memoized analysis of `image` under `verifier`, running
    /// the full pipeline only when the `(bytes, entry offsets, config)`
    /// fingerprint has not been seen before — at *any* load address.
    pub fn analyze(&mut self, verifier: &Verifier, image: &BinaryImage) -> CachedAnalysis {
        let key = fingerprint(verifier, image);
        if let Some(hit) = self.entries.get(&key) {
            self.hits += 1;
            return CachedAnalysis {
                base: image.base(),
                inner: Arc::clone(hit),
            };
        }
        self.misses += 1;
        let inner = Arc::new(verifier.analyze(&rebased_to_zero(image)));
        self.entries.insert(key, Arc::clone(&inner));
        CachedAnalysis {
            base: image.base(),
            inner,
        }
    }

    /// Number of lookups served from the memo table.
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Number of lookups that ran the full analysis pipeline.
    pub fn misses(&self) -> u64 {
        self.misses
    }

    /// Fraction of lookups served from the memo table, in `[0, 1]`
    /// (0 when nothing has been looked up).
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }

    /// Number of distinct image contents currently memoized.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the cache holds no entries.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Drops all memoized analyses; keeps the hit/miss counters.
    pub fn clear(&mut self) {
        self.entries.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use xc_isa::asm::Assembler;
    use xc_isa::inst::{Inst, Reg};

    fn wrapper_image_at(base: u64) -> BinaryImage {
        let mut a = Assembler::new(base);
        a.label("wrapper").unwrap();
        a.inst(Inst::MovImm32 {
            reg: Reg::Rax,
            imm: 1,
        });
        a.inst(Inst::Syscall);
        a.inst(Inst::Ret);
        a.finish().unwrap()
    }

    fn wrapper_image() -> BinaryImage {
        wrapper_image_at(0x40_0000)
    }

    #[test]
    fn second_lookup_hits_and_shares() {
        let image = wrapper_image();
        let verifier = Verifier::new();
        let mut cache = AnalysisCache::new();
        let a = cache.analyze(&verifier, &image);
        let b = cache.analyze(&verifier, &image);
        assert!(Arc::ptr_eq(a.shared(), b.shared()));
        assert_eq!(cache.hits(), 1);
        assert_eq!(cache.misses(), 1);
        assert!((cache.hit_rate() - 0.5).abs() < 1e-12);
        assert_eq!(cache.len(), 1);
    }

    #[test]
    fn identical_bodies_at_different_bases_share_one_analysis() {
        // The rekey at work: the same wrapper body mapped at two distinct
        // load addresses is one cache entry, and each view still answers
        // at its own absolute addresses.
        let lo = wrapper_image_at(0x40_0000);
        let hi = wrapper_image_at(0x7000_0000);
        let verifier = Verifier::new();
        let mut cache = AnalysisCache::new();
        let a = cache.analyze(&verifier, &lo);
        let b = cache.analyze(&verifier, &hi);
        assert_eq!(
            (cache.hits(), cache.misses()),
            (1, 1),
            "repeated analyses of the same body must hit"
        );
        assert!(Arc::ptr_eq(a.shared(), b.shared()));
        assert_eq!(a.verdict_at(0x40_0005), Some(Verdict::Safe));
        assert_eq!(b.verdict_at(0x7000_0005), Some(Verdict::Safe));
        assert_eq!(b.verdict_at(0x40_0005), None, "views do not mix bases");
    }

    #[test]
    fn rebased_view_translates_verdict_addresses() {
        // An image whose verdict embeds an address: a jump from outside
        // into the region interior. The view must report it in the
        // caller's absolute address space.
        fn hazard_image(base: u64) -> (BinaryImage, u64, u64) {
            let mut a = Assembler::new(base);
            a.label("w").unwrap();
            a.inst(Inst::MovImm32 {
                reg: Reg::Rax,
                imm: 1,
            });
            a.label("interior").unwrap();
            a.inst(Inst::Nop);
            let syscall_at = a.here();
            a.inst(Inst::Syscall);
            a.inst(Inst::Ret);
            a.label("other").unwrap();
            a.jmp_to("interior");
            let img = a.finish().unwrap();
            let interior = img.symbol("interior").unwrap();
            (img, syscall_at, interior)
        }
        let (lo, lo_sys, lo_interior) = hazard_image(0x1000);
        let (hi, hi_sys, hi_interior) = hazard_image(0x9_0000);
        let verifier = Verifier::new();
        let mut cache = AnalysisCache::new();
        let a = cache.analyze(&verifier, &lo);
        let b = cache.analyze(&verifier, &hi);
        assert_eq!((cache.hits(), cache.misses()), (1, 1));
        assert_eq!(
            a.verdict_at(lo_sys),
            Some(Verdict::Unsafe(UnsafeReason::InteriorJumpTarget {
                target: lo_interior
            }))
        );
        assert_eq!(
            b.verdict_at(hi_sys),
            Some(Verdict::Unsafe(UnsafeReason::InteriorJumpTarget {
                target: hi_interior
            }))
        );
    }

    #[test]
    fn batched_hazard_view_translates_addresses() {
        let mut a = Assembler::new(0x9_0000);
        a.label("w").unwrap();
        a.inst(Inst::MovImm32 {
            reg: Reg::Rax,
            imm: 1,
        });
        a.label("interior").unwrap();
        a.inst(Inst::Nop);
        let syscall_at = a.here();
        a.inst(Inst::Syscall);
        a.inst(Inst::Ret);
        a.label("other").unwrap();
        a.jmp_to("interior");
        let img = a.finish().unwrap();
        let w = img.symbol("w").unwrap();
        let view = AnalysisCache::new().analyze(&Verifier::new(), &img);
        let queries = [(w, w + 5, syscall_at)];
        let batched = view.region_detour_hazards(&queries);
        assert_eq!(batched.len(), 1);
        assert_eq!(batched[0], view.region_detour_hazard(w, w + 5, syscall_at));
        assert_eq!(
            batched[0],
            Some(DetourHazard::InteriorJumpTarget {
                target: img.symbol("interior").unwrap()
            }),
            "hazard address must come back in the caller's base"
        );
    }

    #[test]
    fn entry_offsets_participate_in_the_key() {
        // Same bytes, same base, different symbol placement: the second
        // image's extra entry point changes what the recursive descent
        // sees, so the analyses must not alias.
        let plain = wrapper_image();
        let mut a = Assembler::new(0x40_0000);
        a.label("wrapper").unwrap();
        a.inst(Inst::MovImm32 {
            reg: Reg::Rax,
            imm: 1,
        });
        a.label("midway").unwrap();
        a.inst(Inst::Syscall);
        a.inst(Inst::Ret);
        let labelled = a.finish().unwrap();
        let verifier = Verifier::new();
        let mut cache = AnalysisCache::new();
        cache.analyze(&verifier, &plain);
        cache.analyze(&verifier, &labelled);
        assert_eq!(
            cache.misses(),
            2,
            "different entry offsets must not collide"
        );
    }

    #[test]
    fn mutation_invalidates_by_content() {
        let mut image = wrapper_image();
        let verifier = Verifier::new();
        let mut cache = AnalysisCache::new();
        let before = cache.analyze(&verifier, &image);
        // Rewrite the mov+syscall pair the way ABOM's case 1 would.
        image.protect_all(true);
        image
            .write(0x40_0000, &[0xff, 0x14, 0x25, 0x08, 0x00, 0x60, 0xff])
            .unwrap();
        let after = cache.analyze(&verifier, &image);
        assert!(!Arc::ptr_eq(before.shared(), after.shared()));
        assert_eq!(cache.misses(), 2, "changed bytes must re-analyze");
        assert_eq!(cache.len(), 2);
    }

    #[test]
    fn config_participates_in_the_key() {
        let image = wrapper_image();
        let mut cache = AnalysisCache::new();
        let default = Verifier::new();
        let narrow = Verifier::with_config(crate::verifier::VerifierConfig {
            max_syscall_nr: 0,
            ..Default::default()
        });
        cache.analyze(&default, &image);
        cache.analyze(&narrow, &image);
        assert_eq!(cache.misses(), 2, "different configs must not collide");
    }

    #[test]
    fn interprocedural_config_participates_in_the_key() {
        let image = wrapper_image();
        let mut cache = AnalysisCache::new();
        let on = Verifier::new();
        let off = Verifier::with_config(crate::verifier::VerifierConfig {
            interprocedural_upgrades: false,
            ..Default::default()
        });
        cache.analyze(&on, &image);
        cache.analyze(&off, &image);
        assert_eq!(
            cache.misses(),
            2,
            "upgrade gating changes verdicts, so it must key the cache"
        );
    }

    #[test]
    fn site_at_rebases_propagated_site_addresses() {
        fn shim_image(base: u64) -> BinaryImage {
            let mut a = Assembler::new(base);
            a.label("wrapper").unwrap();
            a.inst(Inst::MovImm32 {
                reg: Reg::Rdi,
                imm: 39,
            });
            a.call_to("shim");
            a.inst(Inst::Ret);
            a.label("shim").unwrap();
            a.inst(Inst::MovRegReg64 {
                dst: Reg::Rax,
                src: Reg::Rdi,
            });
            a.inst(Inst::Syscall);
            a.inst(Inst::Ret);
            a.finish().unwrap()
        }
        let lo = shim_image(0x1000);
        let hi = shim_image(0x9_0000);
        let verifier = Verifier::new();
        let mut cache = AnalysisCache::new();
        let a = cache.analyze(&verifier, &lo);
        let b = cache.analyze(&verifier, &hi);
        assert_eq!((cache.hits(), cache.misses()), (1, 1));
        for (view, img) in [(&a, &lo), (&b, &hi)] {
            let shim = img.symbol("shim").unwrap();
            let site = view.site_at(shim + 3).unwrap();
            assert_eq!(site.verdict, Verdict::Safe);
            assert_eq!(site.kind, crate::report::SiteKind::PropagatedNumber);
            assert_eq!(site.mov_addr, Some(shim));
            assert_eq!(site.mov_len, Some(3));
        }
    }

    #[test]
    fn matches_uncached_analysis() {
        let image = wrapper_image();
        let verifier = Verifier::new();
        let mut cache = AnalysisCache::new();
        let cached = cache.analyze(&verifier, &image);
        let direct = verifier.analyze(&image);
        assert_eq!(cached.report().tally(), direct.report().tally());
        assert_eq!(cached.verdict_at(0x40_0005), direct.verdict_at(0x40_0005));
    }

    #[test]
    fn clear_empties_but_keeps_counters() {
        let image = wrapper_image();
        let verifier = Verifier::new();
        let mut cache = AnalysisCache::new();
        cache.analyze(&verifier, &image);
        cache.clear();
        assert!(cache.is_empty());
        assert_eq!(cache.misses(), 1);
        cache.analyze(&verifier, &image);
        assert_eq!(cache.misses(), 2);
    }
}
