//! Memoized analysis results, keyed by image identity.
//!
//! The full pipeline — disassembly, CFG construction, dataflow, verdict
//! judging — is a pure function of the image bytes and the verifier
//! configuration, yet the hot paths that consume it re-run it per query:
//! the online patcher's pre-flight check analyzes the image on *every*
//! trapped syscall, and the offline patcher re-analyzes an image the
//! caller often just analyzed itself. [`AnalysisCache`] memoizes
//! [`Verifier::analyze`] behind a fingerprint of `(base, len, bytes,
//! config)`, so repeated queries against an unchanged image decode once.
//!
//! Keying on the byte content (FNV-1a over the whole image) makes
//! invalidation automatic: the moment a patcher rewrites a site, the
//! fingerprint changes and the stale analysis is simply never consulted
//! again. Entries are [`Arc`]-shared, so a hit costs one hash of the
//! image plus a reference-count bump — no re-decode, no clone of the
//! analysis.
//!
//! # Example
//!
//! ```
//! use xc_isa::asm::Assembler;
//! use xc_isa::inst::{Inst, Reg};
//! use xc_verify::{AnalysisCache, Verifier};
//!
//! let mut a = Assembler::new(0x40_0000);
//! a.inst(Inst::MovImm32 { reg: Reg::Rax, imm: 0 });
//! a.inst(Inst::Syscall);
//! a.inst(Inst::Ret);
//! let image = a.finish().unwrap();
//!
//! let mut cache = AnalysisCache::new();
//! let verifier = Verifier::new();
//! let first = cache.analyze(&verifier, &image);
//! let second = cache.analyze(&verifier, &image);
//! assert!(std::sync::Arc::ptr_eq(&first, &second));
//! assert_eq!((cache.hits(), cache.misses()), (1, 1));
//! ```

use std::collections::HashMap;
use std::sync::Arc;

use xc_isa::image::BinaryImage;

use crate::verifier::{Analysis, Verifier};

/// FNV-1a offset basis.
const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
/// FNV-1a prime.
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

#[inline]
fn fnv1a(mut h: u64, bytes: &[u8]) -> u64 {
    for b in bytes {
        h ^= u64::from(*b);
        h = h.wrapping_mul(FNV_PRIME);
    }
    h
}

/// Fingerprint of everything [`Verifier::analyze`] depends on: load
/// address, length, byte content, and the verifier's syscall-number bound.
fn fingerprint(verifier: &Verifier, image: &BinaryImage) -> u64 {
    let mut h = FNV_OFFSET;
    h = fnv1a(h, &image.base().to_le_bytes());
    h = fnv1a(h, &(image.len() as u64).to_le_bytes());
    h = fnv1a(h, &verifier.config().max_syscall_nr.to_le_bytes());
    let body = image
        .read_bytes(image.base(), image.len())
        .expect("whole-image read is in bounds by construction");
    fnv1a(h, body)
}

/// A memo table over [`Verifier::analyze`] with hit/miss accounting.
///
/// The cache is unbounded: its natural population is one entry per
/// distinct image *state* (pre-patch, post-offline-patch, and each
/// intermediate online-patch state that gets re-queried), which for the
/// study corpora is a handful of small images. Use [`AnalysisCache::clear`]
/// if a long-lived process churns through many images.
#[derive(Debug, Clone, Default)]
pub struct AnalysisCache {
    entries: HashMap<u64, Arc<Analysis>>,
    hits: u64,
    misses: u64,
}

impl AnalysisCache {
    /// An empty cache.
    pub fn new() -> Self {
        AnalysisCache::default()
    }

    /// Returns the memoized analysis of `image` under `verifier`, running
    /// the full pipeline only when the `(image, config)` fingerprint has
    /// not been seen before.
    pub fn analyze(&mut self, verifier: &Verifier, image: &BinaryImage) -> Arc<Analysis> {
        let key = fingerprint(verifier, image);
        if let Some(hit) = self.entries.get(&key) {
            self.hits += 1;
            return Arc::clone(hit);
        }
        self.misses += 1;
        let analysis = Arc::new(verifier.analyze(image));
        self.entries.insert(key, Arc::clone(&analysis));
        analysis
    }

    /// Number of lookups served from the memo table.
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Number of lookups that ran the full analysis pipeline.
    pub fn misses(&self) -> u64 {
        self.misses
    }

    /// Fraction of lookups served from the memo table, in `[0, 1]`
    /// (0 when nothing has been looked up).
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }

    /// Number of distinct image states currently memoized.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the cache holds no entries.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Drops all memoized analyses; keeps the hit/miss counters.
    pub fn clear(&mut self) {
        self.entries.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use xc_isa::asm::Assembler;
    use xc_isa::inst::{Inst, Reg};

    fn wrapper_image() -> BinaryImage {
        let mut a = Assembler::new(0x40_0000);
        a.inst(Inst::MovImm32 {
            reg: Reg::Rax,
            imm: 1,
        });
        a.inst(Inst::Syscall);
        a.inst(Inst::Ret);
        a.finish().unwrap()
    }

    #[test]
    fn second_lookup_hits_and_shares() {
        let image = wrapper_image();
        let verifier = Verifier::new();
        let mut cache = AnalysisCache::new();
        let a = cache.analyze(&verifier, &image);
        let b = cache.analyze(&verifier, &image);
        assert!(Arc::ptr_eq(&a, &b));
        assert_eq!(cache.hits(), 1);
        assert_eq!(cache.misses(), 1);
        assert!((cache.hit_rate() - 0.5).abs() < 1e-12);
        assert_eq!(cache.len(), 1);
    }

    #[test]
    fn mutation_invalidates_by_content() {
        let mut image = wrapper_image();
        let verifier = Verifier::new();
        let mut cache = AnalysisCache::new();
        let before = cache.analyze(&verifier, &image);
        // Rewrite the mov+syscall pair the way ABOM's case 1 would.
        image.protect_all(true);
        image
            .write(0x40_0000, &[0xff, 0x14, 0x25, 0x08, 0x00, 0x60, 0xff])
            .unwrap();
        let after = cache.analyze(&verifier, &image);
        assert!(!Arc::ptr_eq(&before, &after));
        assert_eq!(cache.misses(), 2, "changed bytes must re-analyze");
        assert_eq!(cache.len(), 2);
    }

    #[test]
    fn config_participates_in_the_key() {
        let image = wrapper_image();
        let mut cache = AnalysisCache::new();
        let default = Verifier::new();
        let narrow = Verifier::with_config(crate::verifier::VerifierConfig { max_syscall_nr: 0 });
        cache.analyze(&default, &image);
        cache.analyze(&narrow, &image);
        assert_eq!(cache.misses(), 2, "different configs must not collide");
    }

    #[test]
    fn matches_uncached_analysis() {
        let image = wrapper_image();
        let verifier = Verifier::new();
        let mut cache = AnalysisCache::new();
        let cached = cache.analyze(&verifier, &image);
        let direct = verifier.analyze(&image);
        assert_eq!(cached.report().tally(), direct.report().tally());
    }

    #[test]
    fn clear_empties_but_keeps_counters() {
        let image = wrapper_image();
        let verifier = Verifier::new();
        let mut cache = AnalysisCache::new();
        cache.analyze(&verifier, &image);
        cache.clear();
        assert!(cache.is_empty());
        assert_eq!(cache.misses(), 1);
        cache.analyze(&verifier, &image);
        assert_eq!(cache.misses(), 2);
    }
}
