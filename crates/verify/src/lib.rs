//! # xc-verify — static patch-safety analysis for ABOM binary rewriting
//!
//! ABOM (§4.4 of the X-Containers paper) rewrites `mov`+`syscall` pairs
//! into indirect calls through the vsyscall entry table. The online
//! patcher gets its safety "for free": it only rewrites the 7 or 9 bytes
//! around a site that just trapped, and the `60 ff` tail of the
//! replacement call decodes to an invalid opcode, so a concurrent jump
//! into the middle traps into a recovery handler. The **offline** patcher
//! has neither property — it overwrites whole regions with detour jumps
//! and `int3` fill before the program ever runs — so its safety has to be
//! *proved*, not recovered.
//!
//! This crate is that proof procedure, a classic static-analysis pipeline
//! over [`xc_isa`] images:
//!
//! 1. [`disasm`] — hybrid linear-sweep + recursive-descent disassembly,
//! 2. [`cfg`] — a basic-block control-flow graph whose direct-branch
//!    target set is *complete* (the modelled subset has no indirect
//!    jumps; see [`xc_isa::inst::BranchKind`]),
//! 3. [`dataflow`] — forward `%rax` syscall-number reaching values and
//!    backward `%rcx` clobber liveness,
//! 4. [`callgraph`] / [`summaries`] / [`absint`] — the v2 interprocedural
//!    layer: whole-image call-graph construction, per-function clobber /
//!    return-effect summaries, and an abstract-interpretation worklist
//!    over all GPRs plus a bounded stack-slot window, propagated across
//!    call edges,
//! 5. [`verifier`] — per-site [`Verdict`]s: `Safe`, `Unsafe(reason)` or
//!    `Unknown(reason)`, where a sound patcher treats `Unknown` exactly
//!    like `Unsafe`. The interprocedural layer monotonically *upgrades*
//!    `Unknown` number-tracking verdicts to `Safe`
//!    [`SiteKind::PropagatedNumber`] sites when a constant provably
//!    reaches the syscall through copies, spills, or call boundaries,
//! 6. [`lint`] — structured findings (stable rule ids, severities, reason
//!    chains, fix hints) rendered as text or JSON,
//! 7. [`reverify`](mod@reverify) — post-patch shape checking: patched sites decode
//!    to the documented 7/9-byte replacements and trampolines are
//!    reachable only through their detour jump.
//!
//! # Example
//!
//! ```
//! use xc_isa::asm::Assembler;
//! use xc_isa::inst::{Inst, Reg};
//! use xc_verify::{Verdict, Verifier};
//!
//! // The glibc `__read` wrapper from Figure 2 of the paper:
//! let mut a = Assembler::new(0x40_0000);
//! a.label("__read").unwrap();
//! a.inst(Inst::MovImm32 { reg: Reg::Rax, imm: 0 });
//! a.inst(Inst::Syscall);
//! a.inst(Inst::Ret);
//!
//! let analysis = Verifier::new().analyze(&a.finish().unwrap());
//! assert_eq!(analysis.verdict_at(0x40_0005), Some(Verdict::Safe));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod absint;
pub mod cache;
pub mod callgraph;
pub mod cfg;
pub mod dataflow;
pub mod disasm;
pub mod lint;
mod profile;
pub mod report;
pub mod reverify;
pub mod summaries;
pub mod verifier;

pub use absint::{AbsInt, AbsState, AbsValue};
pub use cache::{AnalysisCache, CachedAnalysis};
pub use callgraph::CallGraph;
pub use cfg::{BasicBlock, Cfg, Edge, EdgeKind};
pub use dataflow::{Dataflow, RaxValue};
pub use disasm::{disassemble_image, Disassembly};
pub use lint::{
    lint_report, render_json, render_text, summarize, LintFinding, LintSummary, Severity,
};
#[cfg(feature = "profile")]
pub use profile::AbsIntProfile;
pub use report::{
    ReasonChain, SiteKind, SiteReport, UnknownReason, UnsafeReason, Verdict, VerifyReport,
};
pub use reverify::{reverify, ReverifyReport, Violation};
pub use summaries::{FnSummary, RaxEffect, Summaries};
pub use verifier::{Analysis, DetourHazard, Verifier, VerifierConfig};
