//! Basic-block control-flow graph over a [`Disassembly`].
//!
//! Because the `xc-isa` subset has **no indirect jumps** — the only
//! indirect control transfer is `call *disp32`, which returns to its
//! fall-through — the set of direct branch targets recovered here is the
//! *complete* set of intra-image control-transfer destinations (see
//! [`xc_isa::inst::BranchKind`]). That completeness is what lets the
//! verifier prove a detour region free of interior jump targets rather
//! than merely failing to find one.
//!
//! Indirect call *destinations* (the vsyscall table) escape the image;
//! they are collected in [`Cfg::indirect_sites`] so callers can reason
//! about them conservatively.

use std::collections::BTreeMap;
use std::collections::BTreeSet;

use xc_isa::inst::BranchKind;

use crate::disasm::Disassembly;

/// How control reaches an edge's destination.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EdgeKind {
    /// Execution falls off the end of the source block.
    FallThrough,
    /// An unconditional `jmp rel8`/`jmp rel32`.
    Jump,
    /// The taken side of a `jcc rel8`.
    CondTaken,
    /// A `call rel32` (control returns to the fall-through later).
    Call,
}

/// One control-flow edge, `src` instruction → `target` address.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Edge {
    /// Address of the transferring instruction.
    pub src: u64,
    /// Destination address.
    pub target: u64,
    /// Transfer kind.
    pub kind: EdgeKind,
}

/// A maximal straight-line run of instructions.
#[derive(Debug, Clone)]
pub struct BasicBlock {
    /// Address of the first instruction.
    pub start: u64,
    /// One past the last byte of the last instruction.
    pub end: u64,
    /// Instruction addresses, in order.
    pub insts: Vec<u64>,
    /// Successor block-start addresses.
    pub succs: Vec<u64>,
}

/// The control-flow graph of one image.
#[derive(Debug, Clone)]
pub struct Cfg {
    /// Blocks keyed by start address.
    pub blocks: BTreeMap<u64, BasicBlock>,
    /// Every direct control-flow edge (complete, by the subset property).
    pub edges: Vec<Edge>,
    /// Addresses of `call *disp32` instructions — the only control
    /// transfers whose destination is not statically known. Destinations
    /// are outside the image (vsyscall area); the return address is the
    /// in-image fall-through.
    pub indirect_sites: Vec<u64>,
}

impl Cfg {
    /// Builds the CFG from the linear-sweep instruction map.
    ///
    /// Leaders are: the descent entry points, every direct branch target
    /// that is a sweep boundary, and every address following a
    /// block-terminating instruction (`ret`, `jmp`, `jcc`, `int3`, `ud2`,
    /// or an undecodable gap).
    pub fn build(disasm: &Disassembly) -> Cfg {
        let mut leaders: BTreeSet<u64> = disasm.entries.clone();
        let mut edges = Vec::new();
        let mut indirect_sites = Vec::new();

        for (&at, d) in &disasm.insts {
            let next = at + d.len as u64;
            match d.inst.branch_kind() {
                BranchKind::DirectJump => {
                    let t = d.inst.branch_target(at).expect("direct jump has target");
                    edges.push(Edge {
                        src: at,
                        target: t,
                        kind: EdgeKind::Jump,
                    });
                    leaders.insert(t);
                    leaders.insert(next);
                }
                BranchKind::ConditionalJump => {
                    let t = d.inst.branch_target(at).expect("jcc has target");
                    edges.push(Edge {
                        src: at,
                        target: t,
                        kind: EdgeKind::CondTaken,
                    });
                    edges.push(Edge {
                        src: at,
                        target: next,
                        kind: EdgeKind::FallThrough,
                    });
                    leaders.insert(t);
                    leaders.insert(next);
                }
                BranchKind::DirectCall => {
                    let t = d.inst.branch_target(at).expect("call rel32 has target");
                    edges.push(Edge {
                        src: at,
                        target: t,
                        kind: EdgeKind::Call,
                    });
                    leaders.insert(t);
                    // A call does not end the block: control returns to
                    // the fall-through, which stays in the same block.
                }
                BranchKind::IndirectCall => indirect_sites.push(at),
                BranchKind::Return | BranchKind::Trap => {
                    leaders.insert(next);
                }
                BranchKind::None => {}
            }
            // An instruction bordering an undecodable gap ends its block.
            if !disasm.is_boundary(next) && next < disasm.end() {
                leaders.insert(next);
            }
        }
        // Instructions right after a gap start a fresh block.
        for &gap in &disasm.undecodable {
            if disasm.is_boundary(gap + 1) {
                leaders.insert(gap + 1);
            }
        }
        leaders.retain(|l| disasm.is_boundary(*l));

        // Carve blocks between consecutive leaders.
        let mut blocks = BTreeMap::new();
        let leader_vec: Vec<u64> = leaders.iter().copied().collect();
        for (i, &start) in leader_vec.iter().enumerate() {
            let limit = leader_vec.get(i + 1).copied().unwrap_or(u64::MAX);
            let mut insts = Vec::new();
            let mut at = start;
            let mut end = start;
            let mut terminated = false;
            while at < limit {
                let Some(d) = disasm.insts.get(&at) else {
                    break;
                };
                insts.push(at);
                end = at + d.len as u64;
                at = end;
                if matches!(
                    d.inst.branch_kind(),
                    BranchKind::DirectJump
                        | BranchKind::ConditionalJump
                        | BranchKind::Return
                        | BranchKind::Trap
                ) {
                    terminated = true;
                    break;
                }
            }
            if insts.is_empty() {
                continue;
            }
            // Implicit fall-through into the next leader.
            if !terminated && disasm.is_boundary(end) {
                let last = *insts.last().expect("non-empty block");
                edges.push(Edge {
                    src: last,
                    target: end,
                    kind: EdgeKind::FallThrough,
                });
            }
            blocks.insert(
                start,
                BasicBlock {
                    start,
                    end,
                    insts,
                    succs: Vec::new(),
                },
            );
        }

        // Resolve successor lists (call edges excluded: control returns).
        let mut cfg = Cfg {
            blocks,
            edges,
            indirect_sites,
        };
        let succ_edges: Vec<(u64, u64)> = cfg
            .edges
            .iter()
            .filter(|e| e.kind != EdgeKind::Call)
            .map(|e| (e.src, e.target))
            .collect();
        for (src, target) in succ_edges {
            if let Some(block_start) = cfg.block_of(src) {
                if cfg.blocks.contains_key(&target) {
                    let b = cfg.blocks.get_mut(&block_start).expect("block exists");
                    if !b.succs.contains(&target) {
                        b.succs.push(target);
                    }
                }
            }
        }
        cfg
    }

    /// Start address of the block containing instruction `addr`.
    pub fn block_of(&self, addr: u64) -> Option<u64> {
        let (&start, b) = self.blocks.range(..=addr).next_back()?;
        (addr < b.end).then_some(start)
    }

    /// All edges whose destination lies in `[lo, hi)`.
    pub fn edges_into(&self, lo: u64, hi: u64) -> impl Iterator<Item = &Edge> {
        self.edges
            .iter()
            .filter(move |e| (lo..hi).contains(&e.target))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::disasm::disassemble_image;
    use xc_isa::asm::Assembler;
    use xc_isa::inst::{Cond, Inst, Reg};

    fn cfg_of(a: Assembler) -> Cfg {
        let image = a.finish().unwrap();
        Cfg::build(&disassemble_image(&image))
    }

    #[test]
    fn straight_line_is_one_block() {
        let mut a = Assembler::new(0x1000);
        a.label("f").unwrap();
        a.inst(Inst::MovImm32 {
            reg: Reg::Rax,
            imm: 0,
        });
        a.inst(Inst::Syscall);
        a.inst(Inst::Ret);
        let cfg = cfg_of(a);
        assert_eq!(cfg.blocks.len(), 1);
        let b = &cfg.blocks[&0x1000];
        assert_eq!(b.insts.len(), 3);
        assert!(b.succs.is_empty());
    }

    #[test]
    fn conditional_splits_blocks_and_edges() {
        // The libpthread-style cancellable wrapper shape.
        let mut a = Assembler::new(0x1000);
        a.label("w").unwrap();
        a.inst(Inst::MovImm32 {
            reg: Reg::Rax,
            imm: 3,
        });
        a.inst(Inst::TestEaxEax);
        a.jcc_to(Cond::E, "skip");
        a.inst(Inst::Nop);
        a.label("skip").unwrap();
        a.inst(Inst::Syscall);
        a.inst(Inst::Ret);
        let cfg = cfg_of(a);
        // Blocks: [mov,test,jcc] [nop] [syscall,ret].
        assert_eq!(cfg.blocks.len(), 3);
        let entry = &cfg.blocks[&0x1000];
        assert_eq!(entry.succs.len(), 2);
        let skip = cfg.blocks.keys().copied().nth(2).unwrap();
        assert!(entry.succs.contains(&skip));
    }

    #[test]
    fn call_does_not_split_block_but_records_edge() {
        let mut a = Assembler::new(0x1000);
        a.label("main").unwrap();
        a.inst(Inst::Nop);
        a.call_to("helper");
        a.inst(Inst::Nop);
        a.inst(Inst::Ret);
        a.label("helper").unwrap();
        a.inst(Inst::Ret);
        let cfg = cfg_of(a);
        let main = &cfg.blocks[&0x1000];
        // nop, call, nop, ret all in one block.
        assert_eq!(main.insts.len(), 4);
        assert!(main.succs.is_empty());
        assert!(cfg
            .edges
            .iter()
            .any(|e| e.kind == EdgeKind::Call && cfg.blocks.contains_key(&e.target)));
    }

    #[test]
    fn indirect_call_is_recorded_as_escape_site() {
        let mut a = Assembler::new(0x1000);
        a.label("patched").unwrap();
        a.inst(Inst::CallAbsIndirect {
            target: 0xffff_ffff_ff60_0000,
        });
        a.inst(Inst::Ret);
        let cfg = cfg_of(a);
        assert_eq!(cfg.indirect_sites, vec![0x1000]);
    }

    #[test]
    fn edges_into_finds_interior_entrances() {
        let mut a = Assembler::new(0x1000);
        a.label("w").unwrap();
        a.inst(Inst::MovImm32 {
            reg: Reg::Rax,
            imm: 1,
        }); // 0x1000..0x1005
        a.inst(Inst::Nop); // 0x1005
        a.inst(Inst::Syscall); // 0x1006
        a.inst(Inst::Ret);
        a.label("other").unwrap();
        a.jmp_to("mid");
        a.label("mid").unwrap();
        a.inst(Inst::Ret);
        let image = a.finish().unwrap();
        let mid = image.symbol("mid").unwrap();
        let cfg = Cfg::build(&disassemble_image(&image));
        let hits: Vec<u64> = cfg.edges_into(mid, mid + 1).map(|e| e.target).collect();
        assert_eq!(hits, vec![mid]);
        // Nothing jumps into the wrapper interior.
        assert_eq!(cfg.edges_into(0x1001, 0x1008).count(), 0);
    }
}
