//! Hybrid linear-sweep + recursive-descent disassembly of a
//! [`BinaryImage`] text section.
//!
//! The linear sweep (the same resynchronizing walk the offline ABOM
//! scanner uses) yields the *authoritative* instruction map: every byte is
//! either inside exactly one sweep instruction or recorded as
//! undecodable. The recursive descent then replays control flow from the
//! image's entry points and cross-checks every direct branch destination
//! against the sweep boundaries — a destination strictly inside a sweep
//! instruction is an **overlapping decode**, the case the verifier must
//! refuse to reason about (the same bytes have two valid readings; see
//! `xc_isa::decode` tests for a constructed example).

use std::collections::BTreeMap;
use std::collections::BTreeSet;

use xc_isa::decode::{decode, DecodeError, Decoded};
use xc_isa::image::BinaryImage;

/// The disassembled view of one image.
#[derive(Debug, Clone)]
pub struct Disassembly {
    base: u64,
    end: u64,
    /// Linear-sweep instructions, keyed by address.
    pub insts: BTreeMap<u64, Decoded>,
    /// Bytes the sweep could not decode (padding bytes it resynced over,
    /// or a truncated tail).
    pub undecodable: BTreeSet<u64>,
    /// External entry points: the image base plus every symbol that is
    /// *not* the destination of an intra-image direct branch. A symbol
    /// that is branched to is a local label (e.g. the `skip` label inside
    /// a libpthread-style cancellable wrapper), not a place outside
    /// callers can enter — treating it as an entry would force the
    /// dataflow to assume arbitrary register state there.
    pub entries: BTreeSet<u64>,
    /// Instruction addresses proven reachable from the entry points by
    /// following fall-throughs and direct branches.
    pub reachable: BTreeSet<u64>,
    /// Direct-branch destinations that land strictly inside a sweep
    /// instruction: destination → address of the enclosing instruction.
    pub overlapping_targets: BTreeMap<u64, u64>,
}

impl Disassembly {
    /// First mapped address.
    pub fn base(&self) -> u64 {
        self.base
    }

    /// One past the last mapped address.
    pub fn end(&self) -> u64 {
        self.end
    }

    /// The sweep instruction whose span contains `addr`, if any.
    pub fn enclosing(&self, addr: u64) -> Option<(u64, Decoded)> {
        let (&start, d) = self.insts.range(..=addr).next_back()?;
        (start + d.len as u64 > addr).then_some((start, *d))
    }

    /// Whether `addr` is an instruction boundary in the sweep view.
    pub fn is_boundary(&self, addr: u64) -> bool {
        self.insts.contains_key(&addr)
    }

    /// Whether every byte of `[start, end)` belongs to a contiguous run
    /// of sweep instructions beginning exactly at `start`. Returns the
    /// first offending address otherwise.
    pub fn contiguous_code(&self, start: u64, end: u64) -> Result<(), u64> {
        let mut at = start;
        while at < end {
            match self.insts.get(&at) {
                Some(d) => at += d.len as u64,
                None => return Err(at),
            }
        }
        Ok(())
    }
}

/// Disassembles `image` (linear sweep + recursive descent from the base
/// address and every symbol).
pub fn disassemble_image(image: &BinaryImage) -> Disassembly {
    let base = image.base();
    let end = image.end();
    let mut insts = BTreeMap::new();
    let mut undecodable = BTreeSet::new();

    // Pass 1: resynchronizing linear sweep.
    let mut addr = base;
    while addr < end {
        let window = match image.read_upto(addr, 16) {
            Ok(w) => w,
            Err(_) => break,
        };
        match decode(window) {
            Ok(d) => {
                insts.insert(addr, d);
                addr += d.len as u64;
            }
            Err(DecodeError::Truncated) => {
                // The image ends mid-instruction; everything left is data.
                for a in addr..end {
                    undecodable.insert(a);
                }
                break;
            }
            Err(_) => {
                undecodable.insert(addr);
                addr += 1;
            }
        }
    }

    // Classify symbols: one that is also a direct branch destination is a
    // local label, not an external entry.
    let mut direct_targets = BTreeSet::new();
    for (&at, d) in &insts {
        if let Some(t) = d.inst.branch_target(at) {
            direct_targets.insert(t);
        }
    }
    let mut entries: BTreeSet<u64> = BTreeSet::new();
    entries.insert(base);
    entries.extend(
        image
            .symbols()
            .map(|(_, a)| a)
            .filter(|a| !direct_targets.contains(a)),
    );
    entries.retain(|a| (base..end).contains(a));

    // Pass 2: recursive descent. Roots are the entries plus every symbol
    // (local labels too — reachability should not depend on the
    // classification above).
    let mut roots: BTreeSet<u64> = entries.clone();
    roots.extend(image.symbols().map(|(_, a)| a));

    let mut disasm = Disassembly {
        base,
        end,
        insts,
        undecodable,
        entries,
        reachable: BTreeSet::new(),
        overlapping_targets: BTreeMap::new(),
    };

    let mut worklist: Vec<u64> = roots.into_iter().collect();
    while let Some(at) = worklist.pop() {
        if !(base..end).contains(&at) || disasm.reachable.contains(&at) {
            continue;
        }
        let Some(d) = disasm.insts.get(&at).copied() else {
            // Not a sweep boundary: either the middle of an instruction
            // (overlapping decode) or an undecodable byte. Record and do
            // not descend further — no single reading of these bytes is
            // trustworthy.
            if let Some((start, _)) = disasm.enclosing(at) {
                if start != at {
                    disasm.overlapping_targets.insert(at, start);
                }
            }
            continue;
        };
        disasm.reachable.insert(at);
        if let Some(target) = d.inst.branch_target(at) {
            worklist.push(target);
        }
        if d.inst.falls_through() {
            worklist.push(at + d.len as u64);
        }
    }

    disasm
}

#[cfg(test)]
mod tests {
    use super::*;
    use xc_isa::asm::Assembler;
    use xc_isa::inst::{Inst, Reg};

    #[test]
    fn sweep_covers_simple_wrapper() {
        let mut a = Assembler::new(0x40_0000);
        a.label("w").unwrap();
        a.inst(Inst::MovImm32 {
            reg: Reg::Rax,
            imm: 1,
        });
        a.inst(Inst::Syscall);
        a.inst(Inst::Ret);
        let image = a.finish().unwrap();
        let d = disassemble_image(&image);
        assert_eq!(d.insts.len(), 3);
        assert!(d.undecodable.is_empty());
        assert_eq!(d.reachable.len(), 3);
        assert!(d.contiguous_code(0x40_0000, 0x40_0000 + 8).is_ok());
    }

    #[test]
    fn padding_resyncs_and_interrupts_contiguity() {
        // A 0x60 byte (#UD in long mode) between two instructions.
        let mut bytes = Inst::Ret.encode();
        bytes.push(0x60);
        bytes.extend_from_slice(&Inst::Ret.encode());
        let image = BinaryImage::new(0x1000, bytes);
        let d = disassemble_image(&image);
        assert_eq!(d.insts.len(), 2);
        assert!(d.undecodable.contains(&0x1001));
        assert_eq!(d.contiguous_code(0x1000, 0x1003), Err(0x1001));
    }

    #[test]
    fn truncated_tail_is_undecodable() {
        let mut bytes = Inst::Nop.encode();
        bytes.extend_from_slice(&[0xb8, 0x01]); // truncated mov
        let image = BinaryImage::new(0x1000, bytes);
        let d = disassemble_image(&image);
        assert_eq!(d.insts.len(), 1);
        assert_eq!(d.undecodable, BTreeSet::from([0x1001, 0x1002]));
    }

    #[test]
    fn descent_flags_mid_instruction_branch_target() {
        // `evil` jumps into the immediate of `entry`'s mov: the destination
        // 0x1001 is not a sweep boundary, so it is an overlapping decode.
        let mut bytes = Vec::new();
        // entry @ 0x1000: mov eax, imm whose bytes hide a syscall at +1.
        Inst::MovImm32 {
            reg: Reg::Rax,
            imm: u32::from_le_bytes([0x0f, 0x05, 0x90, 0x90]),
        }
        .encode_into(&mut bytes);
        Inst::Ret.encode_into(&mut bytes); // @ 0x1005
                                           // evil @ 0x1006: jmp rel32 → 0x1001 (rel = 0x1001 - 0x100b).
        Inst::JmpRel32 { rel: -0x0a }.encode_into(&mut bytes);
        let mut image = BinaryImage::new(0x1000, bytes);
        image.add_symbol("entry", 0x1000);
        image.add_symbol("evil", 0x1006);

        let d = disassemble_image(&image);
        assert_eq!(d.overlapping_targets.get(&0x1001), Some(&0x1000));
    }

    #[test]
    fn unreachable_code_is_swept_but_not_reachable() {
        let mut a = Assembler::new(0x1000);
        a.label("f").unwrap();
        a.inst(Inst::Ret);
        // No symbol, never branched to: dead code after the ret.
        a.inst(Inst::Nop);
        let image = a.finish().unwrap();
        let d = disassemble_image(&image);
        assert!(d.is_boundary(0x1001));
        assert!(d.reachable.contains(&0x1000));
        assert!(!d.reachable.contains(&0x1001));
    }
}
