//! Post-patch re-verification.
//!
//! After the offline patcher (or an online ABOM run) rewrites an image,
//! this pass checks that the result has exactly the documented shape:
//!
//! * every patched text site decodes to the 7-byte `call *entry` or the
//!   9-byte `call *entry; jmp -9` replacement of §4.4,
//! * every non-`int3` run in the appended trampoline area is a trampoline
//!   that is targeted by **exactly one** detour `jmp` from the text,
//!   contains **exactly one** vsyscall call, and ends with a `jmp rel32`
//!   back into the text,
//! * nothing branches into the middle of a trampoline.

use std::collections::BTreeMap;

use xc_isa::image::BinaryImage;
use xc_isa::inst::Inst;

use crate::disasm::disassemble_image;

/// Base of the vsyscall page (mirrors `xc_abom::table::VSYSCALL_BASE`;
/// this crate sits below `xc-abom` in the dependency order).
pub const VSYSCALL_BASE: u64 = 0xffff_ffff_ff60_0000;

/// Whether `addr` points into the vsyscall page.
fn is_vsyscall(addr: u64) -> bool {
    (VSYSCALL_BASE..VSYSCALL_BASE + 0x1000).contains(&addr)
}

/// A shape violation found by [`reverify`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Violation {
    /// A non-`int3` run in the trampoline area that no detour jump
    /// targets.
    TrampolineUntargeted {
        /// Start of the run.
        at: u64,
    },
    /// More than one detour jump targets the same trampoline.
    TrampolineMultiplyTargeted {
        /// Start of the trampoline.
        at: u64,
    },
    /// A branch lands strictly inside a trampoline.
    TrampolineInteriorTargeted {
        /// The interior destination.
        target: u64,
    },
    /// A trampoline without exactly one vsyscall call.
    TrampolineMissingCall {
        /// Start of the trampoline.
        at: u64,
    },
    /// A trampoline that does not end with `jmp rel32` back into the
    /// text.
    TrampolineMissingReturn {
        /// Start of the trampoline.
        at: u64,
    },
    /// A detour jump in the text whose destination is not a trampoline
    /// start.
    DetourIntoNonTrampoline {
        /// Address of the jump.
        at: u64,
    },
}

/// The post-patch shape report.
#[derive(Debug, Clone, Default)]
pub struct ReverifyReport {
    /// Addresses of 7-byte `call *entry` replacements in the text.
    pub seven_byte: Vec<u64>,
    /// Addresses of completed 9-byte (`call` + `jmp -9`) replacements.
    pub nine_byte: Vec<u64>,
    /// Detour pairs: `(jump address in text, trampoline start)`.
    pub detours: Vec<(u64, u64)>,
    /// Everything that deviates from the documented shape.
    pub violations: Vec<Violation>,
}

impl ReverifyReport {
    /// Whether the patched image has exactly the documented shape.
    pub fn ok(&self) -> bool {
        self.violations.is_empty()
    }
}

/// Re-verifies a patched image whose original text occupied the first
/// `text_len` bytes; everything after that is trampoline area (possibly
/// empty, for images with only adjacent in-place patches).
pub fn reverify(image: &BinaryImage, text_len: usize) -> ReverifyReport {
    let base = image.base();
    let text_end = base + text_len as u64;
    let area_end = image.end();
    let disasm = disassemble_image(image);
    let mut report = ReverifyReport::default();

    // Classify vsyscall call sites in the text.
    for (&at, d) in disasm.insts.range(base..text_end) {
        if let Inst::CallAbsIndirect { target } = d.inst {
            if !is_vsyscall(target) {
                continue;
            }
            let next = at + d.len as u64;
            let nine = matches!(
                disasm.insts.get(&next).map(|n| n.inst),
                Some(Inst::JmpRel8 { rel: -9 })
            );
            if nine {
                report.nine_byte.push(at);
            } else {
                report.seven_byte.push(at);
            }
        }
    }

    // Detour jumps: text JmpRel32 landing in the trampoline area.
    let mut targeted: BTreeMap<u64, Vec<u64>> = BTreeMap::new();
    for (&at, d) in disasm.insts.range(base..text_end) {
        if d.inst.branch_kind() == xc_isa::inst::BranchKind::DirectJump {
            if let Some(t) = d.inst.branch_target(at) {
                if (text_end..area_end).contains(&t) {
                    targeted.entry(t).or_default().push(at);
                }
            }
        }
    }

    // Walk the trampoline area: alternating int3 fill and trampolines.
    let mut tramp_spans: Vec<(u64, u64)> = Vec::new();
    let mut at = text_end;
    while at < area_end {
        let Some(d) = disasm.insts.get(&at) else {
            // Undecodable byte inside the area: attribute it to whatever
            // trampoline walk failed below; just resync here.
            at += 1;
            continue;
        };
        if d.inst == Inst::Int3 {
            at += 1;
            continue;
        }
        // A trampoline starts here.
        let start = at;
        match targeted.get(&start).map(Vec::len).unwrap_or(0) {
            0 => report
                .violations
                .push(Violation::TrampolineUntargeted { at: start }),
            1 => {}
            _ => report
                .violations
                .push(Violation::TrampolineMultiplyTargeted { at: start }),
        }
        let mut calls = 0usize;
        let mut returned = false;
        while at < area_end {
            let Some(d) = disasm.insts.get(&at) else {
                break;
            };
            match d.inst {
                Inst::CallAbsIndirect { target } if is_vsyscall(target) => calls += 1,
                Inst::JmpRel32 { .. } => {
                    let t = d.inst.branch_target(at).expect("jmp has target");
                    if (base..text_end).contains(&t) {
                        returned = true;
                    }
                    at += d.len as u64;
                    break;
                }
                Inst::Int3 => break,
                _ => {}
            }
            at += d.len as u64;
        }
        if calls != 1 {
            report
                .violations
                .push(Violation::TrampolineMissingCall { at: start });
        }
        if !returned {
            report
                .violations
                .push(Violation::TrampolineMissingReturn { at: start });
        }
        tramp_spans.push((start, at));
        if let Some(srcs) = targeted.get(&start) {
            for &src in srcs {
                report.detours.push((src, start));
            }
        }
    }

    // Detour jumps must land exactly on trampoline starts.
    for (&t, srcs) in &targeted {
        if !tramp_spans.iter().any(|&(s, _)| s == t) {
            for &src in srcs {
                report
                    .violations
                    .push(Violation::DetourIntoNonTrampoline { at: src });
            }
        }
    }

    // Nothing may branch strictly into a trampoline.
    for (&at, d) in &disasm.insts {
        if let Some(t) = d.inst.branch_target(at) {
            for &(s, e) in &tramp_spans {
                if t > s && t < e && !(s..e).contains(&at) {
                    report
                        .violations
                        .push(Violation::TrampolineInteriorTargeted { target: t });
                }
            }
        }
    }

    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use xc_isa::asm::Assembler;
    use xc_isa::inst::Inst;

    /// Hand-builds the shape the offline patcher produces: a detoured
    /// region (jmp + int3 fill), a second adjacently-patched site, and one
    /// trampoline after the text.
    fn patched_image() -> (BinaryImage, usize) {
        let mut a = Assembler::new(0x1000);
        // Detoured wrapper: jmp tramp; int3 fill to region end; ret.
        a.label("w").unwrap();
        a.jmp_to("tramp"); // 5 bytes
        a.inst(Inst::Int3);
        a.inst(Inst::Int3);
        a.inst(Inst::Int3);
        a.inst(Inst::Int3); // region was 9 bytes: mov5 + nop2... fill 4
        a.label("back").unwrap();
        a.inst(Inst::Ret);
        // Adjacent 7-byte replacement.
        a.label("adj").unwrap();
        a.inst(Inst::CallAbsIndirect {
            target: VSYSCALL_BASE + 8,
        });
        a.inst(Inst::Ret);
        let text_len = {
            // Pad text to a known size before the trampoline area.
            a.align(32);
            (a.here() - 0x1000) as usize
        };
        // Trampoline area.
        a.label("tramp").unwrap();
        a.inst(Inst::Nop); // displaced interior
        a.inst(Inst::Nop);
        a.inst(Inst::CallAbsIndirect {
            target: VSYSCALL_BASE + 0x10,
        });
        a.jmp_to("back");
        (a.finish().unwrap(), text_len)
    }

    #[test]
    fn documented_shape_passes() {
        let (image, text_len) = patched_image();
        let r = reverify(&image, text_len);
        assert!(r.ok(), "violations: {:?}", r.violations);
        assert_eq!(r.seven_byte.len(), 1);
        assert_eq!(r.detours.len(), 1);
    }

    #[test]
    fn untargeted_trampoline_is_flagged() {
        let mut a = Assembler::new(0x1000);
        a.inst(Inst::Ret);
        a.align(16);
        let text_len = (a.here() - 0x1000) as usize;
        // A trampoline nothing jumps to.
        a.inst(Inst::CallAbsIndirect {
            target: VSYSCALL_BASE + 8,
        });
        a.inst(Inst::JmpRel32 { rel: -(16 + 7 + 5) }); // back into text
        let image = a.finish().unwrap();
        let r = reverify(&image, text_len);
        assert!(r
            .violations
            .iter()
            .any(|v| matches!(v, Violation::TrampolineUntargeted { .. })));
    }

    #[test]
    fn missing_call_and_return_are_flagged() {
        let mut a = Assembler::new(0x1000);
        a.jmp_to("tramp");
        a.inst(Inst::Ret);
        a.align(16);
        let text_len = (a.here() - 0x1000) as usize;
        a.label("tramp").unwrap();
        a.inst(Inst::Nop); // no vsyscall call, no jmp back
        a.inst(Inst::Ret);
        let image = a.finish().unwrap();
        let r = reverify(&image, text_len);
        assert!(r
            .violations
            .iter()
            .any(|v| matches!(v, Violation::TrampolineMissingCall { .. })));
        assert!(r
            .violations
            .iter()
            .any(|v| matches!(v, Violation::TrampolineMissingReturn { .. })));
    }

    #[test]
    fn nine_byte_site_is_classified() {
        let mut a = Assembler::new(0x1000);
        a.label("w").unwrap();
        a.inst(Inst::CallAbsIndirect {
            target: VSYSCALL_BASE + 0x10,
        });
        a.inst(Inst::JmpRel8 { rel: -9 });
        a.inst(Inst::Ret);
        let len = (a.here() - 0x1000) as usize;
        let image = a.finish().unwrap();
        let r = reverify(&image, len);
        assert_eq!(r.nine_byte, vec![0x1000]);
        assert!(r.seven_byte.is_empty());
    }

    #[test]
    fn branch_into_trampoline_interior_is_flagged() {
        let mut a = Assembler::new(0x1000);
        a.jmp_to("tramp");
        a.label("evil").unwrap();
        a.jmp_to("mid");
        a.inst(Inst::Ret);
        a.align(16);
        let text_len = (a.here() - 0x1000) as usize;
        a.label("tramp").unwrap();
        a.inst(Inst::Nop);
        a.label("mid").unwrap();
        a.inst(Inst::CallAbsIndirect {
            target: VSYSCALL_BASE + 8,
        });
        a.jmp_to("evil");
        let image = a.finish().unwrap();
        let r = reverify(&image, text_len);
        assert!(r
            .violations
            .iter()
            .any(|v| matches!(v, Violation::TrampolineInteriorTargeted { .. })));
    }
}
