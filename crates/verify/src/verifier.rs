//! The verifier: per-site verdicts and detour-region hazard queries.

use xc_isa::image::BinaryImage;
use xc_isa::inst::{Inst, Reg};

use crate::absint::{AbsInt, AbsValue};
use crate::callgraph::CallGraph;
use crate::cfg::Cfg;
use crate::dataflow::{Dataflow, RaxValue};
use crate::disasm::{disassemble_image, Disassembly};
use crate::report::{
    ReasonChain, SiteKind, SiteReport, UnknownReason, UnsafeReason, Verdict, VerifyReport,
};
use crate::summaries::Summaries;

/// Analysis parameters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct VerifierConfig {
    /// Highest syscall number with a dedicated vsyscall entry. Mirrors
    /// `xc_abom::table::MAX_SYSCALL_NR` (this crate sits below `xc-abom`
    /// in the dependency order, so the constant is duplicated, not
    /// imported).
    pub max_syscall_nr: i64,
    /// How many 8-byte `rsp`-relative slots the abstract interpreter
    /// tracks per frame (displacements at or beyond `8 × slots` are
    /// treated as untracked).
    pub stack_window_slots: u8,
    /// Growth-round cap for the per-function summary fixpoint; if the
    /// clobber sets have not stabilised within this many rounds they
    /// collapse to clobber-everything.
    pub max_summary_depth: u8,
    /// Whether the interprocedural pass may upgrade
    /// `Unknown(NumberNotConstant | MultipleDefinitions)` verdicts to
    /// `Safe` [`SiteKind::PropagatedNumber`] sites. Upgrades are
    /// monotone: `Safe` and `Unsafe` verdicts are never touched.
    pub interprocedural_upgrades: bool,
}

impl Default for VerifierConfig {
    fn default() -> Self {
        VerifierConfig {
            max_syscall_nr: 351,
            stack_window_slots: 16,
            max_summary_depth: 8,
            interprocedural_upgrades: true,
        }
    }
}

/// Why a detour cannot safely overwrite a region (the offline patcher's
/// pre-flight query; see [`Analysis::region_detour_hazard`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DetourHazard {
    /// Control enters the region interior from outside it.
    InteriorJumpTarget {
        /// The interior address entered from outside.
        target: u64,
    },
    /// An interior branch targets an address the trampoline relocation
    /// cannot preserve.
    EscapingInteriorBranch {
        /// Address of the escaping branch.
        src: u64,
    },
}

/// The static patch-safety analyzer.
#[derive(Debug, Clone, Default)]
pub struct Verifier {
    config: VerifierConfig,
}

impl Verifier {
    /// A verifier with default configuration.
    pub fn new() -> Self {
        Verifier::default()
    }

    /// A verifier with explicit configuration.
    pub fn with_config(config: VerifierConfig) -> Self {
        Verifier { config }
    }

    /// This verifier's configuration (part of the [`crate::AnalysisCache`]
    /// key: analyses under different configurations must not alias).
    pub fn config(&self) -> &VerifierConfig {
        &self.config
    }

    /// Runs the full pipeline — disassembly, CFG construction, dataflow —
    /// and renders a verdict for every `syscall` site in `image`.
    pub fn analyze(&self, image: &BinaryImage) -> Analysis {
        let disasm = disassemble_image(image);
        let cfg = Cfg::build(&disasm);
        let dataflow = Dataflow::run(&disasm, &cfg);
        let callgraph = CallGraph::build(&disasm, &cfg);
        let summaries = Summaries::build(&disasm, &cfg, &callgraph, self.config.max_summary_depth);
        let absint = AbsInt::analyze(
            &disasm,
            &cfg,
            &callgraph,
            &summaries,
            self.config.stack_window_slots,
        );
        let mut analysis = Analysis {
            config: self.config,
            disasm,
            cfg,
            dataflow,
            callgraph,
            summaries,
            absint,
            report: VerifyReport::default(),
        };
        analysis.report = analysis.judge_all();
        analysis
    }
}

/// The completed analysis of one image.
#[derive(Debug, Clone)]
pub struct Analysis {
    config: VerifierConfig,
    /// The hybrid disassembly.
    pub disasm: Disassembly,
    /// The control-flow graph.
    pub cfg: Cfg,
    /// The dataflow fixpoints.
    pub dataflow: Dataflow,
    /// The whole-image call graph.
    pub callgraph: CallGraph,
    /// Per-function summaries.
    pub summaries: Summaries,
    /// The interprocedural abstract interpretation.
    pub absint: AbsInt,
    /// Per-site verdicts.
    pub report: VerifyReport,
}

impl Analysis {
    /// The per-site report.
    pub fn report(&self) -> &VerifyReport {
        &self.report
    }

    /// The verdict for the `syscall` at `syscall_addr`, if one exists
    /// there.
    pub fn verdict_at(&self, syscall_addr: u64) -> Option<Verdict> {
        self.report.site(syscall_addr).map(|s| s.verdict)
    }

    /// Pre-flight check for an offline detour over
    /// `[region_start, syscall_addr + 2)` whose displaced interior is
    /// `[mov_end, syscall_addr)`.
    ///
    /// The detour overwrites the region with a `jmp rel32` + `int3` fill
    /// and re-materializes the interior in a trampoline at the same
    /// offset from the trampoline's start that it had from `mov_end`, so:
    ///
    /// * control entering the interior from **outside** the region lands
    ///   on `int3` fill — [`DetourHazard::InteriorJumpTarget`];
    /// * an **interior** branch stays correct only if its destination is
    ///   within `[mov_end, syscall_addr]` (the `syscall_addr` endpoint
    ///   maps onto the trampoline's vsyscall call, which is exactly the
    ///   replacement semantics) — anything else is
    ///   [`DetourHazard::EscapingInteriorBranch`].
    pub fn region_detour_hazard(
        &self,
        region_start: u64,
        mov_end: u64,
        syscall_addr: u64,
    ) -> Option<DetourHazard> {
        let region_end = syscall_addr + 2;
        // Outside → interior edges. The region start itself is fine: the
        // detour jump lives there.
        for e in self.cfg.edges_into(region_start + 1, region_end) {
            if !(region_start..region_end).contains(&e.src) {
                return Some(DetourHazard::InteriorJumpTarget { target: e.target });
            }
        }
        self.region_hazard_tail(region_start, mov_end, syscall_addr)
    }

    /// Batched form of [`Analysis::region_detour_hazard`]: answers every
    /// `(region_start, mov_end, syscall_addr)` query with **one** pass
    /// over the CFG edge list instead of one full-list walk per region.
    /// The remaining per-region checks (entry points, interior branches)
    /// are ordered-map range scans over the region only and stay
    /// per-region. Results are index-aligned with `queries` and identical
    /// to calling the single-region form on each query.
    pub fn region_detour_hazards(&self, queries: &[(u64, u64, u64)]) -> Vec<Option<DetourHazard>> {
        let mut out: Vec<Option<DetourHazard>> = vec![None; queries.len()];
        // Outside → interior edges, every region in one edge-list walk.
        // The first matching edge in list order wins for each region,
        // exactly as `edges_into` iteration would find it.
        for e in &self.cfg.edges {
            for (slot, &(region_start, _, syscall_addr)) in out.iter_mut().zip(queries) {
                let region_end = syscall_addr + 2;
                if slot.is_none()
                    && (region_start + 1..region_end).contains(&e.target)
                    && !(region_start..region_end).contains(&e.src)
                {
                    *slot = Some(DetourHazard::InteriorJumpTarget { target: e.target });
                }
            }
        }
        for (slot, &(region_start, mov_end, syscall_addr)) in out.iter_mut().zip(queries) {
            if slot.is_none() {
                *slot = self.region_hazard_tail(region_start, mov_end, syscall_addr);
            }
        }
        out
    }

    /// The per-region half of the hazard check (everything after the
    /// edge-list walk), shared by the single and batched forms.
    fn region_hazard_tail(
        &self,
        region_start: u64,
        mov_end: u64,
        syscall_addr: u64,
    ) -> Option<DetourHazard> {
        let region_end = syscall_addr + 2;
        // An external entry point inside the region interior.
        if let Some(&entry) = self
            .disasm
            .entries
            .range(region_start + 1..region_end)
            .next()
        {
            return Some(DetourHazard::InteriorJumpTarget { target: entry });
        }
        // Interior branches that escape the relocatable window.
        for (&at, d) in self.disasm.insts.range(mov_end..syscall_addr) {
            if let Some(t) = d.inst.branch_target(at) {
                if !(mov_end..=syscall_addr).contains(&t) {
                    return Some(DetourHazard::EscapingInteriorBranch { src: at });
                }
            }
        }
        None
    }

    /// Judges every `syscall` site.
    fn judge_all(&self) -> VerifyReport {
        let mut sites = Vec::new();
        for (&at, d) in &self.disasm.insts {
            if d.inst == Inst::Syscall {
                sites.push(self.judge_site(at));
            }
        }
        VerifyReport { sites }
    }

    /// Judges the `syscall` at `syscall_addr`.
    fn judge_site(&self, syscall_addr: u64) -> SiteReport {
        let rax = self
            .dataflow
            .rax_in
            .get(&syscall_addr)
            .copied()
            .unwrap_or(RaxValue::Unknown);

        // Pick the candidate patch region the way the *linear* offline
        // scanner would (straight-line, flow-insensitive), then let the
        // CFG and dataflow refine or veto it. This ordering matters: the
        // verifier's job is to judge the region a naive patcher would
        // pick, including regions the dataflow already knows are entered
        // from elsewhere.
        let (kind, number, mov_addr, mov_len, region) =
            if let Some((mov, len, nr)) = self.syntactic_region(syscall_addr) {
                (
                    SiteKind::ImmediateNumber,
                    Some(nr),
                    Some(mov),
                    Some(len as u8),
                    Some((mov, mov + len)),
                )
            } else if let Some((load_addr, load_len)) = self.adjacent_stack_load(syscall_addr) {
                (
                    SiteKind::StackNumber,
                    None,
                    Some(load_addr),
                    Some(load_len),
                    Some((load_addr, syscall_addr)),
                )
            } else {
                (SiteKind::Other, None, None, None, None)
            };

        let verdict = self.judge_region(syscall_addr, rax, kind, number, region);

        // Interprocedural upgrade: only undecided number-tracking
        // verdicts are candidates, so `Safe` never regresses and proven
        // `Unsafe` structure is never overridden.
        let upgradable = matches!(
            verdict,
            Verdict::Unknown(UnknownReason::NumberNotConstant | UnknownReason::MultipleDefinitions)
        );
        if upgradable && self.config.interprocedural_upgrades {
            if let Some((nr, def_addr, def_len)) = self.try_upgrade(syscall_addr) {
                return SiteReport {
                    syscall_addr,
                    kind: SiteKind::PropagatedNumber,
                    number: Some(nr),
                    mov_addr: Some(def_addr),
                    mov_len: Some(def_len),
                    chain: ReasonChain::EMPTY,
                    verdict: Verdict::Safe,
                };
            }
        }

        let chain = self.chain_for(syscall_addr, verdict, region);
        SiteReport {
            syscall_addr,
            kind,
            number,
            mov_addr,
            mov_len,
            chain,
            verdict,
        }
    }

    /// Attempts to prove the `Unknown` site at `syscall_addr` patchable
    /// using the interprocedural constant: the abstract `%rax` value must
    /// be a constant with a **unique defining instruction** in front of
    /// the syscall, and the region `[def, syscall+2)` must pass every
    /// structural check the v1 immediate path applies — plus one more:
    /// the defining instruction is *dropped* from the detour trampoline
    /// (the vsyscall entry supplies the number), so nothing in the
    /// displaced interior may read `%rax`.
    ///
    /// Returns `(number, def_addr, def_len)` on success.
    fn try_upgrade(&self, syscall_addr: u64) -> Option<(i64, u64, u8)> {
        let AbsValue::Const {
            v,
            def: Some((def_addr, def_len)),
        } = self.absint.rax_at(syscall_addr)
        else {
            return None;
        };
        if !(0..=self.config.max_syscall_nr).contains(&v) {
            return None;
        }
        if def_addr >= syscall_addr {
            return None;
        }
        let region_end = syscall_addr + 2;
        if region_end - def_addr < 5 {
            return None; // detour needs room for a jmp rel32
        }
        self.disasm.contiguous_code(def_addr, region_end).ok()?;
        if self
            .disasm
            .overlapping_targets
            .range(def_addr..region_end)
            .next()
            .is_some()
        {
            return None;
        }
        let mov_end = def_addr + u64::from(def_len);
        for (_, d) in self.disasm.insts.range(mov_end..syscall_addr) {
            if reads_rax(d.inst) {
                return None;
            }
        }
        if self
            .region_detour_hazard(def_addr, mov_end, syscall_addr)
            .is_some()
        {
            return None;
        }
        if self
            .dataflow
            .rcx_live_out
            .get(&syscall_addr)
            .copied()
            .unwrap_or(true)
        {
            return None;
        }
        Some((v, def_addr, def_len))
    }

    /// Builds the causal chain for a non-`Safe` verdict: which
    /// instruction blocked the proof and where the abstract interpreter
    /// last saw the value defined.
    fn chain_for(
        &self,
        syscall_addr: u64,
        verdict: Verdict,
        region: Option<(u64, u64)>,
    ) -> ReasonChain {
        let definer = match self.absint.rax_at(syscall_addr) {
            AbsValue::Const {
                def: Some((at, _)), ..
            } => Some(at),
            _ => None,
        };
        let blocker = match verdict {
            Verdict::Safe => return ReasonChain::EMPTY,
            Verdict::Unsafe(UnsafeReason::InteriorJumpTarget { target }) => Some(target),
            Verdict::Unsafe(UnsafeReason::InteriorBranchEscapes { src }) => Some(src),
            Verdict::Unsafe(UnsafeReason::RcxLiveAfterSite) => {
                self.first_rcx_reader_after(syscall_addr)
            }
            Verdict::Unknown(
                UnknownReason::NumberNotConstant | UnknownReason::MultipleDefinitions,
            ) => self.syntactic_blocker(syscall_addr).or(region.map(|r| r.0)),
            Verdict::Unknown(UnknownReason::NumberOutOfRange { .. }) => region.map(|r| r.0),
            Verdict::Unknown(
                UnknownReason::OverlappingDecode { at } | UnknownReason::UndecodedBytes { at },
            ) => Some(at),
        };
        ReasonChain { blocker, definer }
    }

    /// The instruction that stopped the syntactic backward walk (the
    /// first rax-clobbering or flow-breaking instruction behind the
    /// site), when the walk failed to find a defining immediate.
    fn syntactic_blocker(&self, syscall_addr: u64) -> Option<u64> {
        let mut at = syscall_addr;
        loop {
            let (prev, d) = self.disasm.enclosing(at.checked_sub(1)?)?;
            if prev + d.len as u64 != at {
                return Some(prev);
            }
            match d.inst {
                Inst::MovImm32 { reg: Reg::Rax, .. } | Inst::XorEaxEax => return None,
                Inst::MovImm32SxR64 { reg: Reg::Rax, imm } if imm >= 0 => return None,
                Inst::MovImm32SxR64 { reg: Reg::Rax, .. }
                | Inst::LoadRspDisp8R32 { reg: Reg::Rax, .. }
                | Inst::LoadRspDisp8R64 { reg: Reg::Rax, .. }
                | Inst::MovRegReg64 { dst: Reg::Rax, .. }
                | Inst::Syscall
                | Inst::CallRel32 { .. }
                | Inst::CallAbsIndirect { .. }
                | Inst::Ret
                | Inst::JmpRel8 { .. }
                | Inst::JmpRel32 { .. }
                | Inst::Int3 => return Some(prev),
                _ => at = prev,
            }
        }
    }

    /// First instruction shortly after the site that reads `%rcx`
    /// (diagnostic pointer for [`UnsafeReason::RcxLiveAfterSite`]; the
    /// real liveness fact is CFG-wide, this names the adjacent witness
    /// when there is one).
    fn first_rcx_reader_after(&self, syscall_addr: u64) -> Option<u64> {
        self.disasm
            .insts
            .range(syscall_addr + 2..)
            .take(16)
            .find(|(_, d)| {
                matches!(
                    d.inst,
                    Inst::MovRegReg64 { src: Reg::Rcx, .. }
                        | Inst::StoreRspDisp8R64 { reg: Reg::Rcx, .. }
                )
            })
            .map(|(&a, _)| a)
    }

    /// The region a straight-line scan would patch: walks backwards from
    /// the syscall over rax-preserving instructions to the defining
    /// immediate load. Mirrors the kill set of `xc-abom`'s offline
    /// scanner (rax writes, calls, unconditional control flow and `int3`
    /// end the walk; conditional branches do not).
    fn syntactic_region(&self, syscall_addr: u64) -> Option<(u64, u64, i64)> {
        let mut at = syscall_addr;
        loop {
            let (prev, d) = self.disasm.enclosing(at.checked_sub(1)?)?;
            if prev + d.len as u64 != at {
                return None; // overlapping decode, not a clean adjacency
            }
            match d.inst {
                Inst::MovImm32 { reg: Reg::Rax, imm } => return Some((prev, 5, i64::from(imm))),
                Inst::MovImm32SxR64 { reg: Reg::Rax, imm } if imm >= 0 => {
                    return Some((prev, 7, i64::from(imm)))
                }
                Inst::XorEaxEax => return Some((prev, 2, 0)),
                Inst::MovImm32SxR64 { reg: Reg::Rax, .. }
                | Inst::LoadRspDisp8R32 { reg: Reg::Rax, .. }
                | Inst::LoadRspDisp8R64 { reg: Reg::Rax, .. }
                | Inst::MovRegReg64 { dst: Reg::Rax, .. }
                | Inst::Syscall
                | Inst::CallRel32 { .. }
                | Inst::CallAbsIndirect { .. }
                | Inst::Ret
                | Inst::JmpRel8 { .. }
                | Inst::JmpRel32 { .. }
                | Inst::Int3 => return None,
                _ => at = prev,
            }
        }
    }

    /// The instruction directly before `syscall_addr`, when it is a
    /// `mov %rax, disp8(%rsp)`-style stack load (the Go wrapper shape).
    fn adjacent_stack_load(&self, syscall_addr: u64) -> Option<(u64, u8)> {
        let (at, d) = self.disasm.enclosing(syscall_addr.checked_sub(1)?)?;
        let adjacent = at + d.len as u64 == syscall_addr;
        let is_load = matches!(
            d.inst,
            Inst::LoadRspDisp8R64 { reg: Reg::Rax, .. }
                | Inst::LoadRspDisp8R32 { reg: Reg::Rax, .. }
        );
        (adjacent && is_load).then_some((at, d.len as u8))
    }

    fn judge_region(
        &self,
        syscall_addr: u64,
        rax: RaxValue,
        kind: SiteKind,
        number: Option<i64>,
        region: Option<(u64, u64)>,
    ) -> Verdict {
        let Some((region_start, mov_end)) = region else {
            return Verdict::Unknown(match rax {
                RaxValue::MultipleDefs => UnknownReason::MultipleDefinitions,
                _ => UnknownReason::NumberNotConstant,
            });
        };
        let region_end = syscall_addr + 2;

        // Structural soundness of the region bytes first: if the region is
        // not a single contiguous decode, nothing below is trustworthy.
        if let Err(at) = self.disasm.contiguous_code(region_start, region_end) {
            return Verdict::Unknown(UnknownReason::UndecodedBytes { at });
        }
        if let Some((&at, _)) = self
            .disasm
            .overlapping_targets
            .range(region_start..region_end)
            .next()
        {
            return Verdict::Unknown(UnknownReason::OverlappingDecode { at });
        }

        // Proven-unsafe conditions.
        if let Some(h) = self.region_detour_hazard(region_start, mov_end, syscall_addr) {
            return Verdict::Unsafe(match h {
                DetourHazard::InteriorJumpTarget { target } => {
                    UnsafeReason::InteriorJumpTarget { target }
                }
                DetourHazard::EscapingInteriorBranch { src } => {
                    UnsafeReason::InteriorBranchEscapes { src }
                }
            });
        }
        if self
            .dataflow
            .rcx_live_out
            .get(&syscall_addr)
            .copied()
            .unwrap_or(true)
        {
            return Verdict::Unsafe(UnsafeReason::RcxLiveAfterSite);
        }

        // Number validity. The syntactic region names a defining mov; the
        // flow-sensitive dataflow must agree that this mov's constant is
        // the *only* value reaching the site on every path.
        if kind == SiteKind::ImmediateNumber {
            match rax {
                RaxValue::Const { mov_addr, .. } if mov_addr == region_start => {}
                RaxValue::Const { .. } | RaxValue::MultipleDefs => {
                    return Verdict::Unknown(UnknownReason::MultipleDefinitions)
                }
                _ => return Verdict::Unknown(UnknownReason::NumberNotConstant),
            }
            // Stack-dispatch entries validate the number at run time, so
            // only immediate numbers get the static range check.
            let nr = number.expect("immediate sites carry a number");
            if !(0..=self.config.max_syscall_nr).contains(&nr) {
                return Verdict::Unknown(UnknownReason::NumberOutOfRange { nr });
            }
        }

        Verdict::Safe
    }
}

/// Whether executing `inst` observes the current value of `%rax`.
/// Used to veto upgraded regions whose interior would be displaced into
/// a trampoline that no longer contains the defining instruction.
fn reads_rax(inst: Inst) -> bool {
    matches!(
        inst,
        Inst::MovRegReg64 { src: Reg::Rax, .. }
            | Inst::StoreRspDisp8R64 { reg: Reg::Rax, .. }
            | Inst::TestEaxEax
            | Inst::Syscall
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use xc_isa::asm::Assembler;
    use xc_isa::inst::Cond;

    fn analyze(a: Assembler) -> Analysis {
        Verifier::new().analyze(&a.finish().unwrap())
    }

    #[test]
    fn glibc_wrapper_is_safe() {
        let mut a = Assembler::new(0x1000);
        a.label("__read").unwrap();
        a.inst(Inst::MovImm32 {
            reg: Reg::Rax,
            imm: 0,
        });
        a.inst(Inst::Syscall);
        a.inst(Inst::Ret);
        let an = analyze(a);
        assert_eq!(an.verdict_at(0x1005), Some(Verdict::Safe));
        let site = an.report().site(0x1005).unwrap();
        assert_eq!(site.kind, SiteKind::ImmediateNumber);
        assert_eq!(site.number, Some(0));
    }

    #[test]
    fn go_stack_wrapper_is_safe_without_range_check() {
        let mut a = Assembler::new(0x1000);
        a.label("syscall_Syscall").unwrap();
        a.inst(Inst::LoadRspDisp8R64 {
            reg: Reg::Rax,
            disp: 8,
        });
        a.inst(Inst::Syscall); // 0x1005
        a.inst(Inst::Ret);
        let an = analyze(a);
        assert_eq!(an.verdict_at(0x1005), Some(Verdict::Safe));
        assert_eq!(
            an.report().site(0x1005).unwrap().kind,
            SiteKind::StackNumber
        );
    }

    #[test]
    fn out_of_range_number_is_unknown() {
        let mut a = Assembler::new(0x1000);
        a.label("w").unwrap();
        a.inst(Inst::MovImm32 {
            reg: Reg::Rax,
            imm: 9999,
        });
        a.inst(Inst::Syscall);
        a.inst(Inst::Ret);
        let an = analyze(a);
        assert_eq!(
            an.verdict_at(0x1005),
            Some(Verdict::Unknown(UnknownReason::NumberOutOfRange {
                nr: 9999
            }))
        );
    }

    #[test]
    fn cancellable_wrapper_interior_branch_is_safe() {
        // je targets the syscall itself — intra-region, relocates exactly.
        let mut a = Assembler::new(0x1000);
        a.label("w").unwrap();
        a.inst(Inst::MovImm32 {
            reg: Reg::Rax,
            imm: 3,
        });
        a.inst(Inst::TestEaxEax);
        a.jcc_to(Cond::E, "skip");
        a.inst(Inst::Nop);
        a.label("skip").unwrap();
        a.inst(Inst::Syscall);
        a.inst(Inst::Ret);
        let image = a.finish().unwrap();
        let syscall_at = image.symbol("skip").unwrap();
        let an = Verifier::new().analyze(&image);
        assert_eq!(an.verdict_at(syscall_at), Some(Verdict::Safe));
    }

    #[test]
    fn outside_jump_into_interior_is_unsafe() {
        let mut a = Assembler::new(0x1000);
        a.label("w").unwrap();
        a.inst(Inst::MovImm32 {
            reg: Reg::Rax,
            imm: 1,
        });
        a.label("interior").unwrap();
        a.inst(Inst::Nop);
        a.inst(Inst::Syscall);
        a.inst(Inst::Ret);
        a.label("other").unwrap();
        a.jmp_to("interior");
        let image = a.finish().unwrap();
        let interior = image.symbol("interior").unwrap();
        let an = Verifier::new().analyze(&image);
        assert_eq!(
            an.verdict_at(0x1006),
            Some(Verdict::Unsafe(UnsafeReason::InteriorJumpTarget {
                target: interior
            }))
        );
    }

    #[test]
    fn escaping_interior_branch_is_unsafe() {
        // A branch inside the region that leaves it (loops back to the mov).
        let mut a = Assembler::new(0x1000);
        a.label("w").unwrap();
        a.inst(Inst::MovImm32 {
            reg: Reg::Rax,
            imm: 1,
        }); // 0x1000
        a.inst(Inst::TestEaxEax); // 0x1005
        a.jcc_to(Cond::Ne, "w"); // 0x1007, escapes to region start
        a.inst(Inst::Syscall); // 0x1009
        a.inst(Inst::Ret);
        let an = analyze(a);
        assert_eq!(
            an.verdict_at(0x1009),
            Some(Verdict::Unsafe(UnsafeReason::InteriorBranchEscapes {
                src: 0x1007
            }))
        );
    }

    #[test]
    fn rcx_use_after_syscall_is_unsafe() {
        let mut a = Assembler::new(0x1000);
        a.label("w").unwrap();
        a.inst(Inst::MovImm32 {
            reg: Reg::Rax,
            imm: 0,
        });
        a.inst(Inst::Syscall); // 0x1005
        a.inst(Inst::MovRegReg64 {
            dst: Reg::Rdx,
            src: Reg::Rcx,
        });
        a.inst(Inst::Ret);
        let an = analyze(a);
        assert_eq!(
            an.verdict_at(0x1005),
            Some(Verdict::Unsafe(UnsafeReason::RcxLiveAfterSite))
        );
    }

    #[test]
    fn register_copied_number_is_unknown() {
        let mut a = Assembler::new(0x1000);
        a.label("w").unwrap();
        a.inst(Inst::MovRegReg64 {
            dst: Reg::Rax,
            src: Reg::Rdi,
        });
        a.inst(Inst::Syscall); // 0x1003
        a.inst(Inst::Ret);
        let an = analyze(a);
        assert_eq!(
            an.verdict_at(0x1003),
            Some(Verdict::Unknown(UnknownReason::NumberNotConstant))
        );
    }

    #[test]
    fn report_tally_counts_by_verdict() {
        let mut a = Assembler::new(0x1000);
        a.label("safe").unwrap();
        a.inst(Inst::MovImm32 {
            reg: Reg::Rax,
            imm: 1,
        });
        a.inst(Inst::Syscall);
        a.inst(Inst::Ret);
        a.label("unknown").unwrap();
        a.inst(Inst::MovRegReg64 {
            dst: Reg::Rax,
            src: Reg::Rdi,
        });
        a.inst(Inst::Syscall);
        a.inst(Inst::Ret);
        let an = analyze(a);
        assert_eq!(an.report().tally(), (1, 0, 1));
        assert!(an.report().to_string().contains("2 sites"));
    }

    /// `mov $nr, %edi; call shim` with an identity shim: v1 reports the
    /// shim's syscall `Unknown`, the interprocedural pass proves it.
    fn shim_library() -> Assembler {
        let mut a = Assembler::new(0x1000);
        a.label("wrapper").unwrap();
        a.inst(Inst::MovImm32 {
            reg: Reg::Rdi,
            imm: 39,
        });
        a.call_to("shim");
        a.inst(Inst::Ret);
        a.label("shim").unwrap();
        a.inst(Inst::MovRegReg64 {
            dst: Reg::Rax,
            src: Reg::Rdi,
        });
        a.inst(Inst::Syscall);
        a.inst(Inst::Ret);
        a
    }

    #[test]
    fn libc_shim_syscall_upgrades_to_propagated_safe() {
        let image = shim_library().finish().unwrap();
        let shim = image.symbol("shim").unwrap();
        let syscall_at = shim + 3;
        let an = Verifier::new().analyze(&image);
        assert_eq!(an.verdict_at(syscall_at), Some(Verdict::Safe));
        let site = an.report().site(syscall_at).unwrap();
        assert_eq!(site.kind, SiteKind::PropagatedNumber);
        assert_eq!(site.number, Some(39));
        assert_eq!(site.mov_addr, Some(shim));
        assert_eq!(site.mov_len, Some(3));
    }

    #[test]
    fn upgrades_can_be_disabled_and_v1_verdict_returns() {
        let image = shim_library().finish().unwrap();
        let shim = image.symbol("shim").unwrap();
        let an = Verifier::with_config(VerifierConfig {
            interprocedural_upgrades: false,
            ..VerifierConfig::default()
        })
        .analyze(&image);
        let site = an.report().site(shim + 3).unwrap();
        assert_eq!(
            site.verdict,
            Verdict::Unknown(UnknownReason::NumberNotConstant)
        );
        // The reason chain still names the blocking copy and the
        // abstract definer even without the upgrade.
        assert_eq!(site.chain.blocker, Some(shim));
        assert_eq!(site.chain.definer, Some(shim));
    }

    #[test]
    fn shim_with_two_disagreeing_callers_stays_unknown() {
        let mut a = Assembler::new(0x1000);
        a.label("caller_a").unwrap();
        a.inst(Inst::MovImm32 {
            reg: Reg::Rdi,
            imm: 0,
        });
        a.call_to("shim");
        a.inst(Inst::Ret);
        a.label("caller_b").unwrap();
        a.inst(Inst::MovImm32 {
            reg: Reg::Rdi,
            imm: 60,
        });
        a.call_to("shim");
        a.inst(Inst::Ret);
        a.label("shim").unwrap();
        a.inst(Inst::MovRegReg64 {
            dst: Reg::Rax,
            src: Reg::Rdi,
        });
        a.inst(Inst::Syscall);
        a.inst(Inst::Ret);
        let image = a.finish().unwrap();
        let shim = image.symbol("shim").unwrap();
        let an = Verifier::new().analyze(&image);
        assert_eq!(
            an.verdict_at(shim + 3),
            Some(Verdict::Unknown(UnknownReason::NumberNotConstant))
        );
    }

    #[test]
    fn out_of_range_propagated_number_stays_unknown() {
        let mut a = Assembler::new(0x1000);
        a.label("wrapper").unwrap();
        a.inst(Inst::MovImm32 {
            reg: Reg::Rdi,
            imm: 9999,
        });
        a.call_to("shim");
        a.inst(Inst::Ret);
        a.label("shim").unwrap();
        a.inst(Inst::MovRegReg64 {
            dst: Reg::Rax,
            src: Reg::Rdi,
        });
        a.inst(Inst::Syscall);
        a.inst(Inst::Ret);
        let image = a.finish().unwrap();
        let shim = image.symbol("shim").unwrap();
        let an = Verifier::new().analyze(&image);
        assert_eq!(
            an.verdict_at(shim + 3),
            Some(Verdict::Unknown(UnknownReason::NumberNotConstant))
        );
    }

    #[test]
    fn unknown_chain_points_at_the_blocking_call() {
        // rax set before a call, syscall after: the call both blocks the
        // syntactic walk and clobbers the abstract value.
        let mut a = Assembler::new(0x1000);
        a.label("f").unwrap();
        a.inst(Inst::MovImm32 {
            reg: Reg::Rax,
            imm: 1,
        });
        let call_at = a.here();
        a.call_to("noisy");
        let syscall_at = a.here();
        a.inst(Inst::Syscall);
        a.inst(Inst::Ret);
        a.label("noisy").unwrap();
        a.inst(Inst::Syscall);
        a.inst(Inst::Ret);
        let an = analyze(a);
        let site = an.report().site(syscall_at).unwrap();
        assert!(matches!(site.verdict, Verdict::Unknown(_)));
        assert_eq!(site.chain.blocker, Some(call_at));
    }

    #[test]
    fn propagated_region_shorter_than_a_detour_stays_unknown() {
        // The copy lands rax right before the syscall but the region is
        // 3 + 2 = 5 bytes — exactly enough. Shrink it: an xor-defined
        // rdi copied via a 3-byte mov still works, so instead test a
        // direct 2-byte def (xor) with an adjacent syscall in a called
        // shim — region 2 + 2 = 4 bytes, too small.
        let mut a = Assembler::new(0x1000);
        a.label("wrapper").unwrap();
        a.call_to("shim");
        a.inst(Inst::Ret);
        a.label("shim").unwrap();
        a.inst(Inst::XorEaxEax);
        a.inst(Inst::Syscall);
        a.inst(Inst::Ret);
        let image = a.finish().unwrap();
        let shim = image.symbol("shim").unwrap();
        let an = Verifier::new().analyze(&image);
        // xor is a *syntactic* immediate def, so this is judged by the
        // v1 path as an immediate site, not an upgrade candidate.
        let site = an.report().site(shim + 2).unwrap();
        assert_eq!(site.kind, SiteKind::ImmediateNumber);
    }
}
