//! Property tests for the verifier: determinism of the analysis and the
//! monotonicity contract of interprocedural upgrades — v2 may turn
//! `Unknown` into `Safe`, and may do nothing else.

use proptest::prelude::*;
use xc_isa::asm::Assembler;
use xc_isa::image::BinaryImage;
use xc_isa::inst::{Cond, Inst, Reg};
use xc_verify::{SiteKind, Verdict, Verifier, VerifierConfig};

fn arb_reg() -> impl Strategy<Value = Reg> {
    (0u8..8).prop_map(Reg::from_code)
}

fn arb_cond() -> impl Strategy<Value = Cond> {
    prop_oneof![Just(Cond::E), Just(Cond::Ne)]
}

/// Straight-line-ish function bodies: every instruction the number
/// tracker models, plus short forward/backward branches so regions
/// cross basic blocks. Branch offsets are small enough to stay inside
/// the assembled body or degenerate into verdict-relevant escapes —
/// both interesting to the analyzer, neither fatal to it.
fn arb_body_inst() -> impl Strategy<Value = Inst> {
    prop_oneof![
        Just(Inst::Nop),
        Just(Inst::Ret),
        Just(Inst::Syscall),
        Just(Inst::XorEaxEax),
        Just(Inst::TestEaxEax),
        Just(Inst::PushRbp),
        Just(Inst::PopRbp),
        (arb_reg(), 0u32..512).prop_map(|(reg, imm)| Inst::MovImm32 { reg, imm }),
        (arb_reg(), arb_reg()).prop_map(|(dst, src)| Inst::MovRegReg64 { dst, src }),
        (arb_reg(), 0u8..8).prop_map(|(reg, slot)| Inst::StoreRspDisp8R64 {
            reg,
            disp: slot * 8,
        }),
        (arb_reg(), 0u8..8).prop_map(|(reg, slot)| Inst::LoadRspDisp8R64 {
            reg,
            disp: slot * 8,
        }),
        (arb_cond(), -16i8..16).prop_map(|(cond, rel)| Inst::JccRel8 { cond, rel }),
        (-16i8..16).prop_map(|rel| Inst::JmpRel8 { rel }),
    ]
}

fn image_from(insts: &[Inst]) -> BinaryImage {
    let mut a = Assembler::new(0x40_0000);
    a.label("entry").unwrap();
    for inst in insts {
        a.inst(*inst);
    }
    a.inst(Inst::Ret);
    a.finish().expect("assemble property body")
}

fn v1() -> Verifier {
    Verifier::with_config(VerifierConfig {
        interprocedural_upgrades: false,
        ..VerifierConfig::default()
    })
}

proptest! {
    /// The only verdict transition v2 is allowed over v1 is
    /// `Unknown → Safe`: a v1 `Safe` site is never downgraded, a v1
    /// `Unsafe` verdict is never altered, and site order is preserved.
    #[test]
    fn interprocedural_upgrades_are_monotone(
        insts in proptest::collection::vec(arb_body_inst(), 0..24),
    ) {
        let image = image_from(&insts);
        let r1 = v1().analyze(&image).report().clone();
        let r2 = Verifier::new().analyze(&image).report().clone();
        prop_assert_eq!(r1.sites.len(), r2.sites.len());
        for (s1, s2) in r1.sites.iter().zip(&r2.sites) {
            prop_assert_eq!(s1.syscall_addr, s2.syscall_addr);
            let upgraded = matches!(s1.verdict, Verdict::Unknown(_))
                && s2.verdict == Verdict::Safe
                && s2.kind == SiteKind::PropagatedNumber;
            prop_assert!(
                s1.verdict == s2.verdict || upgraded,
                "illegal transition at {:#x}: {:?} -> {:?}",
                s1.syscall_addr,
                s1.verdict,
                s2.verdict
            );
        }
    }

    /// The analysis is a pure function of the image: re-running it
    /// reproduces the report byte-for-byte (rendered form covers every
    /// verdict, site kind, number, and reason chain).
    #[test]
    fn analysis_is_deterministic(
        insts in proptest::collection::vec(arb_body_inst(), 0..24),
    ) {
        let image = image_from(&insts);
        let a = format!("{}", Verifier::new().analyze(&image).report());
        let b = format!("{}", Verifier::new().analyze(&image).report());
        prop_assert_eq!(a, b);
    }

    /// A libc-style `syscall(nr)` shim upgrades for every in-range
    /// number, and the propagated constant is exactly the caller's.
    #[test]
    fn shim_upgrade_recovers_the_exact_number(nr in 0u32..352) {
        let mut a = Assembler::new(0x40_0000);
        a.label("wrapper").unwrap();
        a.inst(Inst::MovImm32 { reg: Reg::Rdi, imm: nr });
        a.call_to("shim");
        a.inst(Inst::Ret);
        a.label("shim").unwrap();
        a.inst(Inst::MovRegReg64 { dst: Reg::Rax, src: Reg::Rdi });
        a.inst(Inst::Syscall);
        a.inst(Inst::Ret);
        let image = a.finish().unwrap();

        let r1 = v1().analyze(&image).report().clone();
        prop_assert!(matches!(r1.sites[0].verdict, Verdict::Unknown(_)));

        let r2 = Verifier::new().analyze(&image).report().clone();
        prop_assert_eq!(r2.sites[0].verdict, Verdict::Safe);
        prop_assert_eq!(r2.sites[0].kind, SiteKind::PropagatedNumber);
        prop_assert_eq!(r2.sites[0].number, Some(i64::from(nr)));
    }
}
