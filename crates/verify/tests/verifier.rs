//! End-to-end verification of whole synthetic binaries (the acceptance
//! scenarios from the analyzer's design): a clean library proves `Safe`
//! at every site, and a constructed interior-jump-target binary is
//! flagged `Unsafe` at exactly the poisoned site.

use xc_isa::asm::Assembler;
use xc_isa::image::BinaryImage;
use xc_isa::inst::{Cond, Inst, Reg};
use xc_verify::{DetourHazard, SiteKind, UnknownReason, UnsafeReason, Verdict, Verifier};

/// A small synthetic libc: one wrapper of every patchable shape, padded
/// between functions like a linker would.
fn clean_library() -> BinaryImage {
    let mut a = Assembler::new(0x40_0000);
    // glibc small wrapper (7-byte pattern).
    a.label("__read").unwrap();
    a.inst(Inst::MovImm32 {
        reg: Reg::Rax,
        imm: 0,
    });
    a.inst(Inst::Syscall);
    a.inst(Inst::Ret);
    a.align(16);
    // glibc large wrapper (9-byte pattern).
    a.label("__rt_sigreturn").unwrap();
    a.inst(Inst::MovImm32SxR64 {
        reg: Reg::Rax,
        imm: 15,
    });
    a.inst(Inst::Syscall);
    a.inst(Inst::Ret);
    a.align(16);
    // Go-style stack-number wrapper.
    a.label("syscall_Syscall").unwrap();
    a.inst(Inst::LoadRspDisp8R64 {
        reg: Reg::Rax,
        disp: 8,
    });
    a.inst(Inst::Syscall);
    a.inst(Inst::Ret);
    a.align(16);
    // libpthread-style cancellable wrapper: intra-region conditional.
    a.label("__close_cancellable").unwrap();
    a.inst(Inst::MovImm32 {
        reg: Reg::Rax,
        imm: 3,
    });
    a.inst(Inst::TestEaxEax);
    a.jcc_to(Cond::E, "close_do");
    a.inst(Inst::Nop);
    a.label("close_do").unwrap();
    a.inst(Inst::Syscall);
    a.inst(Inst::Ret);
    a.finish().unwrap()
}

#[test]
fn clean_library_proves_every_site_safe() {
    let image = clean_library();
    let analysis = Verifier::new().analyze(&image);
    let report = analysis.report();
    assert_eq!(report.sites.len(), 4);
    let (safe, unsafe_, unknown) = report.tally();
    assert_eq!(
        (safe, unsafe_, unknown),
        (4, 0, 0),
        "expected all sites safe:\n{report}"
    );
    // The Go wrapper is recognized as the stack-dispatch shape.
    let go_syscall = image.symbol("syscall_Syscall").unwrap() + 5;
    assert_eq!(report.site(go_syscall).unwrap().kind, SiteKind::StackNumber);
    // The cancellable wrapper's number and definition site are recovered.
    let close = report.site(image.symbol("close_do").unwrap()).unwrap();
    assert_eq!(close.number, Some(3));
    assert_eq!(
        close.mov_addr,
        Some(image.symbol("__close_cancellable").unwrap())
    );
}

/// The same library with one poisoned wrapper: a helper elsewhere in the
/// image jumps straight to the wrapper's `syscall`, skipping the `mov`.
/// A linear scanner still sees `mov …; nop; syscall` and would happily
/// detour the whole region — breaking the side entrance.
fn poisoned_library() -> (BinaryImage, u64) {
    let mut a = Assembler::new(0x40_0000);
    a.label("__read").unwrap();
    a.inst(Inst::MovImm32 {
        reg: Reg::Rax,
        imm: 0,
    });
    a.inst(Inst::Syscall);
    a.inst(Inst::Ret);
    a.align(16);
    // The victim: a wrapper whose interior is also a jump target.
    a.label("__write").unwrap();
    a.inst(Inst::MovImm32 {
        reg: Reg::Rax,
        imm: 1,
    });
    a.label("__write_interior").unwrap();
    a.inst(Inst::Nop);
    a.inst(Inst::Syscall);
    a.inst(Inst::Ret);
    a.align(16);
    // The poisoner: tail-jumps into the victim's interior with its own
    // number already in rax.
    a.label("__write_nocheck").unwrap();
    a.inst(Inst::MovImm32 {
        reg: Reg::Rax,
        imm: 1,
    });
    a.jmp_to("__write_interior");
    let image = a.finish().unwrap();
    let syscall_addr = image.symbol("__write_interior").unwrap() + 1;
    (image, syscall_addr)
}

#[test]
fn interior_jump_target_binary_is_flagged_unsafe() {
    let (image, victim_syscall) = poisoned_library();
    let analysis = Verifier::new().analyze(&image);
    let interior = image.symbol("__write_interior").unwrap();
    assert_eq!(
        analysis.verdict_at(victim_syscall),
        Some(Verdict::Unsafe(UnsafeReason::InteriorJumpTarget {
            target: interior
        }))
    );
    // The clean wrapper in the same image is unaffected.
    let read_syscall = image.symbol("__read").unwrap() + 5;
    assert_eq!(analysis.verdict_at(read_syscall), Some(Verdict::Safe));
}

#[test]
fn batched_hazard_queries_match_single_region_form() {
    // The offline patcher's batched pre-flight must agree, query for
    // query, with the single-region form — on both a clean region and
    // one with a proven interior entrance.
    let (image, victim_syscall) = poisoned_library();
    let analysis = Verifier::new().analyze(&image);
    let read_mov = image.symbol("__read").unwrap();
    let write_mov = image.symbol("__write").unwrap();
    let queries = [
        (read_mov, read_mov + 5, read_mov + 5),
        (write_mov, write_mov + 5, victim_syscall),
    ];
    let batched = analysis.region_detour_hazards(&queries);
    assert_eq!(batched.len(), queries.len());
    for (&(rs, me, sa), got) in queries.iter().zip(&batched) {
        assert_eq!(*got, analysis.region_detour_hazard(rs, me, sa));
    }
    assert_eq!(batched[0], None);
    assert_eq!(
        batched[1],
        Some(DetourHazard::InteriorJumpTarget {
            target: image.symbol("__write_interior").unwrap()
        })
    );
}

#[test]
fn branch_landing_mid_instruction_yields_unknown_not_safe() {
    // The decoder ambiguity case: a jump into the immediate of the mov.
    // The bytes around the "hidden" syscall have two valid readings, so
    // the verifier must refuse to certify the enclosing site.
    let mut a = Assembler::new(0x1000);
    a.label("f").unwrap();
    // imm bytes decode as `syscall; nop; nop` when entered at +1.
    a.inst(Inst::MovImm32 {
        reg: Reg::Rax,
        imm: u32::from_le_bytes([0x0f, 0x05, 0x90, 0x90]),
    });
    a.inst(Inst::Syscall); // the sweep-visible site at 0x1005
    a.inst(Inst::Ret);
    a.label("evil").unwrap();
    a.inst(Inst::JmpRel32 { rel: 0 }); // patched below to hit 0x1001
    let image = a.finish().unwrap();
    let evil = image.symbol("evil").unwrap();
    let mut bytes = image
        .read_bytes(image.base(), image.len())
        .unwrap()
        .to_vec();
    let rel = (0x1001i64 - (evil as i64 + 5)) as i32;
    let off = (evil - image.base()) as usize;
    bytes[off + 1..off + 5].copy_from_slice(&rel.to_le_bytes());
    let mut poisoned = BinaryImage::new(image.base(), bytes);
    poisoned.add_symbol("f", 0x1000);
    poisoned.add_symbol("evil", evil);

    let analysis = Verifier::new().analyze(&poisoned);
    assert_eq!(
        analysis.verdict_at(0x1005),
        Some(Verdict::Unknown(UnknownReason::OverlappingDecode {
            at: 0x1001
        }))
    );
}

#[test]
fn rcx_consumer_after_syscall_is_flagged() {
    // A hand-written assembly routine that (incorrectly, but legally)
    // reads the %rip that `syscall` left in %rcx.
    let mut a = Assembler::new(0x1000);
    a.label("probe_rip").unwrap();
    a.inst(Inst::MovImm32 {
        reg: Reg::Rax,
        imm: 39,
    });
    a.inst(Inst::Syscall);
    a.inst(Inst::MovRegReg64 {
        dst: Reg::Rax,
        src: Reg::Rcx,
    });
    a.inst(Inst::Ret);
    let analysis = Verifier::new().analyze(&a.finish().unwrap());
    assert_eq!(
        analysis.verdict_at(0x1005),
        Some(Verdict::Unsafe(UnsafeReason::RcxLiveAfterSite))
    );
}

#[test]
fn report_display_renders_every_site() {
    let image = clean_library();
    let rendered = Verifier::new().analyze(&image).report().to_string();
    assert!(rendered.contains("4 sites: 4 safe, 0 unsafe, 0 unknown"));
    assert!(rendered.contains("[stack]"));
    assert!(rendered.contains("[immediate]"));
}
