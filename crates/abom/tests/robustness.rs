//! Failure-injection robustness: the interpreter + kernel pair must
//! never panic, whatever bytes it executes — corrupted images, random
//! entry points, hostile jump targets. Patching a live system's text
//! pages is only safe if every malformed state degrades to a typed error
//! or a clean halt.

use proptest::prelude::*;

use xc_abom::binaries::{library_image, WrapperSpec, WrapperStyle};
use xc_abom::handler::XContainerKernel;
use xc_isa::cpu::Cpu;
use xc_isa::image::BinaryImage;

fn base_image() -> BinaryImage {
    library_image(&[
        WrapperSpec {
            index: 0,
            style: WrapperStyle::GlibcSmall,
            nr: 0,
        },
        WrapperSpec {
            index: 1,
            style: WrapperStyle::GlibcLarge,
            nr: 15,
        },
        WrapperSpec {
            index: 2,
            style: WrapperStyle::PthreadCancellable,
            nr: 202,
        },
        WrapperSpec {
            index: 3,
            style: WrapperStyle::GoStack,
            nr: 0,
        },
    ])
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Random single-byte corruption anywhere in the text: execution from
    /// the normal entry terminates with Ok(halt) or a typed CpuError —
    /// never a panic, never an endless loop (step budget enforced).
    #[test]
    fn corrupted_images_never_panic(
        offset in 0usize..64,
        value in any::<u8>(),
        entry_idx in 0usize..4,
    ) {
        let mut image = base_image();
        let addr = image.base() + offset as u64;
        if image.contains(addr) {
            // Corrupt through the patcher's own WP-override primitive.
            let original = image.read_bytes(addr, 1).unwrap()[0];
            let _ = image.cmpxchg(addr, &[original], &[value], true);
        }
        let entry = image
            .symbol(&format!("wrapper_{entry_idx}"))
            .expect("symbol");
        let mut cpu = Cpu::new(entry);
        let _ = cpu.push(0); // stack arg for the Go wrapper
        let _ = cpu.push_halt_frame();
        let mut kernel = XContainerKernel::new();
        // Must return, Ok or Err — the harness would catch a panic.
        let _ = cpu.run(&mut image, &mut kernel, 2_000);
    }

    /// Execution started at an arbitrary address inside the image (as a
    /// wild jump would) terminates cleanly.
    #[test]
    fn wild_entry_points_never_panic(offset in 0u64..64) {
        let mut image = base_image();
        let entry = image.base() + offset.min(image.len() as u64 - 1);
        let mut cpu = Cpu::new(entry);
        let _ = cpu.push_halt_frame();
        let mut kernel = XContainerKernel::new();
        let _ = cpu.run(&mut image, &mut kernel, 2_000);
    }

    /// Patching under corruption: feeding ABOM syscall addresses that
    /// point anywhere (including mid-instruction) never panics and never
    /// corrupts unrelated bytes — a failed recognition leaves the image
    /// byte-identical.
    #[test]
    fn patcher_on_arbitrary_addresses_is_safe(offset in 0u64..80) {
        use xc_abom::patcher::{Abom, PatchOutcome};
        let mut image = base_image();
        let addr = image.base() + offset;
        let before = image.read_bytes(image.base(), image.len()).unwrap().to_vec();
        let mut abom = Abom::new();
        let outcome = abom.on_syscall_trap(&mut image, addr);
        let after = image.read_bytes(image.base(), image.len()).unwrap().to_vec();
        match outcome {
            PatchOutcome::Patched(_) | PatchOutcome::AlreadyPatched => {
                // A real site: bytes may change, but only within the
                // pair's 7/9-byte window.
                let diffs = before
                    .iter()
                    .zip(&after)
                    .filter(|(a, b)| a != b)
                    .count();
                prop_assert!(diffs <= 9, "patch touched {diffs} bytes");
            }
            _ => prop_assert_eq!(before, after, "non-patch must not modify"),
        }
    }
}
