//! Execution-equivalence properties of ABOM (§4.4).
//!
//! The paper argues informally that binary patching is safe: 7-byte
//! replacements are a single atomic exchange, the 9-byte replacement is
//! staged so "any intermediate state of the binary is still valid", the
//! handler fixes up return addresses, and a #UD trap recovers jumps into a
//! patched call's interior. These tests *prove* those claims for the
//! modelled subset by running programs under every configuration and
//! comparing syscall traces.

use proptest::prelude::*;

use xc_abom::binaries::{invoke, invoke_with, library_image, WrapperSpec, WrapperStyle};
use xc_abom::handler::XContainerKernel;
use xc_abom::patcher::AbomConfig;
use xc_abom::table::MAX_SYSCALL_NR;

fn arb_style() -> impl Strategy<Value = WrapperStyle> {
    prop_oneof![
        Just(WrapperStyle::GlibcSmall),
        Just(WrapperStyle::GlibcLarge),
        Just(WrapperStyle::GoStack),
        Just(WrapperStyle::PthreadCancellable),
        Just(WrapperStyle::IndirectNumber),
        Just(WrapperStyle::XorZeroRead),
    ]
}

#[derive(Debug, Clone)]
struct LibraryPlan {
    specs: Vec<WrapperSpec>,
    /// Sequence of (wrapper index, stack nr for Go wrappers).
    calls: Vec<(usize, u64)>,
}

fn arb_plan() -> impl Strategy<Value = LibraryPlan> {
    let wrappers = proptest::collection::vec((arb_style(), 0..=MAX_SYSCALL_NR), 1..6);
    (
        wrappers,
        proptest::collection::vec(any::<(u16, u64)>(), 1..40),
    )
        .prop_map(|(styles, raw_calls)| {
            let specs: Vec<WrapperSpec> = styles
                .into_iter()
                .enumerate()
                .map(|(index, (style, nr))| WrapperSpec { index, style, nr })
                .collect();
            let calls = raw_calls
                .into_iter()
                .map(|(w, nr)| (usize::from(w) % specs.len(), nr % (MAX_SYSCALL_NR + 1)))
                .collect();
            LibraryPlan { specs, calls }
        })
}

/// Runs the plan under a kernel config and returns the syscall-number
/// trace.
fn run_plan(plan: &LibraryPlan, config: AbomConfig) -> Vec<u64> {
    let mut image = library_image(&plan.specs);
    let mut kernel = XContainerKernel::with_config(config);
    for &(widx, stack_nr) in &plan.calls {
        let spec = plan.specs[widx];
        let entry = image
            .symbol(&format!("wrapper_{}", spec.index))
            .expect("wrapper symbol");
        let arg = spec.style.takes_stack_number().then_some(stack_nr);
        let rdi = spec.style.takes_register_number().then_some(stack_nr);
        invoke_with(&mut image, &mut kernel, entry, arg, rdi).expect("invocation");
    }
    kernel.syscall_numbers()
}

/// Runs the plan with offline patching applied first, ABOM disabled.
fn run_plan_offline(plan: &LibraryPlan) -> Vec<u64> {
    let image = library_image(&plan.specs);
    let (mut patched, _) = xc_abom::offline::OfflinePatcher::new()
        .patch(&image)
        .expect("offline patch");
    let mut kernel = XContainerKernel::with_config(AbomConfig {
        enabled: false,
        nine_byte_phase2: true,
        preflight_verify: false,
    });
    for &(widx, stack_nr) in &plan.calls {
        let spec = plan.specs[widx];
        let entry = patched
            .symbol(&format!("wrapper_{}", spec.index))
            .expect("wrapper symbol");
        let arg = spec.style.takes_stack_number().then_some(stack_nr);
        let rdi = spec.style.takes_register_number().then_some(stack_nr);
        invoke_with(&mut patched, &mut kernel, entry, arg, rdi).expect("invocation");
    }
    kernel.syscall_numbers()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Online ABOM never changes program semantics: the syscall trace with
    /// patching enabled equals the trace with patching disabled, for
    /// arbitrary wrapper libraries and call sequences.
    #[test]
    fn online_patching_preserves_traces(plan in arb_plan()) {
        let baseline = run_plan(&plan, AbomConfig { enabled: false, nine_byte_phase2: true, preflight_verify: false });
        let patched = run_plan(&plan, AbomConfig::default());
        prop_assert_eq!(baseline, patched);
    }

    /// Phase 1 of the 9-byte replacement alone (interrupted patch — a
    /// concurrent vCPU may execute this state indefinitely) is equivalent.
    #[test]
    fn nine_byte_phase1_state_is_valid(plan in arb_plan()) {
        let baseline = run_plan(&plan, AbomConfig { enabled: false, nine_byte_phase2: true, preflight_verify: false });
        let phase1 = run_plan(&plan, AbomConfig { enabled: true, nine_byte_phase2: false, preflight_verify: false });
        prop_assert_eq!(baseline, phase1);
    }

    /// The offline detour patcher preserves semantics, including for the
    /// cancellable wrappers online ABOM cannot touch.
    #[test]
    fn offline_patching_preserves_traces(plan in arb_plan()) {
        let baseline = run_plan(&plan, AbomConfig { enabled: false, nine_byte_phase2: true, preflight_verify: false });
        let offline = run_plan_offline(&plan);
        prop_assert_eq!(baseline, offline);
    }

    /// Re-running a fully patched image yields pure function-call dispatch:
    /// after a warm-up pass over every wrapper, no syscall ever traps
    /// again (for patchable styles).
    #[test]
    fn warm_image_never_traps_for_patchable_styles(
        styles in proptest::collection::vec((0..3usize, 0..=MAX_SYSCALL_NR), 1..5),
        reps in 1..5usize,
    ) {
        let patchable = [
            WrapperStyle::GlibcSmall,
            WrapperStyle::GlibcLarge,
            WrapperStyle::GoStack,
        ];
        let specs: Vec<WrapperSpec> = styles
            .iter()
            .enumerate()
            .map(|(index, &(s, nr))| WrapperSpec { index, style: patchable[s], nr })
            .collect();
        let mut image = library_image(&specs);
        let mut kernel = XContainerKernel::new();
        // Warm-up: every site traps exactly once and is patched.
        for spec in &specs {
            let entry = image.symbol(&format!("wrapper_{}", spec.index)).unwrap();
            let arg = spec.style.takes_stack_number().then_some(spec.nr);
            invoke(&mut image, &mut kernel, entry, arg).unwrap();
        }
        prop_assert_eq!(kernel.stats().trapped, specs.len() as u64);
        // Steady state: zero traps.
        let warm_traps = kernel.stats().trapped;
        for _ in 0..reps {
            for spec in &specs {
                let entry = image.symbol(&format!("wrapper_{}", spec.index)).unwrap();
                let arg = spec.style.takes_stack_number().then_some(spec.nr);
                invoke(&mut image, &mut kernel, entry, arg).unwrap();
            }
        }
        prop_assert_eq!(kernel.stats().trapped, warm_traps);
        prop_assert_eq!(
            kernel.stats().via_function_call,
            (reps * specs.len()) as u64
        );
    }
}
