//! Always-on patch-safety integration tests: the `xc-verify` analyzer
//! wired into both patch paths, plus the deterministic mid-patch
//! regressions (moved out of the property-test suite so they run in
//! default builds).

use xc_isa::asm::Assembler;
use xc_isa::cpu::Cpu;
use xc_isa::inst::{Inst, Reg};
use xc_verify::reverify;

use xc_abom::binaries::{invoke, library_image, WrapperSpec, WrapperStyle};
use xc_abom::handler::XContainerKernel;
use xc_abom::offline::{OfflinePatcher, SkipReason};
use xc_abom::patcher::{Abom, AbomConfig, PatchOutcome};

/// A library whose second wrapper has a side entrance: another routine
/// tail-jumps into the wrapper's interior with its own `%rax` setup. The
/// linear scanner alone would detour the whole region and break the side
/// entrance; the verifier must veto it.
fn poisoned_library() -> xc_isa::image::BinaryImage {
    let mut a = Assembler::new(0x40_0000);
    // A clean detour candidate (mov / nop / syscall).
    a.label("clean").unwrap();
    a.inst(Inst::MovImm32 {
        reg: Reg::Rax,
        imm: 39,
    });
    a.inst(Inst::Nop);
    a.inst(Inst::Syscall);
    a.inst(Inst::Ret);
    a.align(16);
    // The victim: same shape, but its interior is a jump target.
    a.label("victim").unwrap();
    a.inst(Inst::MovImm32 {
        reg: Reg::Rax,
        imm: 1,
    });
    a.label("victim_interior").unwrap();
    a.inst(Inst::Nop);
    a.inst(Inst::Syscall);
    a.inst(Inst::Ret);
    a.align(16);
    a.label("side_entrance").unwrap();
    a.inst(Inst::MovImm32 {
        reg: Reg::Rax,
        imm: 2,
    });
    a.jmp_to("victim_interior");
    a.finish().unwrap()
}

#[test]
fn offline_refuses_interior_jump_target_region() {
    let image = poisoned_library();
    let victim_syscall = image.symbol("victim_interior").unwrap() + 1;
    let (mut patched, report) = OfflinePatcher::new().patch(&image).unwrap();

    // The clean wrapper is detoured; the poisoned one is refused.
    assert_eq!(report.detour_patched, 1);
    assert_eq!(report.interior_jump_skips(), 1);
    assert!(report
        .skipped
        .contains(&(victim_syscall, SkipReason::InteriorJumpTarget)));

    // Execution proof that the refusal matters: the side entrance still
    // works (its target was not turned into int3 fill), with the side
    // entrance's own syscall number.
    let mut kernel = XContainerKernel::new();
    let side = patched.symbol("side_entrance").unwrap();
    patched.protect_all(false);
    invoke(&mut patched, &mut kernel, side, None).unwrap();
    assert_eq!(kernel.syscall_numbers(), vec![2]);

    // And the clean wrapper dispatches via function call.
    let clean = patched.symbol("clean").unwrap();
    invoke(&mut patched, &mut kernel, clean, None).unwrap();
    assert_eq!(kernel.syscall_numbers(), vec![2, 39]);
    assert_eq!(kernel.stats().via_function_call, 1);
}

#[test]
fn offline_output_passes_reverification() {
    let specs = [
        WrapperSpec {
            index: 0,
            style: WrapperStyle::GlibcSmall,
            nr: 0,
        },
        WrapperSpec {
            index: 1,
            style: WrapperStyle::GlibcLarge,
            nr: 15,
        },
        WrapperSpec {
            index: 2,
            style: WrapperStyle::PthreadCancellable,
            nr: 202,
        },
        WrapperSpec {
            index: 3,
            style: WrapperStyle::GoStack,
            nr: 0,
        },
    ];
    let image = library_image(&specs);
    let (patched, report) = OfflinePatcher::new().patch(&image).unwrap();

    let shape = reverify(&patched, image.len());
    assert!(shape.ok(), "violations: {:?}", shape.violations);
    assert_eq!(shape.detours.len() as u64, report.detour_patched);
    // Every adjacent patch decodes to a documented 7- or 9-byte form, and
    // every detour trampoline carries exactly one vsyscall call (counted
    // as a 7-byte form inside the trampoline area — excluded here by the
    // text-only classification).
    assert_eq!(
        (shape.seven_byte.len() + shape.nine_byte.len()) as u64,
        report.adjacent_patched
    );
}

#[test]
fn reverify_catches_a_corrupted_detour() {
    let image = library_image(&[WrapperSpec {
        index: 0,
        style: WrapperStyle::PthreadCancellable,
        nr: 202,
    }]);
    let (patched, report) = OfflinePatcher::new().patch(&image).unwrap();
    assert_eq!(report.detour_patched, 1);

    // Corrupt the detour jump so it no longer targets the trampoline.
    let (jmp_addr, _) = reverify(&patched, image.len()).detours[0];
    let mut bytes = patched
        .read_bytes(patched.base(), patched.len())
        .unwrap()
        .to_vec();
    let off = (jmp_addr - patched.base()) as usize;
    for b in &mut bytes[off..off + 5] {
        *b = 0xcc;
    }
    let corrupted = xc_isa::image::BinaryImage::new(patched.base(), bytes);
    let shape = reverify(&corrupted, image.len());
    assert!(!shape.ok());
    assert!(shape
        .violations
        .iter()
        .any(|v| matches!(v, xc_verify::Violation::TrampolineUntargeted { .. })));
}

#[test]
fn preflight_verify_allows_provably_safe_sites() {
    let specs = [WrapperSpec {
        index: 0,
        style: WrapperStyle::GlibcSmall,
        nr: 0,
    }];
    let mut image = library_image(&specs);
    let entry = image.symbol("wrapper_0").unwrap();
    let mut kernel = XContainerKernel::with_config(AbomConfig {
        enabled: true,
        nine_byte_phase2: true,
        preflight_verify: true,
    });
    for _ in 0..3 {
        invoke(&mut image, &mut kernel, entry, None).unwrap();
    }
    assert_eq!(kernel.stats().verify_rejected, 0);
    assert_eq!(kernel.stats().via_function_call, 2, "patched on first trap");
}

#[test]
fn preflight_verify_rejects_rcx_consumer() {
    // recognize() accepts this site (adjacent mov+syscall), but the
    // verifier proves the caller reads the %rcx the syscall clobbers —
    // the one hazard class the online pattern match cannot see.
    let mut a = Assembler::new(0x40_0000);
    a.label("wrapper").unwrap();
    a.inst(Inst::MovImm32 {
        reg: Reg::Rax,
        imm: 7,
    });
    a.inst(Inst::Syscall);
    a.inst(Inst::MovRegReg64 {
        dst: Reg::Rdx,
        src: Reg::Rcx,
    });
    a.inst(Inst::Ret);
    let mut image = a.finish().unwrap();
    image.protect_all(false);
    let syscall_addr = image.symbol("wrapper").unwrap() + 5;

    let mut abom = Abom::with_config(AbomConfig {
        enabled: true,
        nine_byte_phase2: true,
        preflight_verify: true,
    });
    assert_eq!(
        abom.on_syscall_trap(&mut image, syscall_addr),
        PatchOutcome::VerifyRejected
    );
    assert_eq!(abom.stats().verify_rejected, 1);

    // Without pre-flight verification the same site is happily patched —
    // the ablation delta the knob exists to expose.
    let mut image2 = poisonless_copy();
    let site2 = image2.symbol("wrapper").unwrap() + 5;
    let mut abom2 = Abom::new();
    assert!(abom2.on_syscall_trap(&mut image2, site2).is_optimized());
}

/// Same shape as in `preflight_verify_rejects_rcx_consumer`, fresh image.
fn poisonless_copy() -> xc_isa::image::BinaryImage {
    let mut a = Assembler::new(0x40_0000);
    a.label("wrapper").unwrap();
    a.inst(Inst::MovImm32 {
        reg: Reg::Rax,
        imm: 7,
    });
    a.inst(Inst::Syscall);
    a.inst(Inst::MovRegReg64 {
        dst: Reg::Rdx,
        src: Reg::Rcx,
    });
    a.inst(Inst::Ret);
    let mut image = a.finish().unwrap();
    image.protect_all(false);
    image
}

/// Deterministic regression: the mid-patch interleaving the paper worries
/// about — one vCPU executes the wrapper *between* phase 1 and phase 2 of
/// the 9-byte replacement. (Moved from the proptest suite so it runs in
/// default builds.)
#[test]
fn nine_byte_interleaved_execution_is_equivalent() {
    let specs = [WrapperSpec {
        index: 0,
        style: WrapperStyle::GlibcLarge,
        nr: 15,
    }];

    // vCPU A: trap patches phase 1 only (simulating preemption before
    // phase 2).
    let mut image = library_image(&specs);
    let entry = image.symbol("wrapper_0").unwrap();
    let mut kernel_a = XContainerKernel::with_config(AbomConfig {
        enabled: true,
        nine_byte_phase2: false,
        preflight_verify: false,
    });
    invoke(&mut image, &mut kernel_a, entry, None).unwrap();
    assert_eq!(kernel_a.syscall_numbers(), vec![15]);

    // vCPU B: executes the phase-1 state (call + leftover syscall). The
    // handler must skip the leftover syscall at the return address.
    let mut kernel_b = XContainerKernel::with_config(AbomConfig {
        enabled: false,
        nine_byte_phase2: true,
        preflight_verify: false,
    });
    let mut cpu = Cpu::new(entry);
    cpu.push_halt_frame().unwrap();
    cpu.run(&mut image, &mut kernel_b, 1000).unwrap();
    assert_eq!(
        kernel_b.syscall_numbers(),
        vec![15],
        "exactly one syscall, not two"
    );
    assert_eq!(kernel_b.stats().via_function_call, 1);
    assert_eq!(kernel_b.stats().trapped, 0);

    // Phase 2 later completes; execution still equivalent.
    let mut kernel_c = XContainerKernel::new(); // patching enabled
    invoke(&mut image, &mut kernel_c, entry, None).unwrap();
    assert_eq!(kernel_c.syscall_numbers(), vec![15]);
}

/// Deterministic regression for the jump-into-the-middle #UD recovery.
/// (Moved from the proptest suite so it runs in default builds.)
#[test]
fn jump_into_patched_call_interior_recovers() {
    let mut a = Assembler::new(0x40_0000);
    a.label("wrapper").unwrap();
    a.inst(Inst::MovImm32 {
        reg: Reg::Rax,
        imm: 7,
    });
    a.label("sysc").unwrap();
    a.inst(Inst::Syscall);
    a.inst(Inst::Ret);
    a.label("jumper").unwrap();
    a.inst(Inst::MovImm32 {
        reg: Reg::Rax,
        imm: 7,
    });
    a.jmp_to("sysc");
    let mut image = a.finish().unwrap();
    image.protect_all(false);

    let wrapper = image.symbol("wrapper").unwrap();
    let jumper = image.symbol("jumper").unwrap();
    let mut kernel = XContainerKernel::new();

    // Patch through the normal path.
    invoke(&mut image, &mut kernel, wrapper, None).unwrap();
    // The jumper now lands on the 60 ff tail; the #UD fixer must recover
    // and the syscall trace must match the unpatched semantics.
    invoke(&mut image, &mut kernel, jumper, None).unwrap();
    assert_eq!(kernel.syscall_numbers(), vec![7, 7]);
    assert_eq!(kernel.stats().ud_fixups, 1);
}
