//! The X-Kernel + X-LibOS syscall handling pair, as interpreter hooks.
//!
//! [`XContainerKernel`] wires the three trap surfaces of the mini CPU to
//! the mechanisms of §4.2/§4.4:
//!
//! * a trapped `syscall` is counted as *forwarded*, then handed to ABOM to
//!   patch the site;
//! * a call through the vsyscall table is counted as a *function-call*
//!   syscall; the X-LibOS handler then checks the return address and skips
//!   a leftover `syscall` or the phase-2 back-`jmp` (the 9-byte fix-up);
//! * an invalid-opcode trap on the `60 ff` tail of a patched call is
//!   repaired by moving the instruction pointer back to the call start.

use xc_isa::cpu::{Cpu, Flow, Hooks};
use xc_isa::image::BinaryImage;
use xc_isa::inst::Reg;

use crate::patcher::{Abom, AbomConfig};
use crate::stats::AbomStats;
use crate::table::EntryKind;

/// How a syscall reached the kernel.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Via {
    /// `syscall` instruction: trapped into the X-Kernel and forwarded.
    Trap,
    /// `call` through the vsyscall entry table: a plain function call.
    FunctionCall,
}

/// One observed syscall.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SyscallEvent {
    /// The syscall number.
    pub nr: u64,
    /// Arrival path.
    pub via: Via,
}

/// The Linux `exit_group` syscall number — halts the interpreted program.
pub const SYS_EXIT_GROUP: u64 = 231;

/// The simulated X-Kernel/X-LibOS pair.
///
/// See the crate-level example for typical use. The recorded
/// [`trace`](XContainerKernel::trace) is what the equivalence tests compare
/// across patched/unpatched/mid-patch executions.
#[derive(Debug, Clone, Default)]
pub struct XContainerKernel {
    abom: Abom,
    trace: Vec<SyscallEvent>,
}

impl XContainerKernel {
    /// Creates a kernel with ABOM enabled (the default configuration).
    pub fn new() -> Self {
        XContainerKernel::default()
    }

    /// Creates a kernel with explicit ABOM configuration (e.g. disabled,
    /// for baseline runs).
    pub fn with_config(config: AbomConfig) -> Self {
        XContainerKernel {
            abom: Abom::with_config(config),
            trace: Vec::new(),
        }
    }

    /// Combined ABOM + dispatch statistics.
    pub fn stats(&self) -> &AbomStats {
        self.abom.stats()
    }

    /// The ordered syscall trace observed so far.
    pub fn trace(&self) -> &[SyscallEvent] {
        &self.trace
    }

    /// Just the syscall numbers, in order — the semantic footprint used
    /// for equivalence checking.
    pub fn syscall_numbers(&self) -> Vec<u64> {
        self.trace.iter().map(|e| e.nr).collect()
    }

    /// Clears the trace (keeps patch statistics).
    pub fn clear_trace(&mut self) {
        self.trace.clear();
    }

    /// Access to the underlying patcher (for table lookups in tests).
    pub fn abom(&self) -> &Abom {
        &self.abom
    }

    fn record(&mut self, nr: u64, via: Via) -> Flow {
        self.trace.push(SyscallEvent { nr, via });
        match via {
            Via::Trap => self.abom.stats_mut().trapped += 1,
            Via::FunctionCall => self.abom.stats_mut().via_function_call += 1,
        }
        if nr == SYS_EXIT_GROUP {
            Flow::Halt
        } else {
            Flow::Continue
        }
    }
}

impl Hooks for XContainerKernel {
    fn on_syscall(&mut self, cpu: &mut Cpu, image: &mut BinaryImage) -> Flow {
        let nr = cpu.reg(Reg::Rax);
        // Patch the site before forwarding (§4.4): the current invocation
        // still completes via the trap path.
        self.abom.on_syscall_trap(image, cpu.rip());
        self.record(nr, Via::Trap)
    }

    fn on_vsyscall_call(&mut self, target: u64, cpu: &mut Cpu, image: &mut BinaryImage) -> Flow {
        let nr = match self.abom.table().resolve(target) {
            Some(EntryKind::Number(nr)) => nr,
            Some(EntryKind::RaxDispatch) => cpu.reg(Reg::Rax),
            Some(EntryKind::StackDisp(disp)) => {
                match cpu.read_stack_u64(cpu.reg(Reg::Rsp) + u64::from(disp)) {
                    Ok(nr) => nr,
                    Err(_) => return Flow::Halt,
                }
            }
            None => return Flow::Halt, // wild call outside the table
        };
        let flow = self.record(nr, Via::FunctionCall);

        // §4.4 return-address check: "the syscall handler in X-LibOS will
        // check if the instruction on the return address is either a
        // syscall or a specific jmp to the call instruction again. If it
        // is, the syscall handler modifies the return address to skip this
        // instruction."
        if let Ok(bytes) = image.read_bytes(cpu.rip(), 2) {
            if bytes == [0x0f, 0x05] || bytes == [0xeb, 0xf7] {
                cpu.set_rip(cpu.rip() + 2);
                self.abom.stats_mut().return_fixups += 1;
            }
        }
        flow
    }

    fn on_invalid_opcode(&mut self, cpu: &mut Cpu, image: &mut BinaryImage) -> Flow {
        // The jump-into-the-middle case: the program jumped to the original
        // syscall location, which is now the "60 ff" tail of a 7-byte call.
        // Verify the shape and move rip back to the call start.
        let at = cpu.rip();
        let tail_ok = matches!(image.read_bytes(at, 2), Ok([0x60, 0xff]));
        let head_ok =
            at >= image.base() + 5 && matches!(image.read_bytes(at - 5, 3), Ok([0xff, 0x14, 0x25]));
        if tail_ok && head_ok {
            cpu.set_rip(at - 5);
            self.abom.stats_mut().ud_fixups += 1;
            Flow::Continue
        } else {
            Flow::Halt
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::binaries;
    use xc_isa::asm::Assembler;
    use xc_isa::inst::{Inst, Reg};

    fn run(image: &mut BinaryImage, entry: u64, kernel: &mut XContainerKernel) {
        let mut cpu = Cpu::new(entry);
        cpu.push_halt_frame().unwrap();
        cpu.run(image, kernel, 10_000).unwrap();
    }

    #[test]
    fn first_trap_then_function_calls() {
        let mut image = binaries::glibc_wrapper_image(1);
        let entry = image.symbol("wrapper").unwrap();
        let mut kernel = XContainerKernel::new();
        for _ in 0..5 {
            run(&mut image, entry, &mut kernel);
        }
        assert_eq!(kernel.stats().trapped, 1);
        assert_eq!(kernel.stats().via_function_call, 4);
        assert_eq!(kernel.syscall_numbers(), vec![1; 5]);
        assert!((kernel.stats().reduction_percent() - 80.0).abs() < 1e-9);
    }

    #[test]
    fn nine_byte_first_run_returns_past_leftover() {
        // Phase 1+2 happen during the first trap; trace stays identical.
        let mut image = binaries::glibc_large_nr_wrapper_image(15);
        let entry = image.symbol("wrapper").unwrap();
        let mut kernel = XContainerKernel::new();
        for _ in 0..3 {
            run(&mut image, entry, &mut kernel);
        }
        assert_eq!(kernel.syscall_numbers(), vec![15; 3]);
        assert_eq!(kernel.stats().trapped, 1);
        assert_eq!(kernel.stats().via_function_call, 2);
        // After patching, each function-call pass skips the jmp at the
        // return address.
        assert!(kernel.stats().return_fixups >= 2);
    }

    #[test]
    fn go_wrapper_stack_dispatch() {
        let mut image = binaries::go_wrapper_image();
        let entry = image.symbol("wrapper").unwrap();
        let mut kernel = XContainerKernel::new();
        for _ in 0..3 {
            let mut cpu = Cpu::new(entry);
            cpu.push(202).unwrap(); // Go caller passes nr on the stack
            cpu.push_halt_frame().unwrap();
            cpu.run(&mut image, &mut kernel, 1_000).unwrap();
        }
        assert_eq!(kernel.syscall_numbers(), vec![202; 3]);
        assert_eq!(kernel.stats().trapped, 1);
        assert_eq!(kernel.stats().via_function_call, 2);
        assert_eq!(kernel.stats().patched_case2, 1);
    }

    #[test]
    fn jump_into_middle_recovers_via_ud_fixup() {
        // Build: wrapper with mov+syscall, plus an entry that jumps
        // directly at the (former) syscall address.
        let mut a = Assembler::new(0x40_0000);
        a.label("wrapper").unwrap();
        a.inst(Inst::MovImm32 {
            reg: Reg::Rax,
            imm: 7,
        });
        a.label("raw_syscall").unwrap();
        a.inst(Inst::Syscall);
        a.inst(Inst::Ret);
        a.label("jumper").unwrap();
        a.inst(Inst::MovImm32 {
            reg: Reg::Rax,
            imm: 7,
        });
        a.jmp_to("raw_syscall");
        let mut image = a.finish().unwrap();
        let wrapper = image.symbol("wrapper").unwrap();
        let jumper = image.symbol("jumper").unwrap();

        let mut kernel = XContainerKernel::new();
        // First: normal path patches the site.
        run(&mut image, wrapper, &mut kernel);
        assert_eq!(kernel.stats().patched_case1, 1);
        // Now the jumper lands mid-call on the 60 ff tail.
        run(&mut image, jumper, &mut kernel);
        assert_eq!(kernel.stats().ud_fixups, 1);
        assert_eq!(kernel.syscall_numbers(), vec![7, 7]);
    }

    #[test]
    fn exit_group_halts() {
        let mut a = Assembler::new(0x1000);
        a.inst(Inst::MovImm32 {
            reg: Reg::Rax,
            imm: SYS_EXIT_GROUP as u32,
        });
        a.inst(Inst::Syscall);
        a.inst(Inst::Ud2); // never reached
        let mut image = a.finish().unwrap();
        let mut kernel = XContainerKernel::new();
        let mut cpu = Cpu::new(0x1000);
        cpu.run(&mut image, &mut kernel, 100).unwrap();
        assert!(cpu.is_halted());
        assert_eq!(kernel.syscall_numbers(), vec![SYS_EXIT_GROUP]);
    }

    #[test]
    fn wild_vsyscall_call_halts() {
        let mut a = Assembler::new(0x1000);
        a.inst(Inst::CallAbsIndirect {
            target: 0xffff_ffff_ff60_0004,
        }); // misaligned
        a.inst(Inst::Ret);
        let mut image = a.finish().unwrap();
        let mut kernel = XContainerKernel::new();
        let mut cpu = Cpu::new(0x1000);
        cpu.push_halt_frame().unwrap();
        cpu.run(&mut image, &mut kernel, 100).unwrap();
        assert!(cpu.is_halted());
        assert!(kernel.trace().is_empty());
    }

    #[test]
    fn clear_trace_keeps_stats() {
        let mut image = binaries::glibc_wrapper_image(1);
        let entry = image.symbol("wrapper").unwrap();
        let mut kernel = XContainerKernel::new();
        run(&mut image, entry, &mut kernel);
        kernel.clear_trace();
        assert!(kernel.trace().is_empty());
        assert_eq!(kernel.stats().trapped, 1);
    }
}
