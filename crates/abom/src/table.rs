//! The vsyscall entry table.
//!
//! "X-LibOS stores a system call entry table in the vsyscall page, which is
//! mapped to a fixed virtual memory address in every process" (§4.4). The
//! addresses visible in Figure 2 pin down the layout this module models:
//!
//! * `__read` (syscall 0) is patched to `callq *0xffffffffff600008`,
//! * `__restore_rt` (syscall 15) to `callq *0xffffffffff600080`,
//!
//! so per-number entries live at `base + 8·(nr+1)` — slot 0 is the generic
//! `%rax` dispatcher. The Go wrapper (`syscall.Syscall`, number on the
//! stack) is patched to `callq *0xffffffffff600c08`, which places the
//! stack-dispatch entries at `base + 0xc00 + disp`.

use std::fmt;

/// Base virtual address of the vsyscall page (fixed by the x86-64 ABI).
pub const VSYSCALL_BASE: u64 = 0xffff_ffff_ff60_0000;

/// Offset of the stack-dispatch entry region within the vsyscall page.
pub const STACK_DISPATCH_OFFSET: u64 = 0xc00;

/// Highest syscall number with a dedicated entry (the x86-64 table has
/// ~335 entries in the kernel generation the paper used; we round up).
pub const MAX_SYSCALL_NR: u64 = 351;

/// How a vsyscall-table entry resolves the syscall number.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum EntryKind {
    /// The generic dispatcher: the number is already in `%rax`.
    RaxDispatch,
    /// A per-number entry: the number is baked into the entry.
    Number(u64),
    /// A stack-dispatch entry: the number is loaded from `disp(%rsp)` of
    /// the calling frame (the Go-runtime calling convention).
    StackDisp(u8),
}

impl fmt::Display for EntryKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EntryKind::RaxDispatch => write!(f, "dispatch(%rax)"),
            EntryKind::Number(nr) => write!(f, "syscall #{nr}"),
            EntryKind::StackDisp(d) => write!(f, "dispatch({d:#x}(%rsp))"),
        }
    }
}

/// The vsyscall entry table: address arithmetic between entry kinds and
/// their fixed virtual addresses.
///
/// # Example
///
/// ```
/// use xc_abom::table::{EntryKind, VsyscallTable};
///
/// let table = VsyscallTable::new();
/// // Figure 2: __read (nr 0) patches to callq *0xffffffffff600008.
/// assert_eq!(table.entry_for_number(0), Some(0xffffffffff600008));
/// // __restore_rt (nr 15) to 0xffffffffff600080.
/// assert_eq!(table.entry_for_number(15), Some(0xffffffffff600080));
/// // Go's stack-based wrapper to 0xffffffffff600c08.
/// assert_eq!(table.stack_dispatch_entry(8), 0xffffffffff600c08);
/// assert_eq!(table.resolve(0xffffffffff600080), Some(EntryKind::Number(15)));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct VsyscallTable {
    _priv: (),
}

impl VsyscallTable {
    /// Creates the table (layout is fixed by the ABI; there is nothing to
    /// configure).
    pub fn new() -> Self {
        VsyscallTable { _priv: () }
    }

    /// Base virtual address of the table.
    pub fn base(&self) -> u64 {
        VSYSCALL_BASE
    }

    /// Address of the generic `%rax` dispatcher entry.
    pub fn rax_dispatch_entry(&self) -> u64 {
        VSYSCALL_BASE
    }

    /// Address of the dedicated entry for syscall `nr`, or `None` if the
    /// number is outside the table.
    pub fn entry_for_number(&self, nr: u64) -> Option<u64> {
        (nr <= MAX_SYSCALL_NR).then(|| VSYSCALL_BASE + 8 * (nr + 1))
    }

    /// Address of the stack-dispatch entry for displacement `disp`.
    pub fn stack_dispatch_entry(&self, disp: u8) -> u64 {
        VSYSCALL_BASE + STACK_DISPATCH_OFFSET + u64::from(disp)
    }

    /// Resolves a vsyscall-page address back to its entry kind, or `None`
    /// if the address is not a valid entry.
    pub fn resolve(&self, addr: u64) -> Option<EntryKind> {
        if addr < VSYSCALL_BASE {
            return None;
        }
        let off = addr - VSYSCALL_BASE;
        if off == 0 {
            Some(EntryKind::RaxDispatch)
        } else if off < STACK_DISPATCH_OFFSET {
            if !off.is_multiple_of(8) {
                return None;
            }
            let nr = off / 8 - 1;
            (nr <= MAX_SYSCALL_NR).then_some(EntryKind::Number(nr))
        } else if off < STACK_DISPATCH_OFFSET + 256 {
            Some(EntryKind::StackDisp((off - STACK_DISPATCH_OFFSET) as u8))
        } else {
            None
        }
    }

    /// Whether `addr` points into the vsyscall page region.
    pub fn contains(&self, addr: u64) -> bool {
        (VSYSCALL_BASE..VSYSCALL_BASE + 0x1000).contains(&addr)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn figure2_addresses() {
        let t = VsyscallTable::new();
        assert_eq!(t.entry_for_number(0), Some(0xffff_ffff_ff60_0008));
        assert_eq!(t.entry_for_number(15), Some(0xffff_ffff_ff60_0080));
        assert_eq!(t.stack_dispatch_entry(8), 0xffff_ffff_ff60_0c08);
    }

    #[test]
    fn resolve_roundtrip_numbers() {
        let t = VsyscallTable::new();
        for nr in 0..=MAX_SYSCALL_NR {
            let addr = t.entry_for_number(nr).unwrap();
            assert_eq!(t.resolve(addr), Some(EntryKind::Number(nr)));
        }
        assert_eq!(t.entry_for_number(MAX_SYSCALL_NR + 1), None);
    }

    #[test]
    fn resolve_roundtrip_stack_disps() {
        let t = VsyscallTable::new();
        for disp in [0u8, 8, 16, 255] {
            let addr = t.stack_dispatch_entry(disp);
            assert_eq!(t.resolve(addr), Some(EntryKind::StackDisp(disp)));
        }
    }

    #[test]
    fn resolve_rejects_garbage() {
        let t = VsyscallTable::new();
        assert_eq!(t.resolve(VSYSCALL_BASE), Some(EntryKind::RaxDispatch));
        assert_eq!(t.resolve(VSYSCALL_BASE + 4), None); // misaligned
        assert_eq!(t.resolve(VSYSCALL_BASE - 8), None); // below base
        assert_eq!(t.resolve(VSYSCALL_BASE + 0xd00), None); // past region
        assert_eq!(t.resolve(0x40_0000), None);
    }

    #[test]
    fn number_and_stack_regions_disjoint() {
        let t = VsyscallTable::new();
        let max_nr_entry = t.entry_for_number(MAX_SYSCALL_NR).unwrap();
        assert!(max_nr_entry < t.stack_dispatch_entry(0));
    }

    #[test]
    fn contains_page() {
        let t = VsyscallTable::new();
        assert!(t.contains(VSYSCALL_BASE));
        assert!(t.contains(VSYSCALL_BASE + 0xfff));
        assert!(!t.contains(VSYSCALL_BASE + 0x1000));
    }

    #[test]
    fn entry_kind_display() {
        assert_eq!(EntryKind::Number(0).to_string(), "syscall #0");
        assert_eq!(EntryKind::StackDisp(8).to_string(), "dispatch(0x8(%rsp))");
        assert_eq!(EntryKind::RaxDispatch.to_string(), "dispatch(%rax)");
    }
}
