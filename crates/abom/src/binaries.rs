//! Synthetic wrapper binaries.
//!
//! Table 1 of the paper evaluates ABOM on applications written in C/C++,
//! Go, Ruby, Java and Erlang; what ABOM actually sees is their **syscall
//! wrapper code**: glibc wrappers (cases 1 and 3), the Go runtime's
//! stack-based wrapper (case 2), and libpthread's cancellable wrappers
//! (unrecognizable online — the MySQL 44.6% row). This module assembles
//! byte-faithful equivalents of those wrappers, which both the ABOM test
//! suite and the Table-1 reproduction in `xc-workloads` execute.

use xc_isa::asm::Assembler;
use xc_isa::cpu::{Cpu, CpuError};
use xc_isa::image::BinaryImage;
use xc_isa::inst::{Cond, Inst, Reg};

use crate::handler::XContainerKernel;

/// Default load address for synthetic libraries.
pub const LIB_BASE: u64 = 0x40_0000;

/// The wrapper code styles found in real runtimes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum WrapperStyle {
    /// glibc small-number wrapper: `mov $nr,%eax; syscall` (ABOM case 1).
    GlibcSmall,
    /// glibc wrapper assembled with the 7-byte `mov $nr,%rax` (ABOM
    /// case 3; `__restore_rt` in Figure 2 is this shape).
    GlibcLarge,
    /// Go runtime wrapper: number loaded from the stack (ABOM case 2).
    GoStack,
    /// libpthread cancellable wrapper: the cancel-state check sits between
    /// the `mov` and the `syscall`, so online ABOM cannot patch it.
    PthreadCancellable,
    /// Indirect-number wrapper: the syscall number arrives in a register
    /// (`mov %rdi,%rax; syscall`). Not statically patchable even by the
    /// offline tool — the residue that keeps manually-patched MySQL at
    /// 92.2% rather than 100% in Table 1.
    IndirectNumber,
    /// Optimized zeroing wrapper: `xor %eax,%eax; syscall` for `read`.
    /// The number is statically known but the pair is only 4 bytes —
    /// too small even for the offline detour's 5-byte redirect.
    XorZeroRead,
    /// libc-style `syscall(nr, ...)` shim pair: the wrapper materializes
    /// the number as an *argument* (`mov $nr,%edi`) and calls a shared
    /// identity shim (`mov %rdi,%rax; syscall; ret`). Neither half is
    /// recognizable to online ABOM or the default offline scan — but the
    /// v2 interprocedural verifier proves the shim's syscall number
    /// constant through the call edge, so the offline tool in
    /// interprocedural mode can detour it.
    LibcShim,
}

impl WrapperStyle {
    /// Whether online ABOM can patch this style.
    pub fn online_patchable(self) -> bool {
        !matches!(
            self,
            WrapperStyle::PthreadCancellable
                | WrapperStyle::IndirectNumber
                | WrapperStyle::XorZeroRead
                | WrapperStyle::LibcShim
        )
    }

    /// Whether the offline detour tool in its **default** (single-pass,
    /// intraprocedural) configuration can patch this style.
    /// [`WrapperStyle::LibcShim`] additionally becomes patchable when
    /// the offline tool runs with `interprocedural` enabled.
    pub fn offline_patchable(self) -> bool {
        !matches!(
            self,
            WrapperStyle::IndirectNumber | WrapperStyle::XorZeroRead | WrapperStyle::LibcShim
        )
    }

    /// Whether the wrapper takes its syscall number from the stack.
    pub fn takes_stack_number(self) -> bool {
        matches!(self, WrapperStyle::GoStack)
    }

    /// Whether the wrapper takes its syscall number in `%rdi`.
    pub fn takes_register_number(self) -> bool {
        matches!(self, WrapperStyle::IndirectNumber)
    }
}

/// One wrapper to place in a synthetic library.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WrapperSpec {
    /// Exported symbol name index (`wrapper_<index>`).
    pub index: usize,
    /// Code style.
    pub style: WrapperStyle,
    /// Syscall number (ignored for [`WrapperStyle::GoStack`], which takes
    /// the number from the caller's stack).
    pub nr: u64,
}

fn emit_wrapper(a: &mut Assembler, style: WrapperStyle, nr: u64) {
    match style {
        WrapperStyle::GlibcSmall => {
            a.inst(Inst::MovImm32 {
                reg: Reg::Rax,
                imm: nr as u32,
            });
            a.inst(Inst::Syscall);
            a.inst(Inst::Ret);
        }
        WrapperStyle::GlibcLarge => {
            a.inst(Inst::MovImm32SxR64 {
                reg: Reg::Rax,
                imm: nr as i32,
            });
            a.inst(Inst::Syscall);
            a.inst(Inst::Ret);
        }
        WrapperStyle::GoStack => {
            a.inst(Inst::LoadRspDisp8R64 {
                reg: Reg::Rax,
                disp: 8,
            });
            a.inst(Inst::Syscall);
            a.inst(Inst::Ret);
        }
        WrapperStyle::PthreadCancellable => {
            // mov; cancel-state check; conditional slow path; syscall.
            a.inst(Inst::MovImm32 {
                reg: Reg::Rax,
                imm: nr as u32,
            });
            a.inst(Inst::TestEaxEax);
            // Taken only for nr == 0 (read): jump over a nop — keeps the
            // check semantically inert while breaking mov/syscall
            // adjacency for every nr.
            let skip = format!("skip_{}", a.here());
            a.jcc_to(Cond::E, &skip);
            a.inst(Inst::Nop);
            a.label(&skip).expect("unique label");
            a.inst(Inst::Syscall);
            a.inst(Inst::Ret);
        }
        WrapperStyle::IndirectNumber => {
            a.inst(Inst::MovRegReg64 {
                dst: Reg::Rax,
                src: Reg::Rdi,
            });
            a.inst(Inst::Syscall);
            a.inst(Inst::Ret);
        }
        WrapperStyle::XorZeroRead => {
            a.inst(Inst::XorEaxEax);
            a.inst(Inst::Syscall);
            a.inst(Inst::Ret);
        }
        WrapperStyle::LibcShim => {
            // The number travels as an argument through a call edge.
            a.inst(Inst::MovImm32 {
                reg: Reg::Rdi,
                imm: nr as u32,
            });
            let shim = format!("shim_{}", a.here());
            a.call_to(&shim);
            a.inst(Inst::Ret);
            a.label(&shim).expect("unique label");
            a.inst(Inst::MovRegReg64 {
                dst: Reg::Rax,
                src: Reg::Rdi,
            });
            a.inst(Inst::Syscall);
            a.inst(Inst::Ret);
        }
    }
}

/// Builds a library containing the given wrappers, each exported as
/// `wrapper_<index>` and 16-byte aligned, with text pages read-only.
///
/// # Panics
///
/// Panics if two specs share an index.
pub fn library_image(specs: &[WrapperSpec]) -> BinaryImage {
    let mut a = Assembler::new(LIB_BASE);
    for spec in specs {
        a.align(16);
        a.label(&format!("wrapper_{}", spec.index))
            .expect("duplicate wrapper index");
        emit_wrapper(&mut a, spec.style, spec.nr);
    }
    let mut image = a.finish().expect("library assembly cannot fail");
    image.protect_all(false);
    image
}

fn single(style: WrapperStyle, nr: u64) -> BinaryImage {
    let mut a = Assembler::new(LIB_BASE);
    a.label("wrapper").expect("first label");
    emit_wrapper(&mut a, style, nr);
    let mut image = a.finish().expect("wrapper assembly cannot fail");
    image.protect_all(false);
    image
}

/// A single glibc-style case-1 wrapper for syscall `nr`, exported as
/// `wrapper`.
pub fn glibc_wrapper_image(nr: u64) -> BinaryImage {
    single(WrapperStyle::GlibcSmall, nr)
}

/// A single glibc-style case-3 (9-byte pattern) wrapper for syscall `nr`.
pub fn glibc_large_nr_wrapper_image(nr: u64) -> BinaryImage {
    single(WrapperStyle::GlibcLarge, nr)
}

/// A single Go-style case-2 wrapper (syscall number from the stack).
pub fn go_wrapper_image() -> BinaryImage {
    single(WrapperStyle::GoStack, 0)
}

/// A single libpthread-style cancellable wrapper for syscall `nr`.
pub fn pthread_cancellable_wrapper_image(nr: u64) -> BinaryImage {
    single(WrapperStyle::PthreadCancellable, nr)
}

/// Invokes the wrapper at `entry` once on a fresh mini-CPU under `kernel`.
///
/// For stack-number wrappers pass `Some(nr)`; it is pushed where the Go
/// calling convention expects it.
///
/// # Errors
///
/// Propagates interpreter faults ([`CpuError`]).
pub fn invoke(
    image: &mut BinaryImage,
    kernel: &mut XContainerKernel,
    entry: u64,
    stack_nr: Option<u64>,
) -> Result<(), CpuError> {
    invoke_with(image, kernel, entry, stack_nr, None)
}

/// Like [`invoke`], additionally loading `%rdi` for register-number
/// wrappers.
///
/// # Errors
///
/// Propagates interpreter faults ([`CpuError`]).
pub fn invoke_with(
    image: &mut BinaryImage,
    kernel: &mut XContainerKernel,
    entry: u64,
    stack_nr: Option<u64>,
    rdi: Option<u64>,
) -> Result<(), CpuError> {
    invoke_reusing(&mut Cpu::new(entry), image, kernel, entry, stack_nr, rdi)
}

/// Like [`invoke_with`], but rewinds and reuses a caller-owned CPU instead
/// of building a fresh one. Drivers that invoke wrappers in a tight loop
/// (the Table 1 study executes hundreds of thousands of invocations) keep
/// one CPU alive this way and skip the per-call 64 KiB stack allocation.
///
/// # Errors
///
/// Propagates interpreter faults ([`CpuError`]).
pub fn invoke_reusing(
    cpu: &mut Cpu,
    image: &mut BinaryImage,
    kernel: &mut XContainerKernel,
    entry: u64,
    stack_nr: Option<u64>,
    rdi: Option<u64>,
) -> Result<(), CpuError> {
    cpu.reset(entry);
    if let Some(v) = rdi {
        cpu.set_reg(Reg::Rdi, v);
    }
    if let Some(nr) = stack_nr {
        cpu.push(nr)?;
    }
    cpu.push_halt_frame()?;
    cpu.run(image, kernel, 10_000)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn library_exports_aligned_symbols() {
        let specs = [
            WrapperSpec {
                index: 0,
                style: WrapperStyle::GlibcSmall,
                nr: 0,
            },
            WrapperSpec {
                index: 1,
                style: WrapperStyle::GlibcLarge,
                nr: 15,
            },
            WrapperSpec {
                index: 2,
                style: WrapperStyle::GoStack,
                nr: 0,
            },
            WrapperSpec {
                index: 3,
                style: WrapperStyle::PthreadCancellable,
                nr: 202,
            },
        ];
        let image = library_image(&specs);
        for spec in &specs {
            let addr = image
                .symbol(&format!("wrapper_{}", spec.index))
                .expect("symbol exported");
            assert_eq!(addr % 16, 0, "wrapper_{} unaligned", spec.index);
        }
        assert!(!image.is_writable(LIB_BASE), "text must be read-only");
    }

    #[test]
    fn every_style_executes_and_reports_nr() {
        for (style, nr, stack) in [
            (WrapperStyle::GlibcSmall, 7, None),
            (WrapperStyle::GlibcLarge, 15, None),
            (WrapperStyle::GoStack, 42, Some(42)),
            (WrapperStyle::PthreadCancellable, 202, None),
        ] {
            let mut image = single(style, nr);
            let entry = image.symbol("wrapper").unwrap();
            let mut kernel = XContainerKernel::new();
            invoke(&mut image, &mut kernel, entry, stack).unwrap();
            assert_eq!(kernel.syscall_numbers(), vec![nr], "style {style:?}");
        }
    }

    #[test]
    fn pthread_style_never_patches_online() {
        let mut image = pthread_cancellable_wrapper_image(1);
        let entry = image.symbol("wrapper").unwrap();
        let mut kernel = XContainerKernel::new();
        for _ in 0..10 {
            invoke(&mut image, &mut kernel, entry, None).unwrap();
        }
        assert_eq!(kernel.stats().trapped, 10);
        assert_eq!(kernel.stats().via_function_call, 0);
        assert_eq!(kernel.stats().patched_sites(), 0);
        assert_eq!(kernel.stats().reduction_percent(), 0.0);
    }

    #[test]
    fn pthread_style_zero_nr_edge() {
        // nr == 0 takes the conditional jump; semantics must hold.
        let mut image = pthread_cancellable_wrapper_image(0);
        let entry = image.symbol("wrapper").unwrap();
        let mut kernel = XContainerKernel::new();
        invoke(&mut image, &mut kernel, entry, None).unwrap();
        assert_eq!(kernel.syscall_numbers(), vec![0]);
    }

    #[test]
    fn patchable_styles_patch_once() {
        for (style, stack) in [
            (WrapperStyle::GlibcSmall, None),
            (WrapperStyle::GlibcLarge, None),
            (WrapperStyle::GoStack, Some(5)),
        ] {
            let mut image = single(style, 5);
            let entry = image.symbol("wrapper").unwrap();
            let mut kernel = XContainerKernel::new();
            for _ in 0..4 {
                invoke(&mut image, &mut kernel, entry, stack).unwrap();
            }
            assert_eq!(kernel.stats().trapped, 1, "style {style:?}");
            assert_eq!(kernel.stats().via_function_call, 3, "style {style:?}");
            assert_eq!(kernel.stats().patched_sites(), 1, "style {style:?}");
        }
    }

    #[test]
    fn xor_zero_wrapper_unpatchable_but_correct() {
        let mut image = single(WrapperStyle::XorZeroRead, 0);
        let entry = image.symbol("wrapper").unwrap();
        let mut kernel = XContainerKernel::new();
        for _ in 0..5 {
            invoke(&mut image, &mut kernel, entry, None).unwrap();
        }
        assert_eq!(kernel.syscall_numbers(), vec![0; 5], "always read");
        assert_eq!(kernel.stats().trapped, 5, "never patched");
        assert_eq!(kernel.stats().patched_sites(), 0);
    }

    #[test]
    fn style_predicates() {
        assert!(WrapperStyle::GlibcSmall.online_patchable());
        assert!(!WrapperStyle::PthreadCancellable.online_patchable());
        assert!(WrapperStyle::GoStack.takes_stack_number());
        assert!(!WrapperStyle::GlibcLarge.takes_stack_number());
        assert!(!WrapperStyle::XorZeroRead.online_patchable());
        assert!(!WrapperStyle::XorZeroRead.offline_patchable());
        assert!(WrapperStyle::PthreadCancellable.offline_patchable());
        assert!(!WrapperStyle::LibcShim.online_patchable());
        assert!(!WrapperStyle::LibcShim.offline_patchable());
        assert!(!WrapperStyle::LibcShim.takes_stack_number());
        assert!(!WrapperStyle::LibcShim.takes_register_number());
    }

    #[test]
    fn libc_shim_wrapper_always_traps_unpatched() {
        // The shim hides the number behind a call + register copy, so the
        // online patcher never recognizes the site — every invocation traps.
        let mut image = library_image(&[WrapperSpec {
            index: 0,
            style: WrapperStyle::LibcShim,
            nr: 39,
        }]);
        let entry = image.symbol("wrapper_0").unwrap();
        let mut kernel = XContainerKernel::new();
        for _ in 0..4 {
            invoke(&mut image, &mut kernel, entry, None).unwrap();
        }
        assert_eq!(kernel.syscall_numbers(), vec![39; 4]);
        assert_eq!(kernel.stats().trapped, 4, "never patched online");
        assert_eq!(kernel.stats().patched_sites(), 0);
    }
}
