//! Pattern recognition around a trapped `syscall` instruction.
//!
//! "Before forwarding the syscall request, ABOM checks the binary around
//! the syscall instruction and sees if it matches any pattern that it
//! recognizes" (§4.4). ABOM never scans whole binaries online — it looks
//! only at the few bytes *preceding* the trapping instruction.

use std::fmt;

use xc_isa::image::BinaryImage;
use xc_isa::inst::Reg;

use crate::table::MAX_SYSCALL_NR;

/// A recognized `mov` + `syscall` pattern, with the addresses needed to
/// patch it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Pattern {
    /// Case 1 (7-byte replacement): `b8 imm32` (`mov $nr,%eax`, 5 bytes)
    /// immediately before the `syscall`.
    MovEaxImm {
        /// Address of the `mov`.
        mov_addr: u64,
        /// The (validated) syscall number.
        nr: u64,
    },
    /// Case 2 (7-byte replacement): `48 8b 44 24 disp`
    /// (`mov disp(%rsp),%rax`, 5 bytes) immediately before the `syscall` —
    /// the Go runtime's calling convention.
    MovRaxFromStack {
        /// Address of the `mov`.
        mov_addr: u64,
        /// Stack displacement holding the syscall number.
        disp: u8,
    },
    /// Case 3 (9-byte two-phase replacement): `48 c7 c0 imm32`
    /// (`mov $nr,%rax`, 7 bytes) immediately before the `syscall`.
    MovRaxImm {
        /// Address of the `mov`.
        mov_addr: u64,
        /// The (validated) syscall number.
        nr: u64,
    },
}

impl Pattern {
    /// Address of the first byte the replacement overwrites.
    pub fn mov_addr(&self) -> u64 {
        match *self {
            Pattern::MovEaxImm { mov_addr, .. }
            | Pattern::MovRaxFromStack { mov_addr, .. }
            | Pattern::MovRaxImm { mov_addr, .. } => mov_addr,
        }
    }

    /// Total length of the original `mov`+`syscall` pair.
    pub fn pair_len(&self) -> usize {
        match self {
            Pattern::MovEaxImm { .. } | Pattern::MovRaxFromStack { .. } => 7,
            Pattern::MovRaxImm { .. } => 9,
        }
    }
}

impl fmt::Display for Pattern {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            Pattern::MovEaxImm { mov_addr, nr } => {
                write!(f, "case1 mov $\u{23}{nr},%eax at {mov_addr:#x}")
            }
            Pattern::MovRaxFromStack { mov_addr, disp } => {
                write!(f, "case2 mov {disp:#x}(%rsp),%rax at {mov_addr:#x}")
            }
            Pattern::MovRaxImm { mov_addr, nr } => {
                write!(f, "case3 mov $\u{23}{nr},%rax at {mov_addr:#x}")
            }
        }
    }
}

/// Checks whether the bytes at `syscall_addr` are `0f 05`.
pub fn is_syscall_at(image: &BinaryImage, syscall_addr: u64) -> bool {
    matches!(image.read_bytes(syscall_addr, 2), Ok([0x0f, 0x05]))
}

/// Recognizes one of the three patterns ending in the `syscall` at
/// `syscall_addr`, by inspecting the immediately preceding bytes.
///
/// Returns `None` when no pattern matches — e.g. the number is set far
/// from the `syscall` (libpthread's cancellable wrappers), set via a
/// non-immediate `mov`, or the syscall number exceeds the entry table.
///
/// The 7-byte `mov $nr,%rax` form is checked before the 5-byte forms: if
/// the 7 preceding bytes decode as the REX.W mov, the 5-byte window would
/// misread its immediate bytes.
pub fn recognize(image: &BinaryImage, syscall_addr: u64) -> Option<Pattern> {
    if !is_syscall_at(image, syscall_addr) {
        return None;
    }

    // Case 3: 48 c7 c0 imm32 (7 bytes).
    if syscall_addr >= image.base() + 7 {
        if let Ok(bytes) = image.read_bytes(syscall_addr - 7, 7) {
            if bytes[0] == 0x48 && bytes[1] == 0xc7 && bytes[2] == 0xc0 {
                let imm = u32::from_le_bytes([bytes[3], bytes[4], bytes[5], bytes[6]]) as i32;
                if imm >= 0 && u64::from(imm as u32) <= MAX_SYSCALL_NR {
                    return Some(Pattern::MovRaxImm {
                        mov_addr: syscall_addr - 7,
                        nr: u64::from(imm as u32),
                    });
                }
            }
        }
    }

    // 5-byte cases.
    if syscall_addr >= image.base() + 5 {
        if let Ok(bytes) = image.read_bytes(syscall_addr - 5, 5) {
            // Case 1: b8 imm32 — mov $nr,%eax specifically (other registers
            // do not feed the syscall number).
            if bytes[0] == 0xb8 + Reg::Rax.code() {
                let nr = u64::from(u32::from_le_bytes([bytes[1], bytes[2], bytes[3], bytes[4]]));
                if nr <= MAX_SYSCALL_NR {
                    return Some(Pattern::MovEaxImm {
                        mov_addr: syscall_addr - 5,
                        nr,
                    });
                }
            }
            // Case 2: 48 8b 44 24 disp — mov disp(%rsp),%rax.
            if bytes[0] == 0x48 && bytes[1] == 0x8b && bytes[2] == 0x44 && bytes[3] == 0x24 {
                return Some(Pattern::MovRaxFromStack {
                    mov_addr: syscall_addr - 5,
                    disp: bytes[4],
                });
            }
        }
    }

    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use xc_isa::asm::Assembler;
    use xc_isa::inst::Inst;

    fn build(insts: &[Inst]) -> (BinaryImage, u64) {
        let mut a = Assembler::new(0x40_0000);
        a.inst(Inst::Nop); // some preceding content
        let mut syscall_addr = 0;
        for inst in insts {
            if *inst == Inst::Syscall {
                syscall_addr = a.here();
            }
            a.inst(*inst);
        }
        (a.finish().unwrap(), syscall_addr)
    }

    #[test]
    fn recognizes_case1() {
        let (img, at) = build(&[
            Inst::MovImm32 {
                reg: Reg::Rax,
                imm: 1,
            },
            Inst::Syscall,
            Inst::Ret,
        ]);
        assert_eq!(
            recognize(&img, at),
            Some(Pattern::MovEaxImm {
                mov_addr: at - 5,
                nr: 1
            })
        );
    }

    #[test]
    fn recognizes_case2() {
        let (img, at) = build(&[
            Inst::LoadRspDisp8R64 {
                reg: Reg::Rax,
                disp: 8,
            },
            Inst::Syscall,
            Inst::Ret,
        ]);
        assert_eq!(
            recognize(&img, at),
            Some(Pattern::MovRaxFromStack {
                mov_addr: at - 5,
                disp: 8
            })
        );
    }

    #[test]
    fn recognizes_case3() {
        let (img, at) = build(&[
            Inst::MovImm32SxR64 {
                reg: Reg::Rax,
                imm: 15,
            },
            Inst::Syscall,
            Inst::Ret,
        ]);
        let p = recognize(&img, at).unwrap();
        assert_eq!(
            p,
            Pattern::MovRaxImm {
                mov_addr: at - 7,
                nr: 15
            }
        );
        assert_eq!(p.pair_len(), 9);
    }

    #[test]
    fn rejects_mov_to_other_register() {
        let (img, at) = build(&[
            Inst::MovImm32 {
                reg: Reg::Rdi,
                imm: 1,
            },
            Inst::Syscall,
            Inst::Ret,
        ]);
        assert_eq!(recognize(&img, at), None);
    }

    #[test]
    fn rejects_non_adjacent_mov() {
        // libpthread cancellable pattern: a check between mov and syscall.
        let (img, at) = build(&[
            Inst::MovImm32 {
                reg: Reg::Rax,
                imm: 1,
            },
            Inst::TestEaxEax,
            Inst::Syscall,
            Inst::Ret,
        ]);
        assert_eq!(recognize(&img, at), None);
    }

    #[test]
    fn rejects_out_of_range_number() {
        let (img, at) = build(&[
            Inst::MovImm32 {
                reg: Reg::Rax,
                imm: 100_000,
            },
            Inst::Syscall,
            Inst::Ret,
        ]);
        assert_eq!(recognize(&img, at), None);
        let (img, at) = build(&[
            Inst::MovImm32SxR64 {
                reg: Reg::Rax,
                imm: -1,
            },
            Inst::Syscall,
            Inst::Ret,
        ]);
        assert_eq!(recognize(&img, at), None);
    }

    #[test]
    fn rejects_syscall_at_image_start() {
        let mut a = Assembler::new(0x40_0000);
        a.inst(Inst::Syscall);
        let img = a.finish().unwrap();
        assert_eq!(recognize(&img, 0x40_0000), None);
    }

    #[test]
    fn rejects_when_not_actually_syscall() {
        let (img, _) = build(&[
            Inst::MovImm32 {
                reg: Reg::Rax,
                imm: 1,
            },
            Inst::Syscall,
            Inst::Ret,
        ]);
        // Address of the mov, not the syscall.
        assert_eq!(recognize(&img, 0x40_0001), None);
    }

    #[test]
    fn case3_preferred_over_misread_case1() {
        // mov $0xb8??,%rax would expose a b8 byte at offset -5 if scanned
        // naively; ensure the 7-byte form wins.
        let (img, at) = build(&[
            Inst::MovImm32SxR64 {
                reg: Reg::Rax,
                imm: 0,
            },
            Inst::Syscall,
            Inst::Ret,
        ]);
        assert!(matches!(
            recognize(&img, at),
            Some(Pattern::MovRaxImm { nr: 0, .. })
        ));
    }

    #[test]
    fn pattern_display() {
        let p = Pattern::MovEaxImm {
            mov_addr: 0x10,
            nr: 3,
        };
        assert!(p.to_string().contains("case1"));
        assert_eq!(p.mov_addr(), 0x10);
        assert_eq!(p.pair_len(), 7);
    }
}
