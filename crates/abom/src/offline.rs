//! The offline binary patching tool.
//!
//! "For more complicated cases, it is possible to inject code into the
//! binary and re-direct a bigger chunk of code. We also provide a tool to
//! do this offline." (§4.4). The canonical customer is libpthread's
//! cancellable syscall wrappers, where the cancel-state check sits between
//! the `mov $nr,%eax` and the `syscall` — patching two such locations lifts
//! MySQL from 44.6% to 92.2% syscall reduction (Table 1).
//!
//! The tool performs classic **detour patching**:
//!
//! 1. linear-sweep disassemble the text section,
//! 2. dataflow-track the syscall number: the most recent immediate `mov`
//!    into `%rax` that provably survives to each `syscall`,
//! 3. adjacent `mov`+`syscall` pairs are handed to the online patcher
//!    logic (same 7/9-byte replacements),
//! 4. non-adjacent pairs are detoured: the region from the `mov` through
//!    the `syscall` is replaced by a `jmp rel32` to a trampoline appended
//!    to the image, which re-executes the displaced instructions with the
//!    `mov`+`syscall` collapsed into a vsyscall-table call, then jumps
//!    back.
//!
//! Historically, detour patchers *assume* no external jump targets the
//! interior of a detoured region. This tool **proves** it instead: before
//! any detour is written, the `xc-verify` static analyzer (CFG +
//! dataflow over the same image) checks each candidate region, and
//! regions with a proven interior jump target are refused with
//! [`SkipReason::InteriorJumpTarget`]. Interior bytes of regions that do
//! get detoured are still filled with `int3` so even an unproven
//! violation fails loudly rather than silently.

use std::error::Error;
use std::fmt;

use xc_isa::decode::{decode, DecodeError};
use xc_isa::image::{BinaryImage, PAGE_SIZE};
use xc_isa::inst::{Inst, Reg};
use xc_verify::{AnalysisCache, DetourHazard, SiteKind, Verdict, Verifier};

use crate::patcher::{Abom, PatchOutcome};
use crate::patterns::recognize;
use crate::stats::AbomStats;
use crate::table::VsyscallTable;

/// Why a syscall site was left unpatched.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SkipReason {
    /// No immediate `mov` into `%rax` reaches this syscall.
    UnknownNumber,
    /// The tracked number is outside the vsyscall table.
    NumberOutOfRange,
    /// The detour region is too small to hold the redirect jump.
    RegionTooSmall,
    /// The static analyzer proved that control enters the detour region's
    /// interior from outside it; a detour would break that entrance.
    InteriorJumpTarget,
    /// The static analyzer proved that an instruction inside the region
    /// branches somewhere the trampoline relocation cannot preserve.
    InteriorBranchEscape,
}

impl fmt::Display for SkipReason {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SkipReason::UnknownNumber => write!(f, "syscall number not statically known"),
            SkipReason::NumberOutOfRange => write!(f, "syscall number outside entry table"),
            SkipReason::RegionTooSmall => write!(f, "region too small for detour"),
            SkipReason::InteriorJumpTarget => {
                write!(f, "region interior is a jump target from outside")
            }
            SkipReason::InteriorBranchEscape => {
                write!(f, "region interior branch escapes the relocatable window")
            }
        }
    }
}

/// Offline patching failures.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum OfflineError {
    /// The image rewrite failed (internal invariant violation).
    Rewrite(String),
}

impl fmt::Display for OfflineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            OfflineError::Rewrite(msg) => write!(f, "offline rewrite failed: {msg}"),
        }
    }
}

impl Error for OfflineError {}

/// Outcome of an offline patching run.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct OfflineReport {
    /// Sites patched via the adjacent (online-style) replacements.
    pub adjacent_patched: u64,
    /// Sites patched via detour trampolines.
    pub detour_patched: u64,
    /// Sites skipped, with reasons.
    pub skipped: Vec<(u64, SkipReason)>,
    /// Counters from the run's ABOM instance: the adjacent-replacement
    /// pass plus [`AbomStats::hazard_scans_saved`], the edge-list walks
    /// amortized away by batching the per-region hazard queries.
    pub abom: AbomStats,
    /// Sites the linear scan gave up on ([`SkipReason::UnknownNumber`])
    /// that the interprocedural verifier recovered into detour
    /// candidates (only nonzero with [`OfflineConfig::interprocedural`]).
    pub interprocedural_recovered: u64,
}

impl OfflineReport {
    /// Total sites rewritten.
    pub fn total_patched(&self) -> u64 {
        self.adjacent_patched + self.detour_patched
    }

    /// Sites refused because the verifier proved the region interior is
    /// entered from outside (either hazard kind).
    pub fn interior_jump_skips(&self) -> u64 {
        self.skipped
            .iter()
            .filter(|(_, r)| {
                matches!(
                    r,
                    SkipReason::InteriorJumpTarget | SkipReason::InteriorBranchEscape
                )
            })
            .count() as u64
    }
}

/// Configuration for the offline tool.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct OfflineConfig {
    /// Allow the number-tracking dataflow to survive conditional branches
    /// (required for libpthread cancellable wrappers, where the cancel
    /// check branches but both paths reach the syscall with `%rax`
    /// intact). The paper's tool is applied manually to known-safe sites;
    /// this flag is that human judgement.
    pub across_conditional_branches: bool,
    /// Consult the interprocedural verifier for sites the linear scan
    /// cannot resolve: a [`SkipReason::UnknownNumber`] site whose
    /// verdict is `Safe` with kind `PropagatedNumber` (constant proven
    /// through copies, spills, or call edges) becomes a detour
    /// candidate, with the region anchored at the propagating
    /// instruction the verifier names. Off by default: the default tool
    /// mirrors the paper's single-pass scan, so existing Table-1
    /// numbers are unchanged unless a caller opts in.
    pub interprocedural: bool,
}

impl Default for OfflineConfig {
    fn default() -> Self {
        OfflineConfig {
            across_conditional_branches: true,
            interprocedural: false,
        }
    }
}

/// One discovered syscall site.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct Site {
    mov_addr: u64,
    mov_len: usize,
    syscall_addr: u64,
    nr: u64,
    adjacent: bool,
}

/// The offline patching tool.
///
/// # Example
///
/// ```
/// use xc_abom::binaries::pthread_cancellable_wrapper_image;
/// use xc_abom::offline::OfflinePatcher;
///
/// // Online ABOM cannot patch a cancellable wrapper; the offline tool can.
/// let image = pthread_cancellable_wrapper_image(202);
/// let (patched, report) = OfflinePatcher::new().patch(&image).unwrap();
/// assert_eq!(report.detour_patched, 1);
/// assert!(patched.len() > image.len()); // trampoline appended
/// ```
#[derive(Debug, Clone, Default)]
pub struct OfflinePatcher {
    table: VsyscallTable,
    config: OfflineConfig,
}

impl OfflinePatcher {
    /// Creates the tool with default configuration.
    pub fn new() -> Self {
        OfflinePatcher::default()
    }

    /// Creates the tool with explicit configuration.
    pub fn with_config(config: OfflineConfig) -> Self {
        OfflinePatcher {
            table: VsyscallTable::new(),
            config,
        }
    }

    /// Scans and patches `image`, returning a rewritten image (original
    /// bytes plus appended trampolines) and a report.
    ///
    /// # Errors
    ///
    /// Returns [`OfflineError`] if an internal rewrite fails — scan misses
    /// are reported in [`OfflineReport::skipped`], not as errors.
    pub fn patch(&self, image: &BinaryImage) -> Result<(BinaryImage, OfflineReport), OfflineError> {
        let mut cache = AnalysisCache::new();
        self.patch_with_cache(image, &mut cache)
    }

    /// Like [`OfflinePatcher::patch`], but serving the pre-flight static
    /// analysis through a caller-owned [`AnalysisCache`]. Callers that
    /// already analyzed `image` (study harnesses, batch pipelines) share
    /// the cache so the image's text section is decoded once, not once per
    /// consumer.
    ///
    /// # Errors
    ///
    /// Returns [`OfflineError`] if an internal rewrite fails — scan misses
    /// are reported in [`OfflineReport::skipped`], not as errors.
    pub fn patch_with_cache(
        &self,
        image: &BinaryImage,
        cache: &mut AnalysisCache,
    ) -> Result<(BinaryImage, OfflineReport), OfflineError> {
        let (mut sites, mut skipped) = self.scan(image);
        // One static analysis of the unpatched image backs every detour
        // decision below (memoized: a hit if the caller analyzed it first).
        let analysis = cache.analyze(&Verifier::new(), image);

        // Interprocedural recovery: sites the linear scan could not
        // resolve but the abstract interpreter proved constant get a
        // region anchored at the propagating instruction. The hazard
        // checks below still apply to every recovered region.
        let mut recovered = 0u64;
        if self.config.interprocedural {
            skipped.retain(|&(addr, reason)| {
                if reason != SkipReason::UnknownNumber {
                    return true;
                }
                let Some(site) = analysis.site_at(addr) else {
                    return true;
                };
                let propagated =
                    site.verdict == Verdict::Safe && site.kind == SiteKind::PropagatedNumber;
                let (Some(mov_addr), Some(mov_len), Some(nr), true) =
                    (site.mov_addr, site.mov_len, site.number, propagated)
                else {
                    return true;
                };
                sites.push(Site {
                    mov_addr,
                    mov_len: mov_len as usize,
                    syscall_addr: addr,
                    nr: nr as u64,
                    adjacent: false,
                });
                recovered += 1;
                false
            });
            sites.sort_by_key(|s| s.syscall_addr);
        }

        // Build the output: original bytes + page-aligned trampoline area.
        let text_len = image.len();
        let tramp_start_off = (text_len as u64).div_ceil(PAGE_SIZE) * PAGE_SIZE;
        let mut bytes = image
            .read_bytes(image.base(), text_len)
            .map_err(|e| OfflineError::Rewrite(e.to_string()))?
            .to_vec();
        bytes.resize(tramp_start_off as usize, 0xcc);

        let mut report = OfflineReport {
            skipped,
            interprocedural_recovered: recovered,
            ..OfflineReport::default()
        };
        let mut detours: Vec<(Site, u64)> = Vec::new();
        let mut tramp_cursor = image.base() + tramp_start_off;
        let mut abom = Abom::new();

        // Cheap shape checks first, so the hazard queries for every
        // surviving candidate region can be answered by one batched
        // edge-list walk instead of one full walk per site.
        let mut prechecked: Vec<(&Site, Result<u64, SkipReason>)> = Vec::new();
        for site in &sites {
            if site.adjacent {
                continue; // handled by the online-style pass below
            }
            let region_len = (site.syscall_addr + 2 - site.mov_addr) as usize;
            let verdict = if region_len < 5 {
                Err(SkipReason::RegionTooSmall)
            } else if let Some(entry) = self.table.entry_for_number(site.nr) {
                Ok(entry)
            } else {
                Err(SkipReason::NumberOutOfRange)
            };
            prechecked.push((site, verdict));
        }
        // Pre-flight safety proof for every candidate at once: refuse
        // regions whose interior is reachable from outside the region.
        let queries: Vec<(u64, u64, u64)> = prechecked
            .iter()
            .filter(|(_, v)| v.is_ok())
            .map(|(s, _)| (s.mov_addr, s.mov_addr + s.mov_len as u64, s.syscall_addr))
            .collect();
        abom.stats_mut().hazard_scans_saved += (queries.len() as u64).saturating_sub(1);
        let mut hazards = analysis.region_detour_hazards(&queries).into_iter();

        for (site, verdict) in prechecked {
            let region_start = site.mov_addr;
            let region_end = site.syscall_addr + 2;
            let entry = match verdict {
                Ok(entry) => entry,
                Err(reason) => {
                    report.skipped.push((site.syscall_addr, reason));
                    continue;
                }
            };
            if let Some(hazard) = hazards.next().expect("one hazard result per candidate") {
                let reason = match hazard {
                    DetourHazard::InteriorJumpTarget { .. } => SkipReason::InteriorJumpTarget,
                    DetourHazard::EscapingInteriorBranch { .. } => SkipReason::InteriorBranchEscape,
                };
                report.skipped.push((site.syscall_addr, reason));
                continue;
            }

            // Trampoline: displaced interior (minus mov and syscall), then
            // the vsyscall call, then a jump back to the region end.
            let interior_start = (region_start - image.base()) as usize + site.mov_len;
            let interior_end = (site.syscall_addr - image.base()) as usize;
            let mut tramp = Vec::new();
            tramp.extend_from_slice(&bytes[interior_start..interior_end]);
            Inst::CallAbsIndirect { target: entry }.encode_into(&mut tramp);
            // jmp rel32 back to region_end.
            let jmp_at = tramp_cursor + tramp.len() as u64;
            let rel = region_end as i64 - (jmp_at + 5) as i64;
            Inst::JmpRel32 { rel: rel as i32 }.encode_into(&mut tramp);

            detours.push((*site, tramp_cursor));
            let off = (tramp_cursor - image.base()) as usize;
            if bytes.len() < off + tramp.len() {
                bytes.resize(off + tramp.len(), 0xcc);
            }
            bytes[off..off + tramp.len()].copy_from_slice(&tramp);
            // Pack trampolines back-to-back: each is only entered via its
            // detour jump and left via its closing jump, so alignment
            // padding between them bought nothing (ROADMAP item 5).
            tramp_cursor += tramp.len() as u64;
        }

        // Write the detour jumps into the text copy.
        for (site, tramp_addr) in &detours {
            let region_start = site.mov_addr;
            let region_end = site.syscall_addr + 2;
            let off = (region_start - image.base()) as usize;
            let rel = *tramp_addr as i64 - (region_start + 5) as i64;
            let mut jmp = Vec::new();
            Inst::JmpRel32 { rel: rel as i32 }.encode_into(&mut jmp);
            bytes[off..off + 5].copy_from_slice(&jmp);
            // int3-fill the rest of the region so stray jumps fail loudly.
            for b in &mut bytes[off + 5..(region_end - image.base()) as usize] {
                *b = 0xcc;
            }
            report.detour_patched += 1;
        }

        let mut out = BinaryImage::new(image.base(), bytes);
        for (name, addr) in image.symbols() {
            out.add_symbol(name, addr);
        }

        // Adjacent sites: run the online replacement logic on the copy.
        for site in &sites {
            if site.adjacent {
                match abom.on_syscall_trap(&mut out, site.syscall_addr) {
                    PatchOutcome::Patched(_) | PatchOutcome::AlreadyPatched => {
                        report.adjacent_patched += 1;
                    }
                    other => {
                        return Err(OfflineError::Rewrite(format!(
                            "adjacent site at {:#x} failed: {other:?}",
                            site.syscall_addr
                        )))
                    }
                }
            }
        }

        report.abom = *abom.stats();
        out.protect_all(false);
        Ok((out, report))
    }

    /// Linear sweep + `%rax` immediate tracking.
    fn scan(&self, image: &BinaryImage) -> (Vec<Site>, Vec<(u64, SkipReason)>) {
        let mut sites = Vec::new();
        let mut skipped = Vec::new();
        let mut addr = image.base();
        // (mov_addr, mov_len, nr) of the live immediate load into rax.
        let mut live: Option<(u64, usize, u64)> = None;

        while addr < image.end() {
            let window = match image.read_upto(addr, 16) {
                Ok(w) => w,
                Err(_) => break,
            };
            let d = match decode(window) {
                Ok(d) => d,
                Err(DecodeError::InvalidOpcode(_)) | Err(DecodeError::Unsupported(_)) => {
                    // Padding or data: resync one byte at a time.
                    live = None;
                    addr += 1;
                    continue;
                }
                Err(DecodeError::Truncated) => break,
            };
            match d.inst {
                Inst::MovImm32 { reg: Reg::Rax, imm } => {
                    live = Some((addr, d.len, u64::from(imm)));
                }
                Inst::MovImm32SxR64 { reg: Reg::Rax, imm } if imm >= 0 => {
                    live = Some((addr, d.len, imm as u64));
                }
                Inst::MovImm32SxR64 { reg: Reg::Rax, .. } => live = None,
                // The zeroing idiom: rax is statically 0 (syscall read),
                // but the 2-byte instruction leaves no room for a detour
                // redirect in small wrappers — recorded and usually
                // skipped as RegionTooSmall.
                Inst::XorEaxEax => {
                    live = Some((addr, d.len, 0));
                }
                Inst::Syscall => {
                    if recognize(image, addr).is_some() {
                        // Adjacent patterns (including the stack-dispatch
                        // case, whose number is never statically known) go
                        // through the online replacement logic.
                        sites.push(Site {
                            mov_addr: addr,
                            mov_len: 0,
                            syscall_addr: addr,
                            nr: 0,
                            adjacent: true,
                        });
                    } else {
                        match live {
                            Some((mov_addr, mov_len, nr)) => {
                                sites.push(Site {
                                    mov_addr,
                                    mov_len,
                                    syscall_addr: addr,
                                    nr,
                                    adjacent: false,
                                });
                            }
                            None => skipped.push((addr, SkipReason::UnknownNumber)),
                        }
                    }
                    live = None; // syscall clobbers rax (return value)
                }
                // Instructions that overwrite rax.
                Inst::MovImm32 { .. } | Inst::MovImm32SxR64 { .. } => {} // other regs
                Inst::LoadRspDisp8R32 { reg: Reg::Rax, .. }
                | Inst::LoadRspDisp8R64 { reg: Reg::Rax, .. }
                | Inst::MovRegReg64 { dst: Reg::Rax, .. } => live = None,
                // Calls clobber rax; unconditional control flow ends the
                // block.
                Inst::CallRel32 { .. }
                | Inst::CallAbsIndirect { .. }
                | Inst::Ret
                | Inst::JmpRel8 { .. }
                | Inst::JmpRel32 { .. } => live = None,
                Inst::JccRel8 { .. } => {
                    if !self.config.across_conditional_branches {
                        live = None;
                    }
                }
                Inst::Int3 => live = None,
                // rax-preserving instructions.
                Inst::Nop
                | Inst::Ud2
                | Inst::Leave
                | Inst::PushRbp
                | Inst::PopRbp
                | Inst::TestEaxEax
                | Inst::AddRspImm8 { .. }
                | Inst::SubRspImm8 { .. }
                | Inst::LoadRspDisp8R32 { .. }
                | Inst::LoadRspDisp8R64 { .. }
                | Inst::StoreRspDisp8R64 { .. }
                | Inst::MovRegReg64 { .. } => {}
            }
            addr += d.len as u64;
        }
        (sites, skipped)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::binaries::{
        glibc_wrapper_image, invoke, library_image, pthread_cancellable_wrapper_image, WrapperSpec,
        WrapperStyle,
    };
    use crate::handler::XContainerKernel;

    #[test]
    fn detour_patches_cancellable_wrapper() {
        let image = pthread_cancellable_wrapper_image(202);
        let (mut patched, report) = OfflinePatcher::new().patch(&image).unwrap();
        assert_eq!(report.detour_patched, 1);
        assert_eq!(report.adjacent_patched, 0);

        // Execution equivalence: wrapped syscall still reports nr 202, now
        // entirely via function call.
        let entry = patched.symbol("wrapper").unwrap();
        let mut kernel = XContainerKernel::new();
        for _ in 0..3 {
            invoke(&mut patched, &mut kernel, entry, None).unwrap();
        }
        assert_eq!(kernel.syscall_numbers(), vec![202; 3]);
        assert_eq!(kernel.stats().trapped, 0);
        assert_eq!(kernel.stats().via_function_call, 3);
    }

    #[test]
    fn adjacent_sites_use_online_replacement() {
        let image = glibc_wrapper_image(1);
        let (mut patched, report) = OfflinePatcher::new().patch(&image).unwrap();
        assert_eq!(report.adjacent_patched, 1);
        assert_eq!(report.detour_patched, 0);
        let entry = patched.symbol("wrapper").unwrap();
        let mut kernel = XContainerKernel::new();
        invoke(&mut patched, &mut kernel, entry, None).unwrap();
        assert_eq!(kernel.stats().via_function_call, 1);
        assert_eq!(kernel.stats().trapped, 0);
    }

    #[test]
    fn mixed_library_full_coverage() {
        let specs = [
            WrapperSpec {
                index: 0,
                style: WrapperStyle::GlibcSmall,
                nr: 0,
            },
            WrapperSpec {
                index: 1,
                style: WrapperStyle::GlibcLarge,
                nr: 15,
            },
            WrapperSpec {
                index: 2,
                style: WrapperStyle::PthreadCancellable,
                nr: 202,
            },
            WrapperSpec {
                index: 3,
                style: WrapperStyle::PthreadCancellable,
                nr: 1,
            },
        ];
        let image = library_image(&specs);
        let (mut patched, report) = OfflinePatcher::new().patch(&image).unwrap();
        assert_eq!(report.adjacent_patched, 2);
        assert_eq!(report.detour_patched, 2);
        assert_eq!(
            report.abom.hazard_scans_saved, 1,
            "two detour candidates must share one batched edge-list walk"
        );
        assert_eq!(report.abom.patched_sites(), 2, "adjacent pass counters");

        let mut kernel = XContainerKernel::new();
        for spec in &specs {
            let entry = patched.symbol(&format!("wrapper_{}", spec.index)).unwrap();
            invoke(&mut patched, &mut kernel, entry, None).unwrap();
        }
        assert_eq!(kernel.syscall_numbers(), vec![0, 15, 202, 1]);
        assert_eq!(kernel.stats().trapped, 0, "all sites should be patched");
    }

    #[test]
    fn go_stack_wrapper_is_adjacent_patched() {
        let specs = [WrapperSpec {
            index: 0,
            style: WrapperStyle::GoStack,
            nr: 0,
        }];
        let image = library_image(&specs);
        let (mut patched, report) = OfflinePatcher::new().patch(&image).unwrap();
        assert_eq!(report.adjacent_patched, 1);
        let entry = patched.symbol("wrapper_0").unwrap();
        let mut kernel = XContainerKernel::new();
        invoke(&mut patched, &mut kernel, entry, Some(39)).unwrap();
        assert_eq!(kernel.syscall_numbers(), vec![39]);
        assert_eq!(kernel.stats().trapped, 0);
    }

    #[test]
    fn conservative_config_skips_branchy_wrapper() {
        let image = pthread_cancellable_wrapper_image(202);
        let tool = OfflinePatcher::with_config(OfflineConfig {
            across_conditional_branches: false,
            ..OfflineConfig::default()
        });
        let (_, report) = tool.patch(&image).unwrap();
        assert_eq!(report.total_patched(), 0);
        assert!(report
            .skipped
            .iter()
            .any(|(_, r)| *r == SkipReason::UnknownNumber));
    }

    #[test]
    fn unknown_number_skipped() {
        // A bare syscall with no immediate mov in sight.
        use xc_isa::asm::Assembler;
        let mut a = Assembler::new(0x40_0000);
        a.label("raw").unwrap();
        a.inst(Inst::MovRegReg64 {
            dst: Reg::Rax,
            src: Reg::Rdi,
        });
        a.inst(Inst::Syscall);
        a.inst(Inst::Ret);
        let image = a.finish().unwrap();
        let (_, report) = OfflinePatcher::new().patch(&image).unwrap();
        assert_eq!(report.total_patched(), 0);
        assert_eq!(report.skipped.len(), 1);
        assert_eq!(report.skipped[0].1, SkipReason::UnknownNumber);
    }

    #[test]
    fn xor_zero_region_too_small() {
        let specs = [WrapperSpec {
            index: 0,
            style: WrapperStyle::XorZeroRead,
            nr: 0,
        }];
        let image = library_image(&specs);
        let (_, report) = OfflinePatcher::new().patch(&image).unwrap();
        assert_eq!(report.total_patched(), 0);
        assert!(report
            .skipped
            .iter()
            .any(|(_, r)| *r == SkipReason::RegionTooSmall));
    }

    #[test]
    fn patched_image_preserves_symbols_and_grows() {
        let image = pthread_cancellable_wrapper_image(1);
        let (patched, _) = OfflinePatcher::new().patch(&image).unwrap();
        assert_eq!(patched.symbol("wrapper"), image.symbol("wrapper"));
        assert!(patched.len() > image.len());
        assert_eq!(patched.base(), image.base());
    }

    #[test]
    fn trampolines_pack_by_length_and_still_reverify() {
        // Two cancellable wrappers → two detour trampolines. Each is
        // interior (5 bytes: test/jcc/nop) + vsyscall call (7) + jmp
        // back (5) = 17 bytes; packed back-to-back the trampoline area
        // is exactly 34 bytes, not two 16-byte-aligned slots.
        let specs = [
            WrapperSpec {
                index: 0,
                style: WrapperStyle::PthreadCancellable,
                nr: 202,
            },
            WrapperSpec {
                index: 1,
                style: WrapperStyle::PthreadCancellable,
                nr: 1,
            },
        ];
        let image = library_image(&specs);
        let (mut patched, report) = OfflinePatcher::new().patch(&image).unwrap();
        assert_eq!(report.detour_patched, 2);
        let tramp_area_start = (image.len() as u64).div_ceil(PAGE_SIZE) * PAGE_SIZE;
        assert_eq!(
            patched.len() as u64 - tramp_area_start,
            34,
            "trampolines must pack by actual length"
        );

        let shape = xc_verify::reverify(&patched, image.len());
        assert!(shape.ok(), "violations: {:?}", shape.violations);
        assert_eq!(shape.detours.len(), 2);

        let mut kernel = XContainerKernel::new();
        for spec in &specs {
            let entry = patched.symbol(&format!("wrapper_{}", spec.index)).unwrap();
            invoke(&mut patched, &mut kernel, entry, None).unwrap();
        }
        assert_eq!(kernel.syscall_numbers(), vec![202, 1]);
        assert_eq!(kernel.stats().trapped, 0);
    }

    #[test]
    fn default_config_skips_libc_shim() {
        let image = library_image(&[WrapperSpec {
            index: 0,
            style: WrapperStyle::LibcShim,
            nr: 39,
        }]);
        let (_, report) = OfflinePatcher::new().patch(&image).unwrap();
        assert_eq!(report.total_patched(), 0);
        assert_eq!(report.interprocedural_recovered, 0);
        assert!(report
            .skipped
            .iter()
            .any(|(_, r)| *r == SkipReason::UnknownNumber));
    }

    #[test]
    fn interprocedural_config_recovers_libc_shim() {
        let image = library_image(&[WrapperSpec {
            index: 0,
            style: WrapperStyle::LibcShim,
            nr: 39,
        }]);
        let tool = OfflinePatcher::with_config(OfflineConfig {
            interprocedural: true,
            ..OfflineConfig::default()
        });
        let (mut patched, report) = tool.patch(&image).unwrap();
        assert_eq!(report.detour_patched, 1);
        assert_eq!(report.interprocedural_recovered, 1);
        assert!(!report
            .skipped
            .iter()
            .any(|(_, r)| *r == SkipReason::UnknownNumber));

        let shape = xc_verify::reverify(&patched, image.len());
        assert!(shape.ok(), "violations: {:?}", shape.violations);

        // Execution equivalence: the shim's syscall now runs entirely via
        // the vsyscall function call, still reporting nr 39.
        let entry = patched.symbol("wrapper_0").unwrap();
        let mut kernel = XContainerKernel::new();
        for _ in 0..3 {
            invoke(&mut patched, &mut kernel, entry, None).unwrap();
        }
        assert_eq!(kernel.syscall_numbers(), vec![39; 3]);
        assert_eq!(kernel.stats().trapped, 0);
        assert_eq!(kernel.stats().via_function_call, 3);
    }
}
