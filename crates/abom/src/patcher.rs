//! The online patcher.
//!
//! Runs inside the X-Kernel's syscall-forwarding path. On each trapped
//! `syscall` it recognizes the surrounding pattern ([`crate::patterns`])
//! and rewrites it with atomic ≤ 8-byte compare-exchanges, exactly as §4.4
//! describes:
//!
//! * interrupts are disabled and the CR0 write-protect bit cleared for the
//!   duration of the patch (modelled by the `wp_override` flag on
//!   [`BinaryImage::cmpxchg`]),
//! * 7-byte patterns are replaced in one exchange,
//! * the 9-byte pattern is replaced in two phases, each of which leaves the
//!   binary execution-equivalent: phase 1 turns the 7-byte `mov` into the
//!   call (leaving the trailing `syscall`), phase 2 turns the `syscall`
//!   into `jmp -9`,
//! * "the binary replacement only needs to be performed once for each
//!   place" — a concurrent retry whose expected bytes no longer match is
//!   treated as already-patched, not an error.

use xc_isa::image::{BinaryImage, ImageError};
use xc_isa::inst::Inst;

use crate::patterns::{recognize, Pattern};
use crate::stats::AbomStats;
use crate::table::VsyscallTable;

/// Configuration knobs for the patcher (used by the ablation benches).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AbomConfig {
    /// Master switch: when false every syscall is forwarded untouched
    /// (the "ABOM disabled" rows of §5.2).
    pub enabled: bool,
    /// Whether phase 2 of the 9-byte replacement runs (ablation: phase 1
    /// alone is still correct, just leaves a dead `syscall`).
    pub nine_byte_phase2: bool,
    /// Run the full `xc-verify` static analysis on every trapped syscall
    /// and refuse to patch sites it cannot prove
    /// [`Safe`](xc_verify::Verdict::Safe). Off by default: the online
    /// replacements carry their own safety argument (trap-driven, atomic,
    /// `#UD`-recoverable), so the analysis is redundant — this knob exists
    /// to *measure* that redundancy (the `verify_study` ablation bench),
    /// and the content-keyed [`xc_verify::AnalysisCache`] is what makes
    /// the per-trap analysis affordable.
    pub preflight_verify: bool,
}

impl Default for AbomConfig {
    fn default() -> Self {
        AbomConfig {
            enabled: true,
            nine_byte_phase2: true,
            preflight_verify: false,
        }
    }
}

/// Result of one patch attempt on a trapped syscall.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PatchOutcome {
    /// The site was rewritten (pattern recorded in the stats).
    Patched(Pattern),
    /// Another vCPU patched the site first; nothing to do.
    AlreadyPatched,
    /// The surrounding bytes matched no known pattern; the syscall keeps
    /// trapping.
    NotRecognized,
    /// Pre-flight verification could not prove the site safe
    /// (only with [`AbomConfig::preflight_verify`]); the syscall keeps
    /// trapping.
    VerifyRejected,
    /// The optimizer is disabled.
    Disabled,
    /// The image rejected the write (e.g. out-of-bounds after a bad
    /// recognition) — the syscall keeps trapping.
    Failed(ImageError),
}

impl PatchOutcome {
    /// Whether the site will dispatch via function call from now on.
    pub fn is_optimized(&self) -> bool {
        matches!(
            self,
            PatchOutcome::Patched(_) | PatchOutcome::AlreadyPatched
        )
    }
}

/// The Automatic Binary Optimization Module.
///
/// # Example
///
/// ```
/// use xc_abom::binaries::glibc_wrapper_image;
/// use xc_abom::patcher::{Abom, PatchOutcome};
///
/// let mut image = glibc_wrapper_image(0); // __read-style wrapper
/// let entry = image.symbol("wrapper").unwrap();
/// let syscall_addr = entry + 5; // after the 5-byte mov
///
/// let mut abom = Abom::new();
/// let outcome = abom.on_syscall_trap(&mut image, syscall_addr);
/// assert!(outcome.is_optimized());
/// // Figure 2, case 1: callq *0xffffffffff600008.
/// assert_eq!(
///     image.read_bytes(entry, 7).unwrap(),
///     [0xff, 0x14, 0x25, 0x08, 0x00, 0x60, 0xff]
/// );
/// ```
#[derive(Debug, Clone, Default)]
pub struct Abom {
    table: VsyscallTable,
    config: AbomConfig,
    stats: AbomStats,
    /// Memoized pre-flight analyses (only populated with
    /// [`AbomConfig::preflight_verify`]). Keyed by image content, so a
    /// successful patch automatically invalidates: the next trap sees new
    /// bytes and re-analyzes. Repeated traps over an unchanged image —
    /// unrecognized and cancellable wrappers, the common steady state —
    /// hit the cache.
    verify_cache: xc_verify::AnalysisCache,
}

impl Abom {
    /// Creates the patcher with default configuration.
    pub fn new() -> Self {
        Abom::default()
    }

    /// Creates the patcher with explicit configuration.
    pub fn with_config(config: AbomConfig) -> Self {
        Abom {
            table: VsyscallTable::new(),
            config,
            stats: AbomStats::new(),
            verify_cache: xc_verify::AnalysisCache::new(),
        }
    }

    /// The vsyscall table this patcher targets.
    pub fn table(&self) -> &VsyscallTable {
        &self.table
    }

    /// Current configuration.
    pub fn config(&self) -> AbomConfig {
        self.config
    }

    /// Accumulated statistics.
    pub fn stats(&self) -> &AbomStats {
        &self.stats
    }

    /// Mutable statistics access (the syscall handler shares counters).
    pub fn stats_mut(&mut self) -> &mut AbomStats {
        &mut self.stats
    }

    /// The pre-flight analysis memo table (see
    /// [`AbomConfig::preflight_verify`]).
    pub fn verify_cache(&self) -> &xc_verify::AnalysisCache {
        &self.verify_cache
    }

    /// Handles one trapped `syscall` at `syscall_addr`: recognizes and
    /// patches the site. Call *before* forwarding the syscall (the current
    /// invocation still completes via the trap path either way).
    pub fn on_syscall_trap(&mut self, image: &mut BinaryImage, syscall_addr: u64) -> PatchOutcome {
        if !self.config.enabled {
            return PatchOutcome::Disabled;
        }
        let pattern = recognize(image, syscall_addr);
        if self.config.preflight_verify {
            // The verifier-in-the-loop kernel re-proves *every* trapped
            // site against the current image state, recognized or not —
            // that is the ablation being measured. Memoization by content
            // makes the repeated proofs cheap: only the first trap after
            // each byte change pays the pipeline; every further trap on an
            // unchanged image (unrecognized and cancellable wrappers trap
            // forever) is a cache hit. Only sites the pattern matcher
            // would actually rewrite can be vetoed.
            let analysis = self
                .verify_cache
                .analyze(&xc_verify::Verifier::new(), image);
            self.stats.verify_cache_hits = self.verify_cache.hits();
            self.stats.verify_cache_misses = self.verify_cache.misses();
            if pattern.is_some()
                && analysis.verdict_at(syscall_addr) != Some(xc_verify::Verdict::Safe)
            {
                self.stats.verify_rejected += 1;
                return PatchOutcome::VerifyRejected;
            }
        }
        let Some(pattern) = pattern else {
            self.stats.unrecognized += 1;
            return PatchOutcome::NotRecognized;
        };
        match self.apply(image, pattern, syscall_addr) {
            Ok(outcome) => {
                if let PatchOutcome::Patched(p) = outcome {
                    match p {
                        Pattern::MovEaxImm { .. } => self.stats.patched_case1 += 1,
                        Pattern::MovRaxFromStack { .. } => self.stats.patched_case2 += 1,
                        Pattern::MovRaxImm { .. } => self.stats.patched_case3 += 1,
                    }
                }
                outcome
            }
            Err(e) => PatchOutcome::Failed(e),
        }
    }

    fn apply(
        &self,
        image: &mut BinaryImage,
        pattern: Pattern,
        syscall_addr: u64,
    ) -> Result<PatchOutcome, ImageError> {
        match pattern {
            Pattern::MovEaxImm { mov_addr, nr } => {
                let entry = self
                    .table
                    .entry_for_number(nr)
                    .expect("recognize() validated the number");
                let call = Inst::CallAbsIndirect { target: entry }.encode();
                let mut original = Vec::with_capacity(7);
                Inst::MovImm32 {
                    reg: xc_isa::inst::Reg::Rax,
                    imm: nr as u32,
                }
                .encode_into(&mut original);
                Inst::Syscall.encode_into(&mut original);
                self.exchange(image, mov_addr, &original, &call)
                    .map(|fresh| finish_outcome(fresh, pattern))
            }
            Pattern::MovRaxFromStack { mov_addr, disp } => {
                let entry = self.table.stack_dispatch_entry(disp);
                let call = Inst::CallAbsIndirect { target: entry }.encode();
                let mut original = Vec::with_capacity(7);
                Inst::LoadRspDisp8R64 {
                    reg: xc_isa::inst::Reg::Rax,
                    disp,
                }
                .encode_into(&mut original);
                Inst::Syscall.encode_into(&mut original);
                self.exchange(image, mov_addr, &original, &call)
                    .map(|fresh| finish_outcome(fresh, pattern))
            }
            Pattern::MovRaxImm { mov_addr, nr } => {
                let entry = self
                    .table
                    .entry_for_number(nr)
                    .expect("recognize() validated the number");
                // Phase 1: replace the 7-byte mov with the call; leave the
                // syscall untouched. Intermediate state: call + syscall,
                // which is execution-equivalent because the handler skips a
                // syscall found at the return address.
                let call = Inst::CallAbsIndirect { target: entry }.encode();
                let original_mov = Inst::MovImm32SxR64 {
                    reg: xc_isa::inst::Reg::Rax,
                    imm: nr as i32,
                }
                .encode();
                let fresh = self.exchange(image, mov_addr, &original_mov, &call)?;
                // Phase 2: replace the now-dead syscall with jmp -9 (back
                // to the call), equally equivalent via the handler check.
                if self.config.nine_byte_phase2 {
                    let jmp = Inst::JmpRel8 { rel: -9 }.encode();
                    let syscall = Inst::Syscall.encode();
                    // A mismatch here means another vCPU already completed
                    // phase 2 — benign.
                    let _ = self.exchange(image, syscall_addr, &syscall, &jmp);
                }
                Ok(finish_outcome(fresh, pattern))
            }
        }
    }

    /// Rolls back a just-applied patch: atomically restores `original`
    /// over the `patched` bytes at `addr` (CR0.WP overridden exactly as
    /// when patching), returning the site to its trap-path form. The
    /// graceful-degradation layer calls this when a patched site is
    /// later deemed unsafe — e.g. a failed post-patch verification — so
    /// the site falls back permanently to the (slow but always-correct)
    /// `syscall` trap of §4.4.
    ///
    /// # Errors
    ///
    /// [`ImageError::ExchangeMismatch`] if the bytes at `addr` are no
    /// longer `patched` (a concurrent rollback already restored them —
    /// callers may treat that as success), or any image-level error for
    /// out-of-range addresses.
    pub fn rollback(
        &mut self,
        image: &mut BinaryImage,
        addr: u64,
        patched: &[u8],
        original: &[u8],
    ) -> Result<(), ImageError> {
        image.cmpxchg(addr, patched, original, true)?;
        self.stats.rolled_back += 1;
        Ok(())
    }

    /// One atomic exchange with the CR0.WP override. `Ok(true)` means this
    /// call performed the patch; `Ok(false)` means the expected bytes were
    /// already gone (concurrent patch — treated as success per §4.4).
    fn exchange(
        &self,
        image: &mut BinaryImage,
        addr: u64,
        expected: &[u8],
        new: &[u8],
    ) -> Result<bool, ImageError> {
        match image.cmpxchg(addr, expected, new, true) {
            Ok(()) => Ok(true),
            Err(ImageError::ExchangeMismatch { .. }) => {
                // Already patched by a concurrent vCPU: verify the new bytes
                // are in place; if they are anything else, report mismatch
                // as a failure.
                let current = image.read_bytes(addr, new.len())?;
                if current == new {
                    Ok(false)
                } else {
                    Err(ImageError::ExchangeMismatch { addr })
                }
            }
            Err(e) => Err(e),
        }
    }
}

fn finish_outcome(fresh: bool, pattern: Pattern) -> PatchOutcome {
    if fresh {
        PatchOutcome::Patched(pattern)
    } else {
        PatchOutcome::AlreadyPatched
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use xc_isa::asm::Assembler;
    use xc_isa::inst::{Inst, Reg};

    fn case1_image(nr: u32) -> (BinaryImage, u64) {
        let mut a = Assembler::new(0x40_0000);
        a.label("wrapper").unwrap();
        a.inst(Inst::MovImm32 {
            reg: Reg::Rax,
            imm: nr,
        });
        let syscall_at = a.here();
        a.inst(Inst::Syscall);
        a.inst(Inst::Ret);
        let mut img = a.finish().unwrap();
        img.protect_all(false); // text is read-only, as loaded
        (img, syscall_at)
    }

    #[test]
    fn case1_patch_bytes_match_figure2() {
        let (mut img, at) = case1_image(0);
        let mut abom = Abom::new();
        let outcome = abom.on_syscall_trap(&mut img, at);
        assert!(matches!(
            outcome,
            PatchOutcome::Patched(Pattern::MovEaxImm { nr: 0, .. })
        ));
        assert_eq!(
            img.read_bytes(0x40_0000, 7).unwrap(),
            [0xff, 0x14, 0x25, 0x08, 0x00, 0x60, 0xff]
        );
        assert_eq!(abom.stats().patched_case1, 1);
        // Patch wrote through the read-only protection and dirtied the page.
        assert!(img.is_dirty(0x40_0000));
    }

    #[test]
    fn second_trap_reports_already_patched() {
        let (mut img, at) = case1_image(3);
        let mut abom = Abom::new();
        assert!(matches!(
            abom.on_syscall_trap(&mut img, at),
            PatchOutcome::Patched(_)
        ));
        // The same site cannot trap again in reality (the bytes changed),
        // but a concurrent vCPU may race; simulate the race by re-applying.
        let again = abom.on_syscall_trap(&mut img, at);
        // After the patch the bytes at `at` are the call tail — not a
        // syscall — so recognition fails cleanly.
        assert_eq!(again, PatchOutcome::NotRecognized);
    }

    #[test]
    fn case3_two_phase_bytes() {
        let mut a = Assembler::new(0x40_0000);
        a.inst(Inst::MovImm32SxR64 {
            reg: Reg::Rax,
            imm: 15,
        });
        let at = a.here();
        a.inst(Inst::Syscall);
        a.inst(Inst::Ret);
        let mut img = a.finish().unwrap();

        let mut abom = Abom::new();
        let outcome = abom.on_syscall_trap(&mut img, at);
        assert!(matches!(
            outcome,
            PatchOutcome::Patched(Pattern::MovRaxImm { nr: 15, .. })
        ));
        // Phase 1: callq *0xffffffffff600080; phase 2: eb f7.
        assert_eq!(
            img.read_bytes(0x40_0000, 9).unwrap(),
            [0xff, 0x14, 0x25, 0x80, 0x00, 0x60, 0xff, 0xeb, 0xf7]
        );
        assert_eq!(abom.stats().patched_case3, 1);
    }

    #[test]
    fn case3_phase1_only_when_configured() {
        let mut a = Assembler::new(0x40_0000);
        a.inst(Inst::MovImm32SxR64 {
            reg: Reg::Rax,
            imm: 15,
        });
        let at = a.here();
        a.inst(Inst::Syscall);
        a.inst(Inst::Ret);
        let mut img = a.finish().unwrap();

        let mut abom = Abom::with_config(AbomConfig {
            enabled: true,
            nine_byte_phase2: false,
            preflight_verify: false,
        });
        abom.on_syscall_trap(&mut img, at);
        // Syscall still in place after phase 1.
        assert_eq!(img.read_bytes(at, 2).unwrap(), [0x0f, 0x05]);
    }

    #[test]
    fn case2_patch_targets_stack_entry() {
        let mut a = Assembler::new(0x40_0000);
        a.inst(Inst::LoadRspDisp8R64 {
            reg: Reg::Rax,
            disp: 8,
        });
        let at = a.here();
        a.inst(Inst::Syscall);
        a.inst(Inst::Ret);
        let mut img = a.finish().unwrap();

        let mut abom = Abom::new();
        let outcome = abom.on_syscall_trap(&mut img, at);
        assert!(matches!(
            outcome,
            PatchOutcome::Patched(Pattern::MovRaxFromStack { disp: 8, .. })
        ));
        assert_eq!(
            img.read_bytes(0x40_0000, 7).unwrap(),
            [0xff, 0x14, 0x25, 0x08, 0x0c, 0x60, 0xff]
        );
    }

    #[test]
    fn disabled_module_forwards_untouched() {
        let (mut img, at) = case1_image(1);
        let before = img.read_bytes(0x40_0000, 7).unwrap().to_vec();
        let mut abom = Abom::with_config(AbomConfig {
            enabled: false,
            nine_byte_phase2: true,
            preflight_verify: false,
        });
        assert_eq!(abom.on_syscall_trap(&mut img, at), PatchOutcome::Disabled);
        assert_eq!(img.read_bytes(0x40_0000, 7).unwrap(), before.as_slice());
    }

    #[test]
    fn unrecognized_counts() {
        let mut a = Assembler::new(0x40_0000);
        a.inst(Inst::MovImm32 {
            reg: Reg::Rax,
            imm: 2,
        });
        a.inst(Inst::Nop); // break adjacency
        let at = a.here();
        a.inst(Inst::Syscall);
        a.inst(Inst::Ret);
        let mut img = a.finish().unwrap();
        let mut abom = Abom::new();
        assert_eq!(
            abom.on_syscall_trap(&mut img, at),
            PatchOutcome::NotRecognized
        );
        assert_eq!(abom.stats().unrecognized, 1);
    }

    #[test]
    fn preflight_repeated_traps_on_same_body_hit_the_cache() {
        // A register-indirect wrapper is never rewritten, so its body —
        // and therefore the image content — is identical on every trap:
        // the first pre-flight analysis is a miss, each repeat is a hit.
        let mut a = Assembler::new(0x40_0000);
        a.label("wrapper").unwrap();
        a.inst(Inst::MovRegReg64 {
            dst: Reg::Rax,
            src: Reg::Rdi,
        });
        let at = a.here();
        a.inst(Inst::Syscall);
        a.inst(Inst::Ret);
        let mut img = a.finish().unwrap();

        let mut abom = Abom::with_config(AbomConfig {
            enabled: true,
            nine_byte_phase2: true,
            preflight_verify: true,
        });
        for _ in 0..3 {
            assert_eq!(
                abom.on_syscall_trap(&mut img, at),
                PatchOutcome::NotRecognized
            );
        }
        assert_eq!(abom.stats().verify_cache_misses, 1);
        assert_eq!(
            abom.stats().verify_cache_hits,
            2,
            "repeated analyses of the same body must hit"
        );
        // Unrecognized sites are counted but never vetoed: only sites the
        // pattern matcher would rewrite can be rejected.
        assert_eq!(abom.stats().unrecognized, 3);
        assert_eq!(abom.stats().verify_rejected, 0);
    }

    #[test]
    fn rollback_restores_trap_path() {
        let (mut img, at) = case1_image(0);
        let entry = 0x40_0000;
        let original = img.read_bytes(entry, 7).unwrap().to_vec();
        let mut abom = Abom::new();
        assert!(matches!(
            abom.on_syscall_trap(&mut img, at),
            PatchOutcome::Patched(_)
        ));
        let patched = img.read_bytes(entry, 7).unwrap().to_vec();
        assert_ne!(patched, original);

        abom.rollback(&mut img, entry, &patched, &original).unwrap();
        assert_eq!(img.read_bytes(entry, 7).unwrap(), original.as_slice());
        assert_eq!(abom.stats().rolled_back, 1);
        // The restored site is a live trap site again: a later trap can
        // re-patch it (the degradation layer instead demotes the route).
        assert!(matches!(
            abom.on_syscall_trap(&mut img, at),
            PatchOutcome::Patched(_)
        ));
    }

    #[test]
    fn double_rollback_reports_mismatch() {
        let (mut img, at) = case1_image(1);
        let entry = 0x40_0000;
        let original = img.read_bytes(entry, 7).unwrap().to_vec();
        let mut abom = Abom::new();
        abom.on_syscall_trap(&mut img, at);
        let patched = img.read_bytes(entry, 7).unwrap().to_vec();
        abom.rollback(&mut img, entry, &patched, &original).unwrap();
        // Second rollback finds the original bytes, not the patch.
        assert!(matches!(
            abom.rollback(&mut img, entry, &patched, &original),
            Err(ImageError::ExchangeMismatch { .. })
        ));
        assert_eq!(abom.stats().rolled_back, 1);
    }

    #[test]
    fn concurrent_patch_race_is_benign() {
        let (mut img, at) = case1_image(2);
        let abom = Abom::new();
        // Simulate a racing vCPU patching first.
        let entry = abom.table().entry_for_number(2).unwrap();
        let call = Inst::CallAbsIndirect { target: entry }.encode();
        let mut original = Inst::MovImm32 {
            reg: Reg::Rax,
            imm: 2,
        }
        .encode();
        original.extend_from_slice(&Inst::Syscall.encode());
        img.cmpxchg(at - 5, &original, &call, true).unwrap();
        // Our exchange sees the mismatch but verifies the new bytes.
        let abom2 = Abom::new();
        let result = abom2.apply(
            &mut img,
            Pattern::MovEaxImm {
                mov_addr: at - 5,
                nr: 2,
            },
            at,
        );
        assert_eq!(result.unwrap(), PatchOutcome::AlreadyPatched);
    }
}
