//! ABOM and syscall-dispatch statistics.
//!
//! §5.2 of the paper: "we added a counter in the X-Kernel to calculate how
//! many system calls were forwarded to X-LibOS" — the syscall-reduction
//! percentages of Table 1 are exactly `1 − forwarded/total`. This module is
//! that counter.

use std::fmt;

/// Counters kept by the X-Kernel/X-LibOS pair.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct AbomStats {
    /// Syscalls that arrived via the `syscall` instruction (trapped into
    /// the X-Kernel and forwarded to X-LibOS).
    pub trapped: u64,
    /// Syscalls that arrived as function calls through the vsyscall table.
    pub via_function_call: u64,
    /// Sites patched with the 7-byte case-1 replacement.
    pub patched_case1: u64,
    /// Sites patched with the 7-byte case-2 (stack-dispatch) replacement.
    pub patched_case2: u64,
    /// Sites patched with the 9-byte two-phase replacement.
    pub patched_case3: u64,
    /// Trapped syscalls whose surrounding bytes matched no pattern.
    pub unrecognized: u64,
    /// Invalid-opcode traps repaired by the jump-into-the-middle fixer.
    pub ud_fixups: u64,
    /// Return addresses adjusted by the X-LibOS handler (9-byte phase-1/2
    /// leftovers skipped).
    pub return_fixups: u64,
    /// Sites refused by pre-flight static verification (only non-zero
    /// with `AbomConfig::preflight_verify`).
    pub verify_rejected: u64,
    /// Pre-flight lookups served by the memoized analysis cache (only
    /// non-zero with `AbomConfig::preflight_verify`).
    pub verify_cache_hits: u64,
    /// Pre-flight lookups that ran the full static-analysis pipeline.
    pub verify_cache_misses: u64,
    /// Full CFG edge-list walks avoided by the offline patcher's batched
    /// hazard query: answering R candidate regions in one walk saves
    /// R − 1 walks over re-issuing the query per region. Always zero for
    /// the online (trap-driven) path, which patches one site at a time.
    pub hazard_scans_saved: u64,
    /// Patches undone by [`crate::patcher::Abom::rollback`] after a
    /// post-patch failure was detected: the site's original bytes were
    /// restored and the syscall trap path is its permanent fallback.
    pub rolled_back: u64,
}

impl AbomStats {
    /// Fresh zeroed counters.
    pub fn new() -> Self {
        AbomStats::default()
    }

    /// Total syscalls observed by either path.
    pub fn total_syscalls(&self) -> u64 {
        self.trapped + self.via_function_call
    }

    /// Total sites patched.
    pub fn patched_sites(&self) -> u64 {
        self.patched_case1 + self.patched_case2 + self.patched_case3
    }

    /// Fraction of syscall invocations that avoided the trap, in percent —
    /// the "Syscall Reduction" column of Table 1.
    ///
    /// Returns 0 when no syscalls were observed.
    pub fn reduction_percent(&self) -> f64 {
        let total = self.total_syscalls();
        if total == 0 {
            0.0
        } else {
            100.0 * self.via_function_call as f64 / total as f64
        }
    }

    /// Merges counters from another run.
    pub fn merge(&mut self, other: &AbomStats) {
        self.trapped += other.trapped;
        self.via_function_call += other.via_function_call;
        self.patched_case1 += other.patched_case1;
        self.patched_case2 += other.patched_case2;
        self.patched_case3 += other.patched_case3;
        self.unrecognized += other.unrecognized;
        self.ud_fixups += other.ud_fixups;
        self.return_fixups += other.return_fixups;
        self.verify_rejected += other.verify_rejected;
        self.verify_cache_hits += other.verify_cache_hits;
        self.verify_cache_misses += other.verify_cache_misses;
        self.hazard_scans_saved += other.hazard_scans_saved;
        self.rolled_back += other.rolled_back;
    }

    /// Fraction of pre-flight verifications served from the analysis
    /// cache, in `[0, 1]` (0 when pre-flight verification never ran).
    pub fn verify_cache_hit_rate(&self) -> f64 {
        let total = self.verify_cache_hits + self.verify_cache_misses;
        if total == 0 {
            0.0
        } else {
            self.verify_cache_hits as f64 / total as f64
        }
    }
}

impl fmt::Display for AbomStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "syscalls: {} trapped, {} via function call ({:.2}% reduction); \
             sites patched: {} (c1={}, c2={}, c3={}), unrecognized traps: {}",
            self.trapped,
            self.via_function_call,
            self.reduction_percent(),
            self.patched_sites(),
            self.patched_case1,
            self.patched_case2,
            self.patched_case3,
            self.unrecognized,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reduction_math() {
        let mut s = AbomStats::new();
        assert_eq!(s.reduction_percent(), 0.0);
        s.trapped = 10;
        s.via_function_call = 990;
        assert!((s.reduction_percent() - 99.0).abs() < 1e-12);
        assert_eq!(s.total_syscalls(), 1000);
    }

    #[test]
    fn merge_adds_counters() {
        let mut a = AbomStats {
            trapped: 1,
            via_function_call: 2,
            ..AbomStats::new()
        };
        let b = AbomStats {
            trapped: 10,
            via_function_call: 20,
            patched_case3: 3,
            ..AbomStats::new()
        };
        a.merge(&b);
        assert_eq!(a.trapped, 11);
        assert_eq!(a.via_function_call, 22);
        assert_eq!(a.patched_case3, 3);
    }

    #[test]
    fn display_mentions_reduction() {
        let s = AbomStats {
            trapped: 1,
            via_function_call: 1,
            ..AbomStats::new()
        };
        assert!(s.to_string().contains("50.00%"));
    }
}
