//! # xc-abom — the Automatic Binary Optimization Module
//!
//! A faithful implementation of §4.4 of the X-Containers paper: the online
//! binary optimizer that the X-Kernel runs when it receives a `syscall`
//! trap, rewriting `mov`+`syscall` pairs into indirect calls through the
//! vsyscall entry table so subsequent "system calls" become plain function
//! calls into X-LibOS.
//!
//! The module reproduces every mechanism the paper describes:
//!
//! * **7-byte replacement, case 1** — `mov $nr,%eax` (5 bytes) + `syscall`
//!   (2 bytes) become one `callq *entry(nr)` (7 bytes), patched with a
//!   single ≤ 8-byte atomic compare-exchange ([`patcher`]).
//! * **7-byte replacement, case 2** — the Go-runtime pattern
//!   `mov disp(%rsp),%rax` + `syscall` becomes a call through a
//!   stack-dispatch entry ([`table`]).
//! * **9-byte replacement, two phases** — `mov $nr,%rax` (7 bytes) +
//!   `syscall`: phase 1 replaces the `mov` with the call and leaves the
//!   `syscall`; phase 2 replaces the `syscall` with `jmp -9`. Each
//!   intermediate state is execution-equivalent to the original
//!   (`tests/equivalence.rs` proves this by interpretation).
//! * **Return-address fix-ups** — the X-LibOS syscall handler skips a
//!   trailing `syscall` or back-`jmp` at the return address ([`handler`]).
//! * **Invalid-opcode recovery** — jumping into the middle of a patched
//!   call lands on the `60 ff` tail; the #UD handler moves the instruction
//!   pointer back to the call start ([`handler`]).
//! * **Offline patching tool** — a detour-style whole-binary rewriter that
//!   also handles the non-adjacent patterns ABOM cannot (the libpthread
//!   cancellable syscalls that keep MySQL at 44.6% in Table 1; the offline
//!   tool raises it to 92.2%) ([`offline`]).
//!
//! # Example
//!
//! ```
//! use xc_abom::binaries::glibc_wrapper_image;
//! use xc_abom::handler::XContainerKernel;
//! use xc_isa::cpu::Cpu;
//!
//! // A glibc-style `__write` wrapper (syscall 1), run twice.
//! let mut image = glibc_wrapper_image(1);
//! let entry = image.symbol("wrapper").unwrap();
//! let mut kernel = XContainerKernel::new();
//!
//! for _ in 0..2 {
//!     let mut cpu = Cpu::new(entry);
//!     cpu.push_halt_frame().unwrap();
//!     cpu.run(&mut image, &mut kernel, 1000).unwrap();
//! }
//! // First call trapped (and patched the site); second went through the
//! // vsyscall table as a function call.
//! assert_eq!(kernel.stats().trapped, 1);
//! assert_eq!(kernel.stats().via_function_call, 1);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod binaries;
pub mod handler;
pub mod offline;
pub mod patcher;
pub mod patterns;
pub mod stats;
pub mod table;

pub use handler::XContainerKernel;
pub use patcher::{Abom, AbomConfig, PatchOutcome};
pub use patterns::Pattern;
pub use stats::AbomStats;
pub use table::{EntryKind, VsyscallTable};
