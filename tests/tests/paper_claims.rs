//! Acceptance suite: the paper's headline claims, asserted end-to-end
//! through the public `xcontainers` API. Each test names the claim and
//! the section it comes from.

use xcontainers::prelude::*;
use xcontainers::workloads::fig6::{fig6a_nginx_1worker, fig6b_nginx_4workers, fig6c_php_mysql};
use xcontainers::workloads::loadbalance::{throughput as lb, LbMode};
use xcontainers::workloads::scalability::{throughput as fig8, ScalabilityConfig};
use xcontainers::workloads::table1::run_table1;
use xcontainers::workloads::unixbench::MicroBench;

fn costs() -> CostModel {
    CostModel::skylake_cloud()
}

/// Abstract: "X-Containers have up to 27× higher raw system call
/// throughput compared to Docker containers running in the cloud."
#[test]
fn claim_syscall_throughput_27x() {
    let costs = costs();
    for cloud in [CloudEnv::AmazonEc2, CloudEnv::GoogleGce] {
        let docker = SystemCallBench::score(&Platform::docker(cloud, true), &costs);
        let xc = SystemCallBench::score(&Platform::x_container(cloud, true), &costs);
        assert!(
            (15.0..45.0).contains(&(xc / docker)),
            "{cloud:?}: {:.1}x",
            xc / docker
        );
    }
}

/// Table 1: every application row within 2 percentage points, measured
/// through the byte-level ABOM patcher.
#[test]
fn claim_table1_rows() {
    for (profile, m) in run_table1(10_000, 1) {
        assert!(
            (m.online_reduction - profile.paper_reduction).abs() < 2.0,
            "{}: measured {:.2}% vs paper {:.2}%",
            profile.name,
            m.online_reduction,
            profile.paper_reduction
        );
    }
}

/// §5.2: "using our offline patching tool, two locations in the
/// libpthread library can be patched, reducing system call invocations
/// by 92.2%" (MySQL).
#[test]
fn claim_mysql_offline_recovery() {
    let mysql = xcontainers::workloads::table1::table1_profiles()
        .into_iter()
        .find(|p| p.name == "MySQL")
        .expect("MySQL row");
    let m = mysql.measure(10_000, 5);
    assert!(
        (m.online_reduction - 44.6).abs() < 2.0,
        "online {:.2}",
        m.online_reduction
    );
    assert!(
        (m.offline_reduction - 92.2).abs() < 2.0,
        "offline {:.2}",
        m.offline_reduction
    );
}

/// §5.3: "X-Containers improved throughput of Memcached from 134% to
/// 208% compared to native Docker", NGINX 21–50%, Redis comparable.
#[test]
fn claim_macrobenchmark_ordering() {
    let costs = costs();
    for cloud in [CloudEnv::AmazonEc2, CloudEnv::GoogleGce] {
        let docker = Platform::docker(cloud, true);
        let xc = Platform::x_container(cloud, true);
        let gain = |p: &RequestProfile| {
            p.service_time(&docker, &costs).as_nanos() as f64
                / p.service_time(&xc, &costs).as_nanos() as f64
        };
        let memcached = gain(&xcontainers::workloads::apps::memcached());
        let nginx = gain(&xcontainers::workloads::apps::nginx_static());
        let redis = gain(&xcontainers::workloads::apps::redis());
        assert!((1.2..2.6).contains(&memcached), "memcached {memcached:.2}");
        assert!((1.0..1.9).contains(&nginx), "nginx {nginx:.2}");
        assert!((0.8..1.5).contains(&redis), "redis {redis:.2}");
        assert!(memcached > nginx && nginx > redis);
    }
}

/// Figure 3b: relative latency mirrors throughput — X-Containers serve
/// with lower latency than patched Docker, and gVisor's latencies blow
/// up by multiples (the paper's 2.7–10× annotations).
#[test]
fn claim_fig3b_latency_ordering() {
    use xcontainers::workloads::http::run_closed_loop;
    let costs = costs();
    let profile = xcontainers::workloads::apps::memcached();
    let run = |p: Platform| {
        let server = ServerModel {
            platform: p,
            profile: profile.clone(),
            workers: 4,
            cores: 4,
        };
        run_closed_loop(&server, &costs, 50, Nanos::from_millis(200), 3)
            .latency
            .quantile(0.5) as f64
    };
    let docker = run(Platform::docker(CloudEnv::AmazonEc2, true));
    let xc = run(Platform::x_container(CloudEnv::AmazonEc2, true));
    let gv = run(Platform::gvisor(CloudEnv::AmazonEc2, true));
    assert!(xc < docker, "X latency {xc} below Docker {docker}");
    let gv_rel = gv / docker;
    assert!(
        (2.0..40.0).contains(&gv_rel),
        "gVisor latency blow-up {gv_rel:.1}x"
    );
}

/// Figure 4's concurrent panels: platforms without multicore support
/// (gVisor) gain nothing from running four copies.
#[test]
fn claim_concurrent_panel_gvisor_flat() {
    use xcontainers::workloads::unixbench::concurrent_score;
    let costs = costs();
    let xc = Platform::x_container(CloudEnv::AmazonEc2, true);
    let gv = Platform::gvisor(CloudEnv::AmazonEc2, true);
    let xc_single = SystemCallBench::score(&xc, &costs);
    let gv_single = SystemCallBench::score(&gv, &costs);
    assert!(concurrent_score(xc_single, &xc, 4) > xc_single * 3.0);
    assert_eq!(concurrent_score(gv_single, &gv, 4), gv_single);
}

/// §5.4: X-Containers lose exactly the two microbenchmarks whose page
/// table operations must cross into the X-Kernel.
#[test]
fn claim_microbenchmark_win_loss_pattern() {
    let costs = costs();
    let docker = Platform::docker(CloudEnv::AmazonEc2, true);
    let xc = Platform::x_container(CloudEnv::AmazonEc2, true);
    let rel = |b: MicroBench| b.score(&xc, &costs) / b.score(&docker, &costs);
    assert!(rel(MicroBench::Execl) > 1.0);
    assert!(rel(MicroBench::FileCopy) > 1.0);
    assert!(rel(MicroBench::PipeThroughput) > 1.0);
    assert!(rel(MicroBench::ContextSwitching) < 1.0);
    assert!(rel(MicroBench::ProcessCreation) < 1.0);
}

/// §5.4: "the Meltdown patch does not affect performance of
/// X-Containers and Clear Containers."
#[test]
fn claim_meltdown_immunity() {
    let costs = costs();
    let cloud = CloudEnv::GoogleGce;
    for bench in MicroBench::ALL {
        let p = bench.score(&Platform::x_container(cloud, true), &costs);
        let u = bench.score(&Platform::x_container(cloud, false), &costs);
        assert_eq!(p, u, "{} must not move with the patch", bench.label());
    }
    assert_eq!(
        Platform::clear_container(cloud, true)
            .unwrap()
            .syscall_cost(&costs),
        Platform::clear_container(cloud, false)
            .unwrap()
            .syscall_cost(&costs),
    );
}

/// §5.5 / Figure 6: the LibOS comparison.
#[test]
fn claim_libos_comparison() {
    let costs = costs();
    // (a) "X-Containers achieved throughput comparable to Unikernel, and
    // over twice that of Graphene."
    let g = fig6a_nginx_1worker(LibOsPlatform::Graphene, &costs);
    let u = fig6a_nginx_1worker(LibOsPlatform::Unikernel, &costs);
    let x = fig6a_nginx_1worker(LibOsPlatform::XContainer, &costs);
    assert!((0.85..1.35).contains(&(x / u)));
    assert!(x / g > 1.6);
    // (b) "X-Containers outperformed Graphene by more than 50%."
    let g4 = fig6b_nginx_4workers(LibOsPlatform::Graphene, &costs).unwrap();
    let x4 = fig6b_nginx_4workers(LibOsPlatform::XContainer, &costs).unwrap();
    assert!(x4 / g4 > 1.5);
    // (c) "X-Containers outperformed Unikernel by over 40%" and merged
    // "was about three times that of the Unikernel Dedicated
    // configuration."
    let u_ded = fig6c_php_mysql(LibOsPlatform::Unikernel, DbTopology::Dedicated, &costs).unwrap();
    let x_ded = fig6c_php_mysql(LibOsPlatform::XContainer, DbTopology::Dedicated, &costs).unwrap();
    let x_merged = fig6c_php_mysql(
        LibOsPlatform::XContainer,
        DbTopology::DedicatedMerged,
        &costs,
    )
    .unwrap();
    assert!(x_ded / u_ded > 1.4);
    assert!((2.0..4.0).contains(&(x_merged / u_ded)));
}

/// §5.6 / Figure 8: Docker leads at low density; X-Containers win by
/// ~18% at N=400; PV/HVM instances cannot reach 400.
#[test]
fn claim_scalability_crossover() {
    let costs = costs();
    let d50 = fig8(ScalabilityConfig::Docker, 50, &costs).unwrap();
    let x50 = fig8(ScalabilityConfig::XContainer, 50, &costs).unwrap();
    assert!(d50 > x50, "Docker must lead at N=50");
    let d400 = fig8(ScalabilityConfig::Docker, 400, &costs).unwrap();
    let x400 = fig8(ScalabilityConfig::XContainer, 400, &costs).unwrap();
    let gain = (x400 / d400 - 1.0) * 100.0;
    assert!((8.0..35.0).contains(&gain), "gain {gain:.1}%");
    assert!(fig8(ScalabilityConfig::XenPv, 400, &costs).is_none());
    assert!(fig8(ScalabilityConfig::XenHvm, 400, &costs).is_none());
}

/// §5.7 / Figure 9: 2× from cheap syscalls under HAProxy, +12%-class
/// gain from IPVS NAT, bottleneck shift with direct routing.
#[test]
fn claim_load_balancing_ladder() {
    let costs = costs();
    let values: Vec<f64> = LbMode::ALL.iter().map(|m| lb(*m, &costs)).collect();
    for pair in values.windows(2) {
        assert!(pair[1] > pair[0], "ladder must ascend: {values:?}");
    }
    let hx_over_docker = values[1] / values[0];
    assert!((1.5..2.8).contains(&hx_over_docker), "{hx_over_docker:.2}");
}

/// §2.3 / §6: the capability matrix — X-Containers is the only LibOS
/// platform with binary compatibility *and* concurrent multiprocessing.
#[test]
fn claim_capability_uniqueness() {
    let cloud = CloudEnv::LocalCluster;
    let libos_platforms = [
        Platform::x_container(cloud, true),
        Platform::graphene(cloud),
        Platform::unikernel(cloud),
        Platform::gvisor(cloud, true),
    ];
    let full: Vec<String> = libos_platforms
        .iter()
        .filter(|p| p.binary_compatible() && p.supports_multiprocess() && p.supports_multicore())
        .map(Platform::name)
        .collect();
    assert_eq!(full, vec!["X-Container".to_owned()]);
}
