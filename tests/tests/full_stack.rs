//! The whole story in one test file: a Docker image boots as an
//! X-Container through the §4.5 wrapper, its binary gets ABOM-patched on
//! first use, its packets flow through the real split-driver transport,
//! and the resulting steady state matches what the figure harnesses
//! assume.

use xcontainers::abom::binaries::{glibc_wrapper_image, invoke};
use xcontainers::libos::netdev::VirtualNic;
use xcontainers::prelude::*;
use xcontainers::runtimes::wrapper::{boot_plan, bootstrap_processes, DockerImage};
use xcontainers::xen::domain::{DomainKind, Machine};

#[test]
fn container_lifetime_story() {
    let costs = CostModel::skylake_cloud();

    // --- 1. Place the domain on the host -----------------------------
    let mut machine = Machine::new(96 * 1024);
    machine
        .create_domain("dom0", DomainKind::Dom0, 4096, 4)
        .unwrap();
    let netback = machine
        .create_domain("net-backend", DomainKind::Driver, 512, 1)
        .unwrap();
    let domid = machine
        .create_domain("web", DomainKind::XContainer, 128, 1)
        .unwrap();

    // --- 2. Boot via the Docker Wrapper -------------------------------
    let image = DockerImage::nginx();
    let plan = boot_plan(&image, SpawnMethod::LightVmToolstack);
    assert!(
        plan.total() < Nanos::from_millis(200),
        "LightVM-grade spawn"
    );
    let mut kernel = bootstrap_processes(&image, &costs).unwrap();
    assert_eq!(kernel.process_count(), 2, "nginx master + worker");

    // --- 3. First syscalls trap and get patched -----------------------
    let mut libc = glibc_wrapper_image(1); // __write
    let entry = libc.symbol("wrapper").unwrap();
    let mut xkernel = XContainerKernel::new();
    for _ in 0..10 {
        invoke(&mut libc, &mut xkernel, entry, None).unwrap();
    }
    assert_eq!(xkernel.stats().trapped, 1);
    assert_eq!(xkernel.stats().via_function_call, 9);

    // --- 4. Serve "requests" over the virtual NIC ---------------------
    let mut nic = VirtualNic::connect(domid, netback).unwrap();
    assert_eq!(nic.backend_state().as_deref(), Some("connected"));
    for i in 0..32u32 {
        nic.send(format!("HTTP/1.1 200 OK #{i}").as_bytes())
            .unwrap();
    }
    let delivered = nic.backend_poll().unwrap();
    assert_eq!(delivered.len(), 32);
    assert_eq!(nic.frontend_reap().unwrap(), 32);
    // Ring batching kept notifications far below the packet count — the
    // assumption behind amortized ring_notify in the cost model.
    assert!(nic.notifications() <= 2, "batched: {}", nic.notifications());

    // --- 5. The kernel accounted every operation ----------------------
    let pipe = kernel.pipe(&costs);
    kernel.write_pipe(pipe, b"fastcgi-record", &costs).unwrap();
    let mut buf = [0u8; 32];
    let n = kernel.read_pipe(pipe, &mut buf, &costs).unwrap();
    assert_eq!(&buf[..n], b"fastcgi-record");
    assert!(kernel.elapsed() > Nanos::ZERO);

    // --- 6. Steady-state dispatch matches the platform model ----------
    let platform = Platform::x_container(CloudEnv::LocalCluster, true);
    assert!(
        platform.syscall_cost(&costs) < Nanos::from_nanos(50),
        "figure harnesses assume the function-call steady state this \
         test just demonstrated"
    );

    // --- 7. Teardown releases the reservation -------------------------
    machine.destroy_domain(domid).unwrap();
    assert_eq!(machine.domain_count(), 2);
}

/// The same story on the Xen-Container baseline: identical substrate,
/// but no ABOM — every syscall keeps trapping, which is the entire
/// performance delta of the paper in one assertion pair.
#[test]
fn baseline_never_stops_trapping() {
    let mut libc = glibc_wrapper_image(1);
    let entry = libc.symbol("wrapper").unwrap();
    let mut kernel = XContainerKernel::with_config(AbomConfig {
        enabled: false,
        nine_byte_phase2: true,
        preflight_verify: false,
    });
    for _ in 0..10 {
        invoke(&mut libc, &mut kernel, entry, None).unwrap();
    }
    assert_eq!(kernel.stats().trapped, 10);
    assert_eq!(kernel.stats().via_function_call, 0);

    let costs = CostModel::skylake_cloud();
    let xen = Platform::xen_container(CloudEnv::LocalCluster, true);
    let xc = Platform::x_container(CloudEnv::LocalCluster, true);
    assert!(xen.syscall_cost(&costs) > xc.syscall_cost(&costs) * 50);
}
