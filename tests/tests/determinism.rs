//! Reproducibility: every experiment in the repository is a pure
//! function of its seed. These tests re-run whole experiment pipelines
//! and require byte-identical results — the property that makes the
//! figure harnesses trustworthy.

use xcontainers::prelude::*;
use xcontainers::workloads::http::run_closed_loop;
use xcontainers::workloads::scalability::{sweep, ScalabilityConfig};
use xcontainers::workloads::table1::run_table1;
use xcontainers::workloads::unixbench::MicroBench;

#[test]
fn table1_is_seed_deterministic() {
    let a = run_table1(3_000, 99);
    let b = run_table1(3_000, 99);
    for ((_, ma), (_, mb)) in a.iter().zip(&b) {
        assert_eq!(ma, mb);
    }
    // And a different seed actually changes sampling (same shape, not
    // necessarily same decimals).
    let c = run_table1(3_000, 100);
    assert!(a
        .iter()
        .zip(&c)
        .any(|((_, ma), (_, mc))| ma.online_reduction != mc.online_reduction));
}

#[test]
fn closed_loop_differs_only_with_seed() {
    let costs = CostModel::skylake_cloud();
    let server = ServerModel {
        platform: Platform::docker(CloudEnv::GoogleGce, true),
        profile: xcontainers::workloads::apps::memcached(),
        workers: 4,
        cores: 4,
    };
    let a = run_closed_loop(&server, &costs, 50, Nanos::from_millis(150), 1);
    let b = run_closed_loop(&server, &costs, 50, Nanos::from_millis(150), 1);
    let c = run_closed_loop(&server, &costs, 50, Nanos::from_millis(150), 2);
    assert_eq!(a.throughput_rps, b.throughput_rps);
    assert_eq!(a.latency.quantile(0.99), b.latency.quantile(0.99));
    // Different seed: jitter resamples; throughput stays close but the
    // exact tail differs.
    assert!((a.throughput_rps - c.throughput_rps).abs() / a.throughput_rps < 0.05);
}

#[test]
fn microbench_scores_are_pure() {
    let costs = CostModel::skylake_cloud();
    for platform in Platform::cloud_configurations(CloudEnv::AmazonEc2) {
        for bench in MicroBench::ALL {
            assert_eq!(
                bench.score(&platform, &costs),
                bench.score(&platform, &costs),
                "{} on {}",
                bench.label(),
                platform.name()
            );
        }
    }
}

#[test]
fn figure8_sweep_is_pure() {
    let costs = CostModel::skylake_cloud();
    for config in ScalabilityConfig::ALL {
        let a = sweep(config, &costs);
        let b = sweep(config, &costs);
        assert_eq!(a, b, "{}", config.label());
    }
}

#[test]
fn rng_streams_are_portable() {
    // Pin the generator's output so cross-machine runs are identical:
    // these constants are part of the reproducibility contract.
    let mut r = Rng::new(0x5eed);
    let first: Vec<u64> = (0..4).map(|_| r.next_u64()).collect();
    assert_eq!(
        first,
        vec![
            17236385663644093300,
            16282079530828760347,
            15612578460299724346,
            17980025521064999683,
        ]
    );
}
