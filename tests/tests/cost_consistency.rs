//! Cross-representation consistency: the closed-form ABI cost formulas,
//! the hypercall accounting ledger, and the working TLB model must all
//! tell the same story. A drift between any two would mean a figure
//! harness and the substrate disagree about what an operation costs.

use xcontainers::prelude::*;
use xcontainers::xen::abi::{XenAbi, KERNEL_HOT_PAGES, SWITCH_HYPERCALLS, USER_HOT_PAGES};
use xcontainers::xen::hypercall::{Hypercall, HypervisorAccounting};
use xcontainers::xen::tlb::{Lookup, Tlb};

#[test]
fn process_switch_formula_matches_ledger_reconstruction() {
    let costs = CostModel::skylake_cloud();

    // Reconstruct the X-Kernel process switch from its constituent
    // privileged operations, charged through the accounting ledger.
    let mut ledger = HypervisorAccounting::new();
    for _ in 0..SWITCH_HYPERCALLS {
        ledger.charge(Hypercall::SchedOp, &costs); // base-cost hypercalls
    }
    let ledger_part = ledger.total_time();
    let reconstructed =
        ledger_part + costs.page_table_switch + costs.tlb_flush_with_refill(USER_HOT_PAGES);

    assert_eq!(
        XenAbi::XKernel.process_switch_cost(&costs),
        reconstructed,
        "formula and ledger must agree"
    );
}

#[test]
fn pv_switch_extra_cost_is_exactly_the_kernel_refill() {
    let costs = CostModel::skylake_cloud();
    let delta =
        XenAbi::XenPv.process_switch_cost(&costs) - XenAbi::XKernel.process_switch_cost(&costs);
    assert_eq!(delta, costs.tlb_refill_per_page * KERNEL_HOT_PAGES);
}

#[test]
fn tlb_model_reproduces_the_refill_constants() {
    // Run the actual TLB through an intra-container switch and count the
    // page walks; they must equal what the cost formula charges.
    let mut tlb = Tlb::new();
    // Warm process 1: kernel pages global, user pages tagged.
    for i in 0..KERNEL_HOT_PAGES {
        tlb.fill(1, 0xffff_0000 + i, true);
    }
    for i in 0..USER_HOT_PAGES {
        tlb.fill(1, 0x10_0000 + i, false);
    }
    // X-Kernel switch to process 2: non-global flush.
    tlb.flush_non_global();
    let mut walks = 0;
    for i in 0..KERNEL_HOT_PAGES {
        if tlb.lookup(2, 0xffff_0000 + i) == Lookup::Miss {
            walks += 1;
        }
    }
    for i in 0..USER_HOT_PAGES {
        if tlb.lookup(2, 0x20_0000 + i) == Lookup::Miss {
            walks += 1;
        }
    }
    assert_eq!(
        walks, USER_HOT_PAGES,
        "measured page walks must equal the USER_HOT_PAGES charge"
    );
}

#[test]
fn fork_cost_matches_batched_mmu_ledger() {
    let costs = CostModel::skylake_cloud();
    let pages = 2_000u64;
    let batch = xcontainers::libos::backend::MMU_BATCH;

    let mut ledger = HypervisorAccounting::new();
    let mut remaining = pages;
    while remaining > 0 {
        let this = remaining.min(batch);
        ledger.charge(Hypercall::MmuUpdate { entries: this }, &costs);
        remaining -= this;
    }
    assert_eq!(
        XenAbi::XKernel.fork_page_table_cost(&costs, pages, batch),
        ledger.total_time()
    );
    assert_eq!(ledger.calls_of("mmu_update"), pages.div_ceil(batch));
}
