//! End-to-end integration: the full stack from assembled bytes to
//! figure-level numbers, crossing every crate boundary.

use xcontainers::abom::binaries::{invoke, library_image, WrapperSpec, WrapperStyle};
use xcontainers::abom::offline::OfflinePatcher;
use xcontainers::prelude::*;
use xcontainers::workloads::apps::nginx_static;
use xcontainers::workloads::http::run_closed_loop;
use xcontainers::xen::domain::{DomainKind, Machine};
use xcontainers::xen::events::EventChannels;
use xcontainers::xen::grant::{GrantAccess, GrantTable};

/// Assemble a binary → run it on the interpreter under the X-Kernel →
/// verify patching → keep running on the *patched image* and confirm the
/// steady state the platform model assumes (zero traps).
#[test]
fn bytes_to_steady_state() {
    let specs = [
        WrapperSpec {
            index: 0,
            style: WrapperStyle::GlibcSmall,
            nr: 0,
        },
        WrapperSpec {
            index: 1,
            style: WrapperStyle::GlibcLarge,
            nr: 300,
        },
        WrapperSpec {
            index: 2,
            style: WrapperStyle::GoStack,
            nr: 0,
        },
    ];
    let mut image = library_image(&specs);
    let mut kernel = XContainerKernel::new();
    for round in 0..50 {
        for spec in &specs {
            let entry = image.symbol(&format!("wrapper_{}", spec.index)).unwrap();
            let arg = spec.style.takes_stack_number().then_some(17);
            invoke(&mut image, &mut kernel, entry, arg).unwrap();
        }
        if round == 0 {
            assert_eq!(kernel.stats().trapped, 3, "one trap per site");
        }
    }
    assert_eq!(kernel.stats().trapped, 3);
    assert_eq!(kernel.stats().via_function_call, 49 * 3);
    // Steady state matches what Platform::syscall_cost assumes for
    // X-Containers: reduction approaches 100%.
    assert!(kernel.stats().reduction_percent() > 97.0);
}

/// A full split-driver handshake through the hypervisor substrate:
/// domains, event channels and grant tables cooperating, as the
/// netfront/netback path the runtime models price.
#[test]
fn split_driver_handshake() {
    let mut machine = Machine::new(4096);
    let dom0 = machine
        .create_domain("dom0", DomainKind::Dom0, 512, 2)
        .unwrap();
    let backend = machine
        .create_domain("net-backend", DomainKind::Driver, 256, 1)
        .unwrap();
    let guest = machine
        .create_domain("xc-nginx", DomainKind::XContainer, 128, 1)
        .unwrap();
    assert!(machine.domain(dom0).unwrap().kind().is_privileged());

    let mut events = EventChannels::new();
    let fe_port = events.alloc_unbound(guest).unwrap();
    let be_port = events.alloc_unbound(backend).unwrap();
    events.bind(guest, fe_port, backend, be_port).unwrap();

    let mut grants = GrantTable::new();
    // Frontend grants a TX buffer to the backend, notifies, backend
    // copies and completes.
    let gref = grants
        .grant(guest, backend, 0xabc0, GrantAccess::ReadOnly)
        .unwrap();
    events.send(guest, fe_port).unwrap();
    assert!(events.has_pending(backend));
    let pending = events.take_pending(backend);
    assert_eq!(pending, vec![be_port]);
    let copied = grants.copy(backend, gref, 1448).unwrap();
    assert_eq!(copied, 1448);
    events.send(backend, be_port).unwrap(); // completion interrupt
    assert!(events.has_pending(guest));
    grants.revoke(guest, gref).unwrap();

    machine.destroy_domain(guest).unwrap();
    assert_eq!(machine.domain_count(), 2);
}

/// The offline tool and the online patcher agree: an offline-patched
/// image shows zero traps when executed, matching the online steady
/// state, for every patchable style.
#[test]
fn offline_online_agreement() {
    let specs = [
        WrapperSpec {
            index: 0,
            style: WrapperStyle::GlibcSmall,
            nr: 2,
        },
        WrapperSpec {
            index: 1,
            style: WrapperStyle::PthreadCancellable,
            nr: 202,
        },
    ];
    let image = library_image(&specs);
    let (mut patched, report) = OfflinePatcher::new().patch(&image).unwrap();
    assert_eq!(report.total_patched(), 2);

    let mut kernel = XContainerKernel::with_config(AbomConfig {
        enabled: false, // nothing left for the online module to do
        nine_byte_phase2: true,
        preflight_verify: false,
    });
    for spec in &specs {
        let entry = patched.symbol(&format!("wrapper_{}", spec.index)).unwrap();
        invoke(&mut patched, &mut kernel, entry, None).unwrap();
    }
    assert_eq!(kernel.stats().trapped, 0);
    assert_eq!(kernel.syscall_numbers(), vec![2, 202]);
}

/// The closed-loop workload engine is deterministic end to end and its
/// saturated throughput approaches the analytic capacity ceiling.
#[test]
fn closed_loop_consistency() {
    let costs = CostModel::skylake_cloud();
    let server = ServerModel {
        platform: Platform::x_container(CloudEnv::AmazonEc2, true),
        profile: nginx_static(),
        workers: 2,
        cores: 4,
    };
    let a = run_closed_loop(&server, &costs, 32, Nanos::from_millis(300), 11);
    let b = run_closed_loop(&server, &costs, 32, Nanos::from_millis(300), 11);
    assert_eq!(a.throughput_rps, b.throughput_rps, "determinism");
    assert_eq!(a.latency.quantile(0.999), b.latency.quantile(0.999));

    let cap = server.capacity_rps(&costs);
    assert!(a.throughput_rps <= cap * 1.01);
    assert!(
        a.throughput_rps > cap * 0.8,
        "saturated run should near capacity"
    );
}

/// Kernel-config customization flows through to workload numbers
/// (§3.2/§5.7): an X-Container with a uniprocessor-tuned kernel serves a
/// single-threaded server no slower than the stock SMP build.
#[test]
fn kernel_customization_visible_end_to_end() {
    let costs = CostModel::skylake_cloud();
    let profile = nginx_static();
    let stock = Platform::x_container(CloudEnv::LocalCluster, true);
    let unikernel_style = Platform::unikernel(CloudEnv::LocalCluster);
    // The unikernel platform uses the uniprocessor config; its *dispatch*
    // path matches X-Containers even though its NetBSD kernel work is
    // slower.
    assert_eq!(
        unikernel_style.syscall_cost(&costs),
        stock.syscall_cost(&costs)
    );
    let x = profile.service_time(&stock, &costs).as_nanos() as f64;
    let u = profile.service_time(&unikernel_style, &costs).as_nanos() as f64;
    // Figure 6a: the two trade blows on a network-bound server — the
    // unikernel's uniprocessor tuning (§3.2) offsets its slower NetBSD
    // internals. They must stay within 10% of each other.
    assert!((u / x - 1.0).abs() < 0.10, "U {u} vs X {x}");
}
