// integration test crate root (tests live in tests/tests/)
