//! Serverless front-end scenario (§1): a stateless NGINX webserver under
//! a wrk-style closed-loop load generator, compared across container
//! runtimes — throughput and tail latency.
//!
//! Run with: `cargo run --example serverless_nginx`

use xcontainers::prelude::*;
use xcontainers::workloads::apps::nginx_static;

fn main() {
    let costs = CostModel::skylake_cloud();
    let cloud = CloudEnv::GoogleGce;
    let connections = 64;
    let duration = Nanos::from_millis(400);

    let contenders: Vec<Platform> = vec![
        Platform::docker(cloud, true),
        Platform::docker(cloud, false),
        Platform::xen_container(cloud, true),
        Platform::x_container(cloud, true),
        Platform::gvisor(cloud, true),
        Platform::clear_container(cloud, true).expect("GCE has nested virt"),
    ];

    let mut table = Table::new(
        &format!("NGINX static page, {connections} connections, wrk closed loop"),
        &["platform", "req/s", "p50 (µs)", "p99 (µs)", "vs Docker"],
    );

    let mut baseline_rps = None;
    for platform in contenders {
        let server = ServerModel {
            platform: platform.clone(),
            profile: nginx_static(),
            workers: 1,
            cores: 4,
        };
        let result = run_closed_loop(&server, &costs, connections, duration, 42);
        let baseline = *baseline_rps.get_or_insert(result.throughput_rps);
        table.row([
            Cell::from(platform.name()),
            Cell::Num(result.throughput_rps, 0),
            Cell::Num(result.latency.quantile(0.50) as f64 / 1_000.0, 1),
            Cell::Num(result.latency.quantile(0.99) as f64 / 1_000.0, 1),
            Cell::Num(result.throughput_rps / baseline, 2),
        ]);
    }
    println!("{table}");
    println!(
        "Shape check (Figure 3): X-Container above Docker; gVisor and Clear \
         Containers below; the Meltdown patch costs Docker but not X-Containers."
    );
}
