//! The Figure 9 scenario: three NGINX backends behind a load balancer,
//! escalating from user-space HAProxy to in-kernel IPVS — the kernel
//! customization only X-Containers permit without host root (§5.7).
//!
//! Run with: `cargo run --example load_balancer`

use xcontainers::prelude::*;
use xcontainers::workloads::loadbalance::{balancer_cost, bottleneck, throughput, Bottleneck};

fn main() {
    let costs = CostModel::skylake_cloud();

    let mut table = Table::new(
        "Load balancing: 3 NGINX backends + 1 balancer (one host)",
        &[
            "configuration",
            "balancer cost",
            "total req/s",
            "bottleneck",
            "vs Docker",
        ],
    );

    let baseline = throughput(LbMode::HaproxyDocker, &costs);
    for mode in LbMode::ALL {
        let total = throughput(mode, &costs);
        let neck = match bottleneck(mode, &costs) {
            Bottleneck::Balancer => "balancer",
            Bottleneck::Backends => "backends",
        };
        table.row([
            Cell::from(mode.label()),
            Cell::from(balancer_cost(mode, &costs).to_string()),
            Cell::Num(total, 0),
            Cell::from(neck),
            Cell::Num(total / baseline, 2),
        ]);
    }
    println!("{table}");
    println!(
        "IPVS needs kernel modules and iptables/ARP rewiring — root-level,\n\
         host-wide changes under Docker, but a private-kernel tweak inside an\n\
         X-Container. Direct routing shifts the bottleneck to the backends,\n\
         exactly as §5.7 reports."
    );
}
