//! Live migration (§3.3): one of the Xen-ecosystem capabilities
//! X-Containers inherit "which are hard to implement with traditional
//! containers." Plans pre-copy migrations for an X-Container and a full
//! VM at several dirty rates, and contrasts with a Docker cold restart.
//!
//! Run with: `cargo run --example live_migration`

use xcontainers::prelude::*;
use xcontainers::xen::migrate::{plan_checkpoint, plan_precopy, MigrationParams};

fn main() {
    let mut table = Table::new(
        "Pre-copy live migration over 10 GbE",
        &[
            "instance",
            "dirty MiB/s",
            "rounds",
            "total time",
            "downtime",
            "converged",
        ],
    );

    for (label, memory_mb) in [
        ("X-Container (128 MiB)", 128.0),
        ("Ubuntu VM (512 MiB)", 512.0),
    ] {
        for dirty in [10.0, 100.0, 400.0] {
            let plan = plan_precopy(MigrationParams {
                memory_mb,
                dirty_rate_mb_s: dirty,
                ..MigrationParams::x_container_default()
            });
            table.row([
                Cell::from(label),
                Cell::Num(dirty, 0),
                Cell::from(plan.rounds.len() as u64),
                Cell::from(plan.total_time.to_string()),
                Cell::from(plan.downtime.to_string()),
                Cell::from(if plan.converged {
                    "yes"
                } else {
                    "stop-and-copy"
                }),
            ]);
        }
        table.separator();
    }
    println!("{table}");

    // The container-world alternative: kill and cold-start elsewhere.
    let docker = Container::new("web", Platform::docker(CloudEnv::LocalCluster, true));
    let restart_outage = docker.spawn_time();
    let xc_plan = plan_precopy(MigrationParams::x_container_default());
    println!(
        "Docker has no VM-grade live migration: relocating a container means a\n\
         cold restart — {restart_outage} of outage (plus state loss), versus\n\
         {} of downtime for a live-migrated X-Container.",
        xc_plan.downtime
    );

    let ckpt = plan_checkpoint(128.0, 500.0);
    println!(
        "Checkpoint/restore through 500 MiB/s storage: save {}, restore {}\n\
         ({:.0} MiB image) — the fault-tolerance building block §3.3 cites.",
        ckpt.save_time, ckpt.restore_time, ckpt.image_mb
    );
}
