//! The Figure 6c/7 scenario: two PHP web applications backed by MySQL,
//! deployed in the three topologies the paper compares — shared database,
//! dedicated databases, and (X-Containers only) PHP and MySQL merged in
//! one container.
//!
//! Run with: `cargo run --example php_mysql`

use xcontainers::prelude::*;
use xcontainers::workloads::fig6::fig6c_php_mysql;

fn main() {
    let costs = CostModel::skylake_cloud();

    let mut table = Table::new(
        "2×PHP + MySQL throughput (requests/s, both PHP servers combined)",
        &["topology", "Unikernel", "X-Container", "X / U"],
    );

    for topology in DbTopology::ALL {
        let u = fig6c_php_mysql(LibOsPlatform::Unikernel, topology, &costs);
        let x = fig6c_php_mysql(LibOsPlatform::XContainer, topology, &costs);
        let ratio = match (u, x) {
            (Some(u), Some(x)) => Cell::Num(x / u, 2),
            _ => Cell::from("-"),
        };
        let fmt = |v: Option<f64>| match v {
            Some(v) => Cell::Num(v, 0),
            None => Cell::from("unsupported"),
        };
        table.row([Cell::from(topology.label()), fmt(u), fmt(x), ratio]);
    }
    println!("{table}");

    let u_dedicated =
        fig6c_php_mysql(LibOsPlatform::Unikernel, DbTopology::Dedicated, &costs).unwrap();
    let x_merged = fig6c_php_mysql(
        LibOsPlatform::XContainer,
        DbTopology::DedicatedMerged,
        &costs,
    )
    .unwrap();
    println!(
        "Merged X-Container vs Unikernel-Dedicated: {:.2}x (paper: ~3x).\n\
         A unikernel cannot merge: one instance, one process. Graphene cannot\n\
         run the PHP CGI server at all (§5.5).",
        x_merged / u_dedicated
    );
}
