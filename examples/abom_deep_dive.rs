//! ABOM deep dive: every replacement pattern of §4.4, shown as real
//! bytes and disassembly, before and after patching — including the
//! 9-byte two-phase replacement, the return-address fix-up, and the
//! offline detour for libpthread-style cancellable wrappers.
//!
//! Run with: `cargo run --example abom_deep_dive`

use xcontainers::abom::binaries::{
    glibc_large_nr_wrapper_image, glibc_wrapper_image, go_wrapper_image, invoke, invoke_with,
    pthread_cancellable_wrapper_image,
};
use xcontainers::abom::offline::OfflinePatcher;
use xcontainers::isa::decode::disassemble;
use xcontainers::isa::image::BinaryImage;
use xcontainers::prelude::*;

fn dump(title: &str, image: &BinaryImage, at: u64, len: usize) {
    let bytes = image.read_upto(at, len).expect("in range");
    let hex: Vec<String> = bytes.iter().map(|b| format!("{b:02x}")).collect();
    println!("  {title}: {}", hex.join(" "));
    let (insts, stop) = disassemble(bytes);
    for (off, inst) in insts {
        println!("    {:#08x}: {inst}", at + off as u64);
    }
    if let Some((off, e)) = stop {
        println!("    {:#08x}: <{e}>", at + off as u64);
    }
}

fn main() {
    println!("== Case 1: glibc __read — 7-byte replacement ==");
    let mut image = glibc_wrapper_image(0);
    let entry = image.symbol("wrapper").unwrap();
    dump("before", &image, entry, 8);
    let mut kernel = XContainerKernel::new();
    invoke(&mut image, &mut kernel, entry, None).unwrap();
    dump("after ", &image, entry, 8);
    println!();

    println!("== Case 2: Go syscall.Syscall — stack-dispatch entry ==");
    let mut image = go_wrapper_image();
    let entry = image.symbol("wrapper").unwrap();
    dump("before", &image, entry, 8);
    let mut kernel = XContainerKernel::new();
    invoke(&mut image, &mut kernel, entry, Some(202)).unwrap();
    dump("after ", &image, entry, 8);
    println!("  (entry 0xffffffffff600c08 reads the number from 0x8(%rsp))");
    println!();

    println!("== Case 3: __restore_rt — 9-byte two-phase replacement ==");
    let mut image = glibc_large_nr_wrapper_image(15);
    let entry = image.symbol("wrapper").unwrap();
    dump("before ", &image, entry, 10);
    // Interrupted patch: phase 1 only (as if the patching vCPU were
    // preempted between the two exchanges).
    let mut phase1 = XContainerKernel::with_config(AbomConfig {
        enabled: true,
        nine_byte_phase2: false,
        preflight_verify: false,
    });
    invoke(&mut image, &mut phase1, entry, None).unwrap();
    dump("phase 1", &image, entry, 10);
    println!("  (still runs correctly: the handler skips the leftover syscall");
    println!("   found at the return address)");
    // The normal path applies both phases within one trap:
    let mut full = glibc_large_nr_wrapper_image(15);
    let full_entry = full.symbol("wrapper").unwrap();
    let mut kernel = XContainerKernel::new();
    invoke(&mut full, &mut kernel, full_entry, None).unwrap();
    dump("phase 2", &full, full_entry, 10);
    println!("  (eb f7 = jmp -9, back to the call — every intermediate state executable)");
    println!();

    println!("== Offline detour: libpthread cancellable wrapper ==");
    let image = pthread_cancellable_wrapper_image(202);
    let entry = image.symbol("wrapper").unwrap();
    dump("before", &image, entry, 14);
    let (mut patched, report) = OfflinePatcher::new().patch(&image).unwrap();
    println!(
        "  offline tool: {} adjacent, {} detoured, image grew {} bytes",
        report.adjacent_patched,
        report.detour_patched,
        patched.len() - image.len()
    );
    dump("after ", &patched, entry, 14);
    let mut kernel = XContainerKernel::new();
    invoke_with(&mut patched, &mut kernel, entry, None, None).unwrap();
    println!(
        "  executed: trace {:?}, trapped {}, via function call {}",
        kernel.syscall_numbers(),
        kernel.stats().trapped,
        kernel.stats().via_function_call
    );
}
