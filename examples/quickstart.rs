//! Quickstart: the X-Containers model in three acts.
//!
//! 1. Watch ABOM rewrite a glibc syscall wrapper into a function call,
//!    byte for byte as in Figure 2 of the paper.
//! 2. Compare raw syscall dispatch cost across all ten cloud platform
//!    configurations (the Figure 4 headline).
//! 3. Check the capability matrix that motivates the design (§2.3).
//!
//! Run with: `cargo run --example quickstart`

use xcontainers::abom::binaries::glibc_wrapper_image;
use xcontainers::prelude::*;

fn hex(bytes: &[u8]) -> String {
    bytes
        .iter()
        .map(|b| format!("{b:02x}"))
        .collect::<Vec<_>>()
        .join(" ")
}

fn main() {
    let costs = CostModel::skylake_cloud();

    // ---- Act 1: ABOM patches a binary online -------------------------
    println!("== ABOM rewriting the glibc __read wrapper (Figure 2, case 1) ==\n");
    let mut image = glibc_wrapper_image(0); // syscall 0 = read
    let entry = image.symbol("wrapper").expect("wrapper symbol");
    println!("before: {}", hex(image.read_bytes(entry, 7).unwrap()));

    let mut kernel = XContainerKernel::new();
    for round in 1..=3 {
        let mut cpu = Cpu::new(entry);
        cpu.push_halt_frame().expect("stack space");
        cpu.run(&mut image, &mut kernel, 1_000)
            .expect("wrapper run");
        println!(
            "call {round}: trapped={} function_calls={}",
            kernel.stats().trapped,
            kernel.stats().via_function_call
        );
    }
    println!("after:  {}", hex(image.read_bytes(entry, 7).unwrap()));
    println!("        (callq *0xffffffffff600008 — the vsyscall entry for read)\n");

    // ---- Act 2: syscall dispatch across platforms --------------------
    let mut table = Table::new(
        "Syscall dispatch cost (Google GCE configurations)",
        &["platform", "dispatch", "relative throughput"],
    );
    let baseline = Platform::docker(CloudEnv::GoogleGce, true);
    let base_score = SystemCallBench::score(&baseline, &costs);
    for platform in Platform::cloud_configurations(CloudEnv::GoogleGce) {
        let score = SystemCallBench::score(&platform, &costs);
        table.row([
            Cell::from(platform.name()),
            Cell::from(platform.syscall_cost(&costs).to_string()),
            Cell::Num(score / base_score, 2),
        ]);
    }
    println!("{table}");

    // ---- Act 3: the capability matrix ---------------------------------
    let mut caps = Table::new(
        "Capability matrix (§2.3)",
        &["platform", "binary compat", "multi-process", "multicore"],
    );
    let cloud = CloudEnv::LocalCluster;
    let contenders = [
        Platform::docker(cloud, true),
        Platform::x_container(cloud, true),
        Platform::gvisor(cloud, true),
        Platform::graphene(cloud),
        Platform::unikernel(cloud),
    ];
    for p in &contenders {
        let yn = |b: bool| if b { "yes" } else { "no" };
        caps.row([
            Cell::from(p.name()),
            Cell::from(yn(p.binary_compatible())),
            Cell::from(yn(p.supports_multiprocess())),
            Cell::from(yn(p.supports_multicore())),
        ]);
    }
    println!("{caps}");
    println!("X-Containers is the only LibOS row with three yeses — the paper's thesis.");
}
